"""Dead-link / dead-path / dead-flag checker for the Markdown docs.

Scans ``README.md`` and ``docs/*.md`` for three classes of rot:

1. **relative Markdown links** (``[text](path)``) whose target file or
   directory no longer exists;
2. **backtick path references** (`` `src/repro/...` ``, `` `tests/...`
   ``, `` `docs/...` ``, `` `examples/...` ``, `` `benchmarks/...` ``)
   pointing at files that no longer exist;
3. **CLI flag references** (`` --flag `` inside backticks or console
   blocks) that no CLI parser registers any more.

External URLs are deliberately not fetched — CI must not depend on the
network.  Run standalone (exit 1 on any finding)::

    PYTHONPATH=src python tools/check_docs.py

or through the tier-1 suite (``tests/docs/test_docs.py``).
"""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown files the checker covers.
DOC_GLOBS = ("README.md", "docs/*.md")

_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)\s]*)?\)")
_BACKTICK = re.compile(r"`([^`\n]+)`")
#: Path-looking backtick content: starts with a known tree root and
#: names a concrete file or directory (no globs/placeholders).
_PATH_ROOTS = ("src/", "tests/", "docs/", "examples/", "benchmarks/",
               "tools/")
_FLAG = re.compile(r"(--[a-z][a-z0-9-]+)\b")
#: Flag-like strings that are not CLI flags of this repo.
_FLAG_ALLOWLIST = frozenset((
    "--doctest-modules",  # pytest's own flag, quoted in the docs
    "--benchmark-only",   # pytest-benchmark
    "--bench-json",       # registered by benchmarks/conftest.py
    "--json",             # benchmarks/bench_runtime.py
))


def doc_files() -> list[Path]:
    files: list[Path] = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(REPO_ROOT.glob(pattern)))
    return files


def registered_cli_flags() -> set[str]:
    """Every ``--flag`` any repro CLI parser accepts."""
    from repro.cli import build_parser

    flags: set[str] = set()

    def harvest(parser) -> None:
        for action in parser._actions:
            flags.update(
                opt for opt in action.option_strings if opt.startswith("--")
            )
            choices = getattr(action, "choices", None)
            if isinstance(choices, dict):  # a subparsers action
                for sub in choices.values():
                    if hasattr(sub, "_actions"):
                        harvest(sub)

    harvest(build_parser())
    return flags


def _looks_like_path(text: str) -> bool:
    if any(ch in text for ch in " *<>{}$|"):
        return False
    return text.startswith(_PATH_ROOTS) or text in (
        "README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md", "pytest.ini",
        "setup.py",
    )


def check_file(path: Path, cli_flags: set[str]) -> list[str]:
    """All findings for one Markdown file, as printable strings."""
    findings: list[str] = []
    text = path.read_text()
    base = path.parent
    try:
        shown = path.relative_to(REPO_ROOT)
    except ValueError:  # a file outside the repo (tests plant these)
        shown = path

    in_fence = False
    for number, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            # Fenced code blocks (console transcripts): every flag on
            # the line must be one some parser registers.
            for flag in _FLAG.findall(line):
                if flag not in cli_flags and flag not in _FLAG_ALLOWLIST:
                    findings.append(
                        f"{shown}:{number}: unknown "
                        f"CLI flag ({flag})"
                    )
            continue
        for match in _MD_LINK.finditer(line):
            target = match.group(1)
            if "://" in target or target.startswith("mailto:"):
                continue
            resolved = (base / target).resolve()
            if not resolved.exists():
                findings.append(
                    f"{shown}:{number}: dead link "
                    f"({target})"
                )
        for match in _BACKTICK.finditer(line):
            content = match.group(1)
            for flag in _FLAG.findall(content):
                if flag not in cli_flags and flag not in _FLAG_ALLOWLIST:
                    findings.append(
                        f"{shown}:{number}: unknown "
                        f"CLI flag ({flag})"
                    )
            if _looks_like_path(content):
                candidate = content.rstrip("/")
                if not (REPO_ROOT / candidate).exists():
                    findings.append(
                        f"{shown}:{number}: dead path "
                        f"({content})"
                    )
    return findings


def check_all() -> list[str]:
    cli_flags = registered_cli_flags()
    findings: list[str] = []
    for path in doc_files():
        findings.extend(check_file(path, cli_flags))
    return findings


def main() -> int:
    files = doc_files()
    findings = check_all()
    for finding in findings:
        print(finding)
    print(
        f"checked {len(files)} file(s): "
        + ("OK" if not findings else f"{len(findings)} finding(s)")
    )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
