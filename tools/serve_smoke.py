"""CI smoke for ``repro serve``: golden digest over HTTP, then SIGTERM.

Boots the real server subprocess on an ephemeral port, runs the
golden-pinned study (``StudyConfig(seed=7, n_sites=120)``) twice over
HTTP, and checks:

1. the cold response's digest equals ``tests/golden/digest.txt`` —
   the service cannot drift from the CLI pipeline;
2. the warm repeat reports ``"cached": true`` with the same digest;
3. SIGTERM drains and the process exits 130 (the interrupted-run rc).

Run standalone (exit 1 on any failure)::

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
_LISTEN = re.compile(r"listening on http://([\d.]+):(\d+)")
_BODY = {"schema": 1, "seed": 7, "n_sites": 120}


def _post_study(base: str) -> dict:
    request = urllib.request.Request(
        base + "/v1/study", data=json.dumps(_BODY).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=300) as response:
        return json.load(response)


def main() -> int:
    pinned = (REPO_ROOT / "tests/golden/digest.txt").read_text().strip()
    # CI driver, not pipeline code: the subprocess needs the host env.
    env = dict(os.environ)  # repro-lint: ignore[determinism]
    env["PYTHONPATH"] = "src"
    env["PYTHONUNBUFFERED"] = "1"
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache-dir", os.path.join(tmp, "cache")],
            stderr=subprocess.PIPE, text=True, cwd=REPO_ROOT, env=env,
        )
        try:
            line = proc.stderr.readline()
            match = _LISTEN.search(line)
            if not match:
                print(f"FAIL: no listening line, got {line!r}")
                return 1
            base = f"http://{match.group(1)}:{match.group(2)}"
            print(f"server up at {base}")

            cold = _post_study(base)
            print(f"cold:  digest={cold['digest']} cached={cold['cached']}")
            if cold["digest"] != pinned:
                failures.append(
                    f"cold digest {cold['digest']} != pinned {pinned}"
                )
            if cold["cached"]:
                failures.append("cold request claims cached")

            warm = _post_study(base)
            print(f"warm:  digest={warm['digest']} cached={warm['cached']}")
            if warm["digest"] != pinned:
                failures.append(
                    f"warm digest {warm['digest']} != pinned {pinned}"
                )
            if not warm["cached"]:
                failures.append("warm repeat not served from cache")

            proc.send_signal(signal.SIGTERM)
            remainder = proc.stderr.read()
            rc = proc.wait(timeout=60)
            print(f"sigterm: rc={rc}")
            if rc != 130:
                failures.append(f"SIGTERM exit code {rc}, expected 130")
            if "draining inflight requests" not in remainder:
                failures.append("no drain message on stderr")
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stderr.close()
            proc.wait(timeout=30)
    for failure in failures:
        print(f"FAIL: {failure}")
    print("serve smoke: " + ("OK" if not failures else "FAILED"))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
