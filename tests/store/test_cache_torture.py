"""Concurrency torture for the study cache.

Many workers — threads in one process, then whole forked processes —
hammer a single cache directory with interleaved gets, puts, prunes
and deliberately injected corruption.  The invariants under fire:

* no worker ever sees an exception (a corrupt or vanished entry is a
  recorded miss, never a crash);
* a ``get`` returns either ``None`` or a value some worker actually
  put (no torn reads: writes are atomic rename);
* the counters stay coherent (``lookups == hits + misses``,
  ``errors <= misses``) and every injected corruption that a reader
  observed was evicted rather than served.
"""

from __future__ import annotations

import multiprocessing
import random
import threading

import pytest

from repro.store import StudyCache, stable_key

#: A small hot key set so operations genuinely collide.
_KEYS = tuple(stable_key("torture", index) for index in range(12))
_ROUNDS = 150


def _hammer(directory, seed: int) -> tuple[int, int, int, int]:
    """One worker's randomized op loop; returns its final counters."""
    cache = StudyCache(directory)
    rng = random.Random(seed)
    live = {("classify", key) for key in _KEYS}
    for _ in range(_ROUNDS):
        key = rng.choice(_KEYS)
        roll = rng.random()
        if roll < 0.40:
            value = cache.get("classify", key)
            assert value is None or value == ("payload", key), value
        elif roll < 0.75:
            cache.put("classify", key, ("payload", key))
        elif roll < 0.85:
            # Concurrent prunes of a random half of the key space: the
            # other workers' gets must degrade to misses, never raise.
            keep = {
                ("classify", k) for k in rng.sample(_KEYS, len(_KEYS) // 2)
            }
            cache.prune(keep)
        elif roll < 0.95:
            # Crash-mid-write simulation: clobber the entry with a
            # truncated pickle, bypassing the atomic put.
            path = cache.directory / "classify" / f"{key}.pkl"
            try:
                path.write_bytes(b"\x80\x05corrupt"[:7])
            except OSError:  # pragma: no cover - racing directory prune
                pass
        else:
            cache.prune(live)
    stats = cache.total_stats()
    return stats.hits, stats.misses, stats.writes, stats.errors


def _assert_coherent(hits: int, misses: int, writes: int,
                     errors: int) -> None:
    assert hits >= 0 and misses >= 0 and writes >= 0
    assert errors <= misses
    assert hits + misses > 0


class TestTortureThreads:
    def test_threaded_hammering_never_breaks(self, tmp_path):
        results: list = []
        failures: list[BaseException] = []

        def worker(seed: int) -> None:
            try:
                results.append(_hammer(tmp_path, seed))
            except BaseException as error:  # noqa: BLE001 - recorded
                failures.append(error)

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        assert len(results) == 6
        for hits, misses, writes, errors in results:
            _assert_coherent(hits, misses, writes, errors)

    def test_survivors_are_loadable(self, tmp_path):
        for seed in range(2):
            _hammer(tmp_path, seed)
        cache = StudyCache(tmp_path)
        for kind, key in cache.entries():
            value = cache.get(kind, key)
            # A final corruption injection may still sit on disk; the
            # read either succeeds with the real payload or evicts.
            assert value is None or value == ("payload", key)
        stats = cache.total_stats()
        assert stats.misses == stats.errors  # only corrupt entries miss


class TestTortureProcesses:
    def test_forked_processes_share_one_directory(self, tmp_path):
        context = multiprocessing.get_context("fork")
        with context.Pool(4) as pool:
            results = pool.starmap(
                _hammer, [(tmp_path, 100 + seed) for seed in range(4)]
            )
        assert len(results) == 4
        for hits, misses, writes, errors in results:
            _assert_coherent(hits, misses, writes, errors)

    def test_cross_process_payloads_round_trip(self, tmp_path):
        context = multiprocessing.get_context("fork")
        writer = StudyCache(tmp_path)
        for key in _KEYS:
            writer.put("classify", key, ("payload", key))
        with context.Pool(2) as pool:
            results = pool.starmap(
                _read_all, [(tmp_path,), (tmp_path,)]
            )
        for loaded in results:
            assert loaded == len(_KEYS)


def _read_all(directory) -> int:
    cache = StudyCache(directory)
    loaded = 0
    for key in _KEYS:
        if cache.get("classify", key) == ("payload", key):
            loaded += 1
    return loaded


@pytest.mark.parametrize("junk", [b"", b"\x80", b"\x80\x05}q\x00"])
def test_every_truncation_shape_is_an_evicted_miss(tmp_path, junk):
    cache = StudyCache(tmp_path)
    key = _KEYS[0]
    path = cache.put("classify", key, ("payload", key))
    path.write_bytes(junk)
    assert cache.get("classify", key) is None
    assert not path.exists()
    stats = cache.total_stats()
    assert (stats.misses, stats.errors) == (1, 1)
