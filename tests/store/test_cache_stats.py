"""StudyCache statistics under concurrency: counts must be *exact*.

The old counters did ``setdefault`` + bare ``+=`` with no lock, so two
server threads hitting the same kind could lose or double-count
increments.  These tests pin the fix: a known workload fanned out over
many threads must land on exactly the arithmetic total.
"""

from __future__ import annotations

import threading

from repro.store import CacheStats, StudyCache, stable_key

THREADS = 8
OPS = 150


def test_threaded_hits_and_misses_count_exactly(tmp_path):
    cache = StudyCache(tmp_path)
    key = stable_key("stress-hit")
    cache.put("classify", key, {"payload": 1})

    barrier = threading.Barrier(THREADS)

    def work(worker: int) -> None:
        barrier.wait()
        for op in range(OPS):
            assert cache.get("classify", key) == {"payload": 1}
            assert cache.get(
                "classify", stable_key("stress-miss", worker, op)
            ) is None

    threads = [
        threading.Thread(target=work, args=(worker,))
        for worker in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    stats = cache.counters["classify"]
    assert stats.hits == THREADS * OPS
    assert stats.misses == THREADS * OPS
    assert stats.writes == 1
    assert stats.errors == 0
    assert stats.lookups == 2 * THREADS * OPS


def test_threaded_writes_count_exactly(tmp_path):
    cache = StudyCache(tmp_path)
    barrier = threading.Barrier(THREADS)

    def work(worker: int) -> None:
        barrier.wait()
        for op in range(OPS):
            cache.put(
                "har-crawl", stable_key("stress-write", worker, op),
                {"worker": worker, "op": op},
            )

    threads = [
        threading.Thread(target=work, args=(worker,))
        for worker in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert cache.counters["har-crawl"].writes == THREADS * OPS


def test_threaded_mixed_kinds_stay_separate_and_exact(tmp_path):
    cache = StudyCache(tmp_path)
    keys = {
        kind: stable_key("stress-kind", kind)
        for kind in ("har-crawl", "alexa-crawl", "classify")
    }
    for kind, key in keys.items():
        cache.put(kind, key, kind)
    barrier = threading.Barrier(THREADS)

    def work() -> None:
        barrier.wait()
        for _ in range(OPS):
            for kind, key in keys.items():
                assert cache.get(kind, key) == kind

    threads = [threading.Thread(target=work) for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for kind in keys:
        stats = cache.counters[kind]
        assert stats.hits == THREADS * OPS
        assert stats.misses == 0
        assert stats.writes == 1
    total = cache.total_stats()
    assert total.hits == 3 * THREADS * OPS
    assert total.writes == 3


def test_snapshot_is_a_copy_not_a_live_view(tmp_path):
    cache = StudyCache(tmp_path)
    key = stable_key("snapshot")
    cache.put("classify", key, 1)
    snapshot = cache.stats_snapshot()
    assert snapshot == {
        "classify": {"hits": 0, "misses": 0, "writes": 1, "errors": 0}
    }
    cache.get("classify", key)
    # The earlier snapshot must not have moved.
    assert snapshot["classify"]["hits"] == 0
    assert cache.stats_snapshot()["classify"]["hits"] == 1


def test_total_stats_is_a_detached_snapshot(tmp_path):
    cache = StudyCache(tmp_path)
    cache.put("classify", stable_key("total"), 1)
    total = cache.total_stats()
    assert isinstance(total, CacheStats)
    cache.get("classify", stable_key("total"))
    assert total.hits == 0  # detached from later traffic
