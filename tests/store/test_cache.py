"""Tests for the content-addressed study cache."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.analysis.study import StudyConfig
from repro.core.session import LifetimeModel
from repro.crawl.alexa import AlexaCrawler
from repro.crawl.httparchive import HttpArchiveCrawler
from repro.store import CacheStats, StudyCache, stable_key
from repro.web.ecosystem import EcosystemConfig


@dataclass(frozen=True)
class _Knobs:
    alpha: int = 1
    beta: tuple[str, ...] = ("x", "y")


class TestStableKey:
    def test_deterministic_across_calls(self):
        assert stable_key("kind", _Knobs(), 7) == stable_key("kind", _Knobs(), 7)

    def test_any_knob_changes_the_key(self):
        base = stable_key("kind", _Knobs(), 7)
        assert stable_key("kind", _Knobs(alpha=2), 7) != base
        assert stable_key("kind", _Knobs(beta=("x",)), 7) != base
        assert stable_key("other", _Knobs(), 7) != base
        assert stable_key("kind", _Knobs(), 8) != base

    def test_dict_order_is_irrelevant(self):
        assert stable_key({"a": 1, "b": 2}) == stable_key({"b": 2, "a": 1})

    def test_dataclass_configs_are_hashable(self):
        key1 = stable_key(EcosystemConfig(seed=7, n_sites=50))
        key2 = stable_key(EcosystemConfig(seed=7, n_sites=51))
        assert key1 != key2

    def test_rejects_unkeyable_values(self):
        with pytest.raises(TypeError):
            stable_key(object())


class TestStudyCache:
    def test_miss_then_hit(self, tmp_path):
        cache = StudyCache(tmp_path)
        key = stable_key("payload", 1)
        assert cache.get("classify", key) is None
        cache.put("classify", key, {"value": 41})
        assert cache.get("classify", key) == {"value": 41}
        assert cache.counters["classify"] == CacheStats(
            hits=1, misses=1, writes=1
        )

    def test_contains_does_not_count(self, tmp_path):
        cache = StudyCache(tmp_path)
        key = stable_key("x")
        assert not cache.contains("classify", key)
        cache.put("classify", key, 1)
        assert cache.contains("classify", key)
        assert cache.counters["classify"].lookups == 0

    def test_persists_across_instances(self, tmp_path):
        key = stable_key("x")
        StudyCache(tmp_path).put("classify", key, [1, 2, 3])
        assert StudyCache(tmp_path).get("classify", key) == [1, 2, 3]

    def test_entries_and_prune(self, tmp_path):
        cache = StudyCache(tmp_path)
        keep = stable_key("keep")
        drop = stable_key("drop")
        cache.put("classify", keep, 1)
        cache.put("classify", drop, 2)
        assert set(cache.entries()) == {
            ("classify", keep), ("classify", drop)
        }
        assert cache.prune({("classify", keep)}) == 1
        assert set(cache.entries()) == {("classify", keep)}

    def test_rejects_path_separators(self, tmp_path):
        cache = StudyCache(tmp_path)
        with pytest.raises(ValueError):
            cache.get("bad/kind", stable_key("x"))

    def test_rejects_unknown_kinds(self, tmp_path):
        cache = StudyCache(tmp_path)
        with pytest.raises(ValueError):
            cache.put("things", stable_key("x"), 1)

    def test_rejects_traversal_keys(self, tmp_path):
        cache = StudyCache(tmp_path)
        for key in ("..", "..\\", "../../etc/passwd", "", "KEY", "abc"):
            with pytest.raises(ValueError):
                cache.put("classify", key, 1)
        outside = tmp_path.parent / "...pkl"
        assert not outside.exists()

    def test_corrupt_entry_is_an_evicted_miss(self, tmp_path):
        cache = StudyCache(tmp_path)
        key = stable_key("soon-corrupt")
        path = cache.put("classify", key, {"value": 1})
        # Truncate the pickle the way a crashed writer would.
        path.write_bytes(path.read_bytes()[:7])
        assert cache.get("classify", key) is None
        assert cache.counters["classify"] == CacheStats(
            hits=0, misses=1, writes=1, errors=1
        )
        # The bad file is evicted, so the next lookup is a clean miss.
        assert not cache.contains("classify", key)
        assert cache.get("classify", key) is None
        assert cache.counters["classify"].errors == 1

    def test_garbage_entry_is_an_evicted_miss(self, tmp_path):
        cache = StudyCache(tmp_path)
        key = stable_key("garbage")
        path = cache._path("classify", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle at all")
        assert cache.get("classify", key) is None
        assert cache.counters["classify"].errors == 1
        assert not path.exists()

    def test_prune_skips_vanished_files(self, tmp_path):
        cache = StudyCache(tmp_path)
        key = stable_key("x")
        cache.put("classify", key, 1)
        entries = list(cache.entries())
        cache._path("classify", key).unlink()
        # A concurrent prune removed the file first; ours counts zero.
        assert entries == [("classify", key)]
        assert cache.prune(set()) == 0

    def test_entries_ignores_planted_garbage(self, tmp_path):
        cache = StudyCache(tmp_path)
        key = stable_key("x")
        cache.put("classify", key, 1)
        (tmp_path / "notakind").mkdir()
        (tmp_path / "notakind" / "deadbeef.pkl").write_bytes(b"x")
        (tmp_path / "classify" / "...pkl").write_bytes(b"x")
        (tmp_path / "classify" / "UPPER.pkl").write_bytes(b"x")
        assert set(cache.entries()) == {("classify", key)}
        assert cache.prune({("classify", key)}) == 0

    def test_render_stats(self, tmp_path):
        cache = StudyCache(tmp_path)
        assert "no lookups" in cache.render_stats()
        cache.get("classify", stable_key("x"))
        assert "classify" in cache.render_stats()
        assert "Errors" in cache.render_stats()


class TestCrawlCaching:
    def test_har_crawl_warm_hit_is_identical(self, small_ecosystem, tmp_path):
        cache = StudyCache(tmp_path)
        crawler = HttpArchiveCrawler(ecosystem=small_ecosystem, seed=51)
        domains = small_ecosystem.alexa_list(8)
        cold = crawler.crawl(domains, cache=cache)
        warm = crawler.crawl(domains, cache=cache)
        assert cache.counters["har-crawl"] == CacheStats(hits=1, misses=1, writes=1)
        assert set(warm.hars) == set(cold.hars)
        assert warm.provenance == cold.provenance == crawler.stage_key(domains)

    def test_alexa_run_warm_hit_is_identical(self, small_ecosystem, tmp_path):
        cache = StudyCache(tmp_path)
        crawler = AlexaCrawler(ecosystem=small_ecosystem, seed=52)
        domains = small_ecosystem.alexa_list(8)
        cold = crawler.run(domains, run_name="alexa-fetch", cache=cache)
        warm = crawler.run(domains, run_name="alexa-fetch", cache=cache)
        assert cache.counters["alexa-crawl"].hits == 1
        assert set(warm.measurements) == set(cold.measurements)

    def test_run_name_invalidates_alexa_key(self, small_ecosystem):
        crawler = AlexaCrawler(ecosystem=small_ecosystem, seed=52)
        domains = small_ecosystem.alexa_list(4)
        assert crawler.stage_key(domains, run_name="a") != crawler.stage_key(
            domains, run_name="b"
        )

    def test_classification_caches_on_provenance(self, small_ecosystem, tmp_path):
        cache = StudyCache(tmp_path)
        crawler = HttpArchiveCrawler(ecosystem=small_ecosystem, seed=53)
        corpus = crawler.crawl(small_ecosystem.alexa_list(8), cache=cache)
        cold = corpus.classify(model=LifetimeModel.ENDLESS, cache=cache)
        warm = corpus.classify(model=LifetimeModel.ENDLESS, cache=cache)
        assert cache.counters["classify"].hits == 1
        assert warm.report.redundant_connections == cold.report.redundant_connections
        # A different lifetime model is a different artefact.
        corpus.classify(model=LifetimeModel.IMMEDIATE, cache=cache)
        assert cache.counters["classify"].misses == 2

    def test_classification_without_provenance_skips_cache(
        self, small_ecosystem, tmp_path
    ):
        cache = StudyCache(tmp_path)
        crawler = HttpArchiveCrawler(ecosystem=small_ecosystem, seed=54)
        # A cache-less crawl computes no stage key and sets no provenance...
        corpus = crawler.crawl(small_ecosystem.alexa_list(4))
        assert corpus.provenance is None
        # ...so a later cached classification cannot key itself and skips.
        corpus.classify(model=LifetimeModel.ENDLESS, cache=cache)
        assert "classify" not in cache.counters


class TestStudyConfigSmall:
    def test_small_preserves_new_fields(self):
        config = StudyConfig(
            seed=11,
            n_sites=5000,
            har_models=("endless",),
            alexa_variants=("fetch",),
            executor="thread",
            parallelism=3,
        )
        small = config.small()
        assert small.n_sites == 200
        assert small.dns_study_days == 0.25
        assert small.seed == 11
        # dataclasses.replace carries every field, including ones added
        # after small() was written.
        assert small.har_models == ("endless",)
        assert small.alexa_variants == ("fetch",)
        assert small.executor == "thread"
        assert small.parallelism == 3

    def test_small_copies_overrides(self):
        config = StudyConfig(ecosystem_overrides={"tail_services": 10})
        small = config.small()
        assert small.ecosystem_overrides == config.ecosystem_overrides
        assert small.ecosystem_overrides is not config.ecosystem_overrides
