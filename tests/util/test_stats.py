"""Tests for the statistics helpers."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import ccdf, counter_to_series, median, quantile


class TestCcdf:
    def test_empty(self):
        assert ccdf([]) == []

    def test_single_value(self):
        assert ccdf([3]) == [(3, 1.0)]

    def test_documented_example(self):
        assert ccdf([0, 1, 1, 3]) == [(0, 1.0), (1, 0.75), (3, 0.25)]

    def test_first_share_is_one(self):
        assert ccdf([5, 9, 2])[0][1] == 1.0

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1))
    def test_monotonically_decreasing(self, values):
        shares = [share for _, share in ccdf(values)]
        assert all(a >= b for a, b in zip(shares, shares[1:]))
        assert shares[0] == 1.0

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1))
    def test_share_matches_definition(self, values):
        for x, share in ccdf(values):
            expected = sum(1 for v in values if v >= x) / len(values)
            assert share == pytest.approx(expected)


class TestQuantile:
    def test_median_odd(self):
        assert median([3, 1, 2]) == 2

    def test_median_even_interpolates(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_extremes(self):
        assert quantile([1, 2, 3], 0.0) == 1
        assert quantile([1, 2, 3], 1.0) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            quantile([1], 1.5)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e9, max_value=1e9), min_size=1))
    def test_within_bounds(self, values):
        result = median(values)
        assert min(values) <= result <= max(values)


class TestCounterToSeries:
    def test_sorted_by_count_then_key(self):
        counter = Counter({"b": 2, "a": 2, "c": 5})
        assert counter_to_series(counter) == [("c", 5), ("a", 2), ("b", 2)]

    def test_truncation(self):
        counter = Counter({"a": 3, "b": 2, "c": 1})
        assert counter_to_series(counter, top=2) == [("a", 3), ("b", 2)]
