"""Tests for paper-style formatting."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.formatting import align_table, pct, si_count


class TestSiCount:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (0, "0"),
            (255, "255"),
            (999, "999"),
            (1_000, "1.00 k"),
            (52_310, "52.31 k"),
            (1_000_000, "1.00 M"),
            (2_250_000, "2.25 M"),
            (63_550_000, "63.55 M"),
        ],
    )
    def test_paper_style(self, value, expected):
        assert si_count(value) == expected

    def test_fractional_below_thousand(self):
        assert si_count(12.5) == "12.50"

    @pytest.mark.parametrize(
        "value, expected",
        [
            # Values that round to 1000 of a unit promote to the next
            # unit instead of rendering '1000.00 <unit>'.
            (999_995, "1.00 M"),
            (999_999, "1.00 M"),
            (999.996, "1.00 k"),
            (999_994, "999.99 k"),
            (999, "999"),
        ],
    )
    def test_unit_boundary_promotes(self, value, expected):
        assert si_count(value) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            si_count(-1)

    @given(st.integers(min_value=0, max_value=10**12))
    def test_never_raises_for_counts(self, value):
        assert isinstance(si_count(value), str)

    @given(st.integers(min_value=0, max_value=10**9))
    def test_never_renders_a_thousand_k(self, value):
        # "M" is the paper's largest unit, so only the k boundary can
        # promote; huge values may legitimately exceed 1000 M.
        rendered = si_count(value)
        if rendered.endswith(" k"):
            assert float(rendered.split()[0]) < 1000


class TestPct:
    def test_rounds_to_integer(self):
        assert pct(76.4, 100) == "76 %"
        assert pct(76.6, 100) == "77 %"

    def test_zero_denominator(self):
        assert pct(5, 0) == "- %"

    def test_full(self):
        assert pct(10, 10) == "100 %"

    @pytest.mark.parametrize(
        "numerator, denominator, expected",
        [
            # Ties round half away from zero, not to even (the paper's
            # convention); banker's rounding would give 0 % and 2 %.
            (1, 200, "1 %"),
            (5, 200, "3 %"),
            (3, 200, "2 %"),
            (7, 200, "4 %"),
            (-1, 200, "-1 %"),
        ],
    )
    def test_half_up_at_tie_boundaries(self, numerator, denominator, expected):
        assert pct(numerator, denominator) == expected

    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=1, max_value=1000))
    def test_half_up_never_below_bankers(self, numerator, denominator):
        rendered = int(pct(numerator, denominator).split()[0])
        exact = 100 * numerator / denominator
        assert abs(rendered - exact) <= 0.5


class TestAlignTable:
    def test_empty(self):
        assert align_table([]) == ""

    def test_alignment(self):
        rendered = align_table(
            [["a", "1"], ["long-name", "22"]], header=["Name", "N"]
        )
        lines = rendered.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        # Right-aligned numeric column.
        assert lines[2].endswith(" 1")
        assert lines[3].endswith("22")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            align_table([["a", "b"], ["only-one"]])

    def test_no_header(self):
        rendered = align_table([["x", "y"]])
        assert rendered == "x  y"
