"""Tests for paper-style formatting."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.formatting import align_table, pct, si_count


class TestSiCount:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (0, "0"),
            (255, "255"),
            (999, "999"),
            (1_000, "1.00 k"),
            (52_310, "52.31 k"),
            (999_999, "1000.00 k"),
            (1_000_000, "1.00 M"),
            (2_250_000, "2.25 M"),
            (63_550_000, "63.55 M"),
        ],
    )
    def test_paper_style(self, value, expected):
        assert si_count(value) == expected

    def test_fractional_below_thousand(self):
        assert si_count(12.5) == "12.50"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            si_count(-1)

    @given(st.integers(min_value=0, max_value=10**12))
    def test_never_raises_for_counts(self, value):
        assert isinstance(si_count(value), str)


class TestPct:
    def test_rounds_to_integer(self):
        assert pct(76.4, 100) == "76 %"
        assert pct(76.6, 100) == "77 %"

    def test_zero_denominator(self):
        assert pct(5, 0) == "- %"

    def test_full(self):
        assert pct(10, 10) == "100 %"


class TestAlignTable:
    def test_empty(self):
        assert align_table([]) == ""

    def test_alignment(self):
        rendered = align_table(
            [["a", "1"], ["long-name", "22"]], header=["Name", "N"]
        )
        lines = rendered.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        # Right-aligned numeric column.
        assert lines[2].endswith(" 1")
        assert lines[3].endswith("22")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            align_table([["a", "b"], ["only-one"]])

    def test_no_header(self):
        rendered = align_table([["x", "y"]])
        assert rendered == "x  y"
