"""Tests for the simulated clock."""

from __future__ import annotations

import pytest

from repro.util.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(100.5).now() == 100.5

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_advance_zero_allowed(self):
        clock = SimClock(1.0)
        assert clock.advance(0.0) == 1.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to(self):
        clock = SimClock(5.0)
        assert clock.advance_to(9.0) == 9.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.999)

    def test_advance_to_now_allowed(self):
        clock = SimClock(5.0)
        assert clock.advance_to(5.0) == 5.0
