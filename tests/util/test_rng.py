"""Tests for the deterministic RNG streams."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import RngFactory, derive_seed, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_different_inputs_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_respects_bit_width(self):
        for bits in (8, 16, 32, 64, 128):
            assert stable_hash("x", bits=bits) < (1 << bits)

    def test_rejects_bad_bit_width(self):
        with pytest.raises(ValueError):
            stable_hash("x", bits=7)
        with pytest.raises(ValueError):
            stable_hash("x", bits=0)

    def test_separator_prevents_concatenation_collisions(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    @given(st.integers(), st.text())
    def test_always_in_range(self, seed, name):
        assert 0 <= stable_hash(seed, name) < (1 << 64)


class TestRngFactory:
    def test_same_name_same_stream(self):
        factory = RngFactory(42)
        assert [factory.stream("x").random() for _ in range(3)] == [
            factory.stream("x").random() for _ in range(3)
        ]

    def test_different_names_decorrelated(self):
        factory = RngFactory(42)
        assert factory.stream("a").random() != factory.stream("b").random()

    def test_different_seeds_differ(self):
        assert RngFactory(1).stream("x").random() != RngFactory(2).stream("x").random()

    def test_child_namespacing(self):
        factory = RngFactory(42)
        child = factory.child("ns")
        assert child.stream("x").random() != factory.stream("x").random()
        assert child.stream("x").random() == RngFactory(
            derive_seed(42, "ns")
        ).stream("x").random()

    def test_choice_weighted_respects_zero_weight(self):
        factory = RngFactory(0)
        for i in range(20):
            picked = factory.choice_weighted(f"pick-{i}", ["a", "b"], [1.0, 0.0])
            assert picked == "a"

    def test_shuffled_returns_permutation(self):
        factory = RngFactory(3)
        items = list(range(50))
        shuffled = factory.shuffled("s", items)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_shuffled_does_not_mutate_input(self):
        factory = RngFactory(3)
        items = [3, 1, 2]
        factory.shuffled("s", items)
        assert items == [3, 1, 2]

    def test_ints_stream_in_bounds(self):
        factory = RngFactory(9)
        stream = factory.ints("i", 5, 7)
        assert all(5 <= next(stream) <= 7 for _ in range(100))
