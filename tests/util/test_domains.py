"""Tests for domain-name algebra."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.domains import (
    is_subdomain_of,
    is_valid_hostname,
    labels,
    normalize,
    parent_domain,
    public_suffix,
    registrable_domain,
)

_label = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=10
)
_hostname = st.lists(_label, min_size=1, max_size=4).map(".".join)


class TestNormalize:
    def test_lowercases(self):
        assert normalize("WWW.Example.COM") == "www.example.com"

    def test_strips_root_dot(self):
        assert normalize("example.com.") == "example.com"

    def test_strips_whitespace(self):
        assert normalize("  example.com ") == "example.com"


class TestValidity:
    @pytest.mark.parametrize(
        "name", ["example.com", "a.b.c.d", "x-y.example.io", "123.example.de"]
    )
    def test_valid(self, name):
        assert is_valid_hostname(name)

    @pytest.mark.parametrize(
        "name",
        ["", "-bad.example.com", "bad-.example.com", "under_score.com",
         "spaces here.com", "a..b", "a." + "x" * 64 + ".com"],
    )
    def test_invalid(self, name):
        assert not is_valid_hostname(name)

    def test_overlong_hostname(self):
        name = ".".join(["a" * 60] * 5)
        assert not is_valid_hostname(name)

    @given(_hostname)
    def test_generated_hostnames_valid(self, name):
        assert is_valid_hostname(name)


class TestPublicSuffix:
    def test_simple(self):
        assert public_suffix("example.com") == "com"

    def test_two_level(self):
        assert public_suffix("shop.example.co.uk") == "co.uk"

    def test_unknown(self):
        assert public_suffix("example.unknown-tld") is None


class TestRegistrableDomain:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("www.google.com", "google.com"),
            ("img.shop.example.co.uk", "example.co.uk"),
            ("example.com", "example.com"),
            ("com", None),
            ("co.uk", None),
            ("example.weirdtld", None),
        ],
    )
    def test_cases(self, name, expected):
        assert registrable_domain(name) == expected


class TestSubdomain:
    def test_self(self):
        assert is_subdomain_of("example.com", "example.com")

    def test_child(self):
        assert is_subdomain_of("img.example.com", "example.com")

    def test_not_suffix_string_match(self):
        # "notexample.com" ends with "example.com" as a string, but is
        # not a subdomain.
        assert not is_subdomain_of("notexample.com", "example.com")

    def test_parent_not_subdomain_of_child(self):
        assert not is_subdomain_of("example.com", "img.example.com")


class TestParentDomain:
    def test_drops_leftmost(self):
        assert parent_domain("a.b.c") == "b.c"

    def test_single_label(self):
        assert parent_domain("com") is None


class TestLabels:
    def test_empty(self):
        assert labels("") == []

    def test_split(self):
        assert labels("A.B.c") == ["a", "b", "c"]
