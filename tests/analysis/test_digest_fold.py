"""Property tests for the mergeable digest fold.

The shard-and-fold digest only works if the fold is a true monoid
action over disjoint site partitions: merging must be associative and
order-insensitive, and the folded digest must depend only on the union
of the per-site chunks — never on how the sites were partitioned into
parts.  Hypothesis drives those laws over arbitrary synthetic chunk
tables; real-study byte-identity is pinned separately by the golden
suite.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.digest import (
    DigestPart,
    fold_study_digest,
    merge_digest_parts,
)

_SITES = tuple(f"site{index:03d}.com" for index in range(12))
_DATASETS = ("har-actual", "har-endless", "alexa", "alexa-nofetch")

#: A synthetic chunk table: dataset key -> {site: content chunk}.
_chunk_tables = st.dictionaries(
    st.sampled_from(_DATASETS),
    st.dictionaries(
        st.sampled_from(_SITES),
        st.binary(min_size=1, max_size=16),
        max_size=len(_SITES),
    ),
    min_size=1,
    max_size=len(_DATASETS),
)


def _header(key: str) -> bytes:
    return repr((key, "model")).encode()


def _whole_part(table: dict[str, dict[str, bytes]]) -> DigestPart:
    return DigestPart({
        key: (_header(key), dict(chunks)) for key, chunks in table.items()
    })


def _partition(table, assignment, n_parts: int) -> list[DigestPart]:
    """Split a chunk table into parts by a per-site shard assignment."""
    buckets: list[dict] = [{} for _ in range(n_parts)]
    for key, chunks in table.items():
        for bucket in buckets:
            bucket.setdefault(key, (_header(key), {}))
        for site, chunk in chunks.items():
            bucket = buckets[assignment(site) % n_parts]
            bucket[key][1][site] = chunk
    return [DigestPart(bucket) for bucket in buckets]


class TestFoldLaws:
    @given(table=_chunk_tables, n_parts=st.integers(1, 7), salt=st.integers())
    @settings(max_examples=60, deadline=None)
    def test_fold_is_partition_invariant(self, table, n_parts, salt):
        """Any disjoint partition folds to the monolithic digest."""
        whole = fold_study_digest([_whole_part(table)])
        parts = _partition(
            table, lambda site: hash((salt, site)), n_parts
        )
        assert fold_study_digest(parts) == whole

    @given(table=_chunk_tables, n_parts=st.integers(2, 5),
           permutation_seed=st.integers())
    @settings(max_examples=60, deadline=None)
    def test_fold_is_order_insensitive(self, table, n_parts,
                                       permutation_seed):
        import random

        parts = _partition(table, hash, n_parts)
        shuffled = list(parts)
        random.Random(permutation_seed).shuffle(shuffled)
        assert fold_study_digest(shuffled) == fold_study_digest(parts)

    @given(table=_chunk_tables)
    @settings(max_examples=40, deadline=None)
    def test_merge_is_associative(self, table):
        a, b, c = _partition(table, hash, 3)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert fold_study_digest([left]) == fold_study_digest([right])
        assert left.datasets.keys() == right.datasets.keys()

    @given(table=_chunk_tables)
    @settings(max_examples=40, deadline=None)
    def test_empty_part_is_identity(self, table):
        part = _whole_part(table)
        assert fold_study_digest([DigestPart(), part]) == (
            fold_study_digest([part])
        )
        assert fold_study_digest([part, DigestPart()]) == (
            fold_study_digest([part])
        )

    @given(table=_chunk_tables, mutation=st.binary(min_size=1, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_any_chunk_change_moves_the_digest(self, table, mutation):
        key = sorted(table)[0]
        chunks = table[key]
        site = sorted(chunks)[0] if chunks else _SITES[0]
        if chunks.get(site) == mutation:
            mutation = mutation + b"x"
        mutated = {
            k: dict(c) if k != key else {**c, site: mutation}
            for k, c in table.items()
        }
        assert fold_study_digest([_whole_part(mutated)]) != (
            fold_study_digest([_whole_part(table)])
        )


class TestMergeErrors:
    def test_conflicting_site_chunks_raise(self):
        a = DigestPart({"d": (_header("d"), {"s.com": b"one"})})
        b = DigestPart({"d": (_header("d"), {"s.com": b"two"})})
        with pytest.raises(ValueError, match="not disjoint"):
            a.merge(b)

    def test_same_site_same_chunk_merges(self):
        a = DigestPart({"d": (_header("d"), {"s.com": b"one"})})
        assert fold_study_digest([a, a]) == fold_study_digest([a])

    def test_header_mismatch_raises(self):
        a = DigestPart({"d": (b"header-one", {})})
        b = DigestPart({"d": (b"header-two", {})})
        with pytest.raises(ValueError, match="identity"):
            merge_digest_parts([a, b])
