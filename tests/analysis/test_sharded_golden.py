"""Shard-count invariance against the pinned golden digest.

The tentpole guarantee: partitioning the crawls into N shards and
folding the partials is byte-identical to the monolithic study — for
every shard count, under every executor.  The serial 1-shard study is
the golden fixture itself; everything else must digest to the same
pinned value (``tests/golden/digest.txt``).
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest

from repro.analysis.digest import dataset_digest, study_digest
from repro.analysis.study import Study
from repro.runtime import ProcessExecutor, ThreadExecutor

pytestmark = [pytest.mark.slow, pytest.mark.golden]

_GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"


@pytest.fixture(scope="module")
def pinned_digest() -> str:
    return (_GOLDEN_DIR / "digest.txt").read_text().strip()


class TestShardCountInvariance:
    def test_golden_fixture_is_the_one_shard_fold(self, golden_study,
                                                  pinned_digest):
        assert golden_study.config.shards == 1
        assert study_digest(golden_study) == pinned_digest

    @pytest.mark.parametrize("shards", [2, 3, 7])
    def test_serial_n_shard_fold_matches_golden(self, golden_regen,
                                                pinned_digest, shards):
        config = replace(golden_regen.golden_config(), shards=shards)
        assert study_digest(Study.run(config)) == pinned_digest

    def test_thread_executor_sharded_matches_golden(self, golden_regen,
                                                    pinned_digest):
        config = replace(golden_regen.golden_config(), shards=3)
        with ThreadExecutor(4) as executor:
            study = Study.run(config, executor=executor)
        assert study_digest(study) == pinned_digest

    def test_process_executor_sharded_matches_golden(self, golden_regen,
                                                     pinned_digest):
        config = replace(golden_regen.golden_config(), shards=7)
        with ProcessExecutor(2) as executor:
            study = Study.run(config, executor=executor)
        assert study_digest(study) == pinned_digest

    def test_sharded_datasets_match_per_dataset(self, golden_study,
                                                golden_regen):
        """Invariance holds dataset by dataset, not just in aggregate."""
        config = replace(golden_regen.golden_config(), shards=3)
        sharded = Study.run(config)
        assert sharded.datasets.keys() == golden_study.datasets.keys()
        for key in golden_study.datasets:
            assert dataset_digest(sharded.datasets[key]) == (
                dataset_digest(golden_study.datasets[key])
            ), key
        assert sharded.alexa_common_sites == golden_study.alexa_common_sites
        assert sharded.fault_counts() == golden_study.fault_counts()
