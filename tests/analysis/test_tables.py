"""Tests for the table renderers against the shared small study."""

from __future__ import annotations

import pytest

from repro.analysis.tables import ALL_TABLES, table1, table2, table3, table4, \
    table5, table6, table7, table11, table12


class TestTable1:
    def test_layout(self, small_study):
        result = table1(small_study)
        assert [row[0] for row in result.rows] == [
            "CERT", "IP", "CRED", "Redund.", "Total"
        ]
        # 1 label + 5 datasets × 2 columns.
        assert all(len(row) == 11 for row in result.rows)
        assert "HAR Endless Sites" in result.header

    def test_no_fetch_column_has_zero_cred(self, small_study):
        result = table1(small_study)
        cred_row = result.rows[2]
        assert cred_row[-1] == "0" and cred_row[-2] == "0"

    def test_renders(self, small_study):
        text = table1(small_study).render()
        assert "Table 1" in text
        assert "CERT" in text


class TestOriginTables:
    def test_table2_top_origin_is_analytics(self, small_study):
        result = table2(small_study)
        assert result.rows[0][0] == "www.google-analytics.com"
        assert result.rows[1][0].strip().startswith("prev: www.googletagmanager")

    def test_table2_limits_to_four_origins(self, small_study):
        origins = [row for row in table2(small_study).rows
                   if not row[0].strip().startswith("prev:")]
        assert len(origins) <= 4

    def test_table12_is_superset_of_table2(self, small_study):
        t2 = {row[0] for row in table2(small_study).rows}
        t12 = {row[0] for row in table12(small_study).rows}
        assert t2 <= t12

    def test_ranks_are_consistent(self, small_study):
        result = table12(small_study)
        ranks = [
            int(row[1]) for row in result.rows
            if not row[0].strip().startswith("prev:") and row[1] not in ("", "-")
        ]
        assert ranks == sorted(ranks)


class TestIssuerTables:
    def test_table3_contains_lets_encrypt_and_gts(self, small_study):
        issuers = {row[0] for row in table3(small_study).rows}
        assert "Let's Encrypt" in issuers or "Google Trust Services" in issuers

    def test_table5_covers_all_connections(self, small_study):
        result = table5(small_study)
        assert len(result.rows) >= 5
        # Issuer market share: GTS leads connections, as in the paper.
        assert result.rows[0][0] in ("Google Trust Services", "Let's Encrypt",
                                     "DigiCert Inc", "Cloudflare, Inc.")

    def test_table4_shows_issuer_abbreviations(self, small_study):
        issuer_cells = {
            row[3] for row in table4(small_study).rows
            if not row[0].strip().startswith("prev:") and row[3]
        }
        assert issuer_cells <= {"LE", "GTS", "DCI", "Sectigo Limited",
                                "GlobalSign nv-sa", "Amazon",
                                "GoDaddy.com, Inc."}


class TestTable6:
    def test_google_dominates_ip_cause(self, small_study):
        result = table6(small_study)
        assert result.rows[0][0] == "GOOGLE"

    def test_facebook_present(self, small_study):
        names = {row[0] for row in table6(small_study).rows}
        assert "FACEBOOK" in names


class TestTable7:
    def test_overlap_counts_bounded_by_full_datasets(self, small_study):
        full = small_study.dataset("har-endless").report
        overlap = small_study.dataset("har-overlap").report
        assert overlap.h2_sites <= full.h2_sites
        assert overlap.redundant_connections <= full.redundant_connections
        result = table7(small_study)
        assert all(len(row) == 5 for row in result.rows)


class TestTable11:
    def test_fleet_listing(self, small_study):
        result = table11(small_study)
        assert len(result.rows) == 14
        assert ["internal", "Germany", "RWTH Aachen University"] in result.rows


class TestAllTables:
    @pytest.mark.parametrize("name", sorted(ALL_TABLES))
    def test_every_table_renders(self, small_study, name):
        result = ALL_TABLES[name](small_study)
        text = result.render()
        assert result.table_id in text
        assert result.rows, f"{name} produced no rows"
