"""Tests for the study driver and the mitigation ablations."""

from __future__ import annotations

import pytest

from repro.analysis.ablation import compare_mitigations
from repro.analysis.study import DATASET_LABELS, StudyConfig
from repro.core.causes import Cause


class TestStudy:
    def test_all_datasets_built(self, small_study):
        assert set(small_study.datasets) == set(DATASET_LABELS)

    def test_alexa_common_sites_reachable_in_both(self, small_study):
        for domain in small_study.alexa_common_sites:
            assert not small_study.alexa_run.measurements[domain].unreachable
            assert not small_study.alexa_nofetch_run.measurements[
                domain
            ].unreachable

    def test_alexa_datasets_share_site_set(self, small_study):
        alexa = small_study.dataset("alexa")
        nofetch = small_study.dataset("alexa-nofetch")
        assert set(alexa.classifications) == set(nofetch.classifications)

    def test_overlap_is_intersection(self, small_study):
        har = set(small_study.dataset("har-endless").classifications)
        alexa = set(small_study.dataset("alexa-endless").classifications)
        overlap = set(small_study.dataset("har-overlap").classifications)
        assert overlap == har & alexa

    def test_endless_bounds_actual(self, small_study):
        endless = small_study.dataset("alexa-endless").report
        actual = small_study.dataset("alexa").report
        assert endless.redundant_connections >= actual.redundant_connections

    def test_small_config_helper(self):
        config = StudyConfig(n_sites=5000).small()
        assert config.n_sites == 200

    def test_lifetimes_populated(self, small_study):
        lifetimes = small_study.connection_lifetimes()
        assert lifetimes
        assert all(lifetime >= 0 for lifetime in lifetimes)


@pytest.fixture(scope="module")
def mitigation_comparison():
    return compare_mitigations(seed=7, n_sites=120, top=60)


class TestMitigations:
    def test_no_fetch_removes_cred(self, mitigation_comparison):
        outcome = mitigation_comparison.outcomes["no-fetch-credentials"]
        assert outcome.report.by_cause[Cause.CRED].connections == 0
        assert mitigation_comparison.reduction("no-fetch-credentials") > 0

    def test_coordinated_dns_cuts_ip(self, mitigation_comparison):
        baseline = mitigation_comparison.baseline.report
        outcome = mitigation_comparison.outcomes["coordinated-dns"].report
        assert outcome.by_cause[Cause.IP].connections < (
            baseline.by_cause[Cause.IP].connections
        )

    def test_merged_certificates_cut_cert(self, mitigation_comparison):
        baseline = mitigation_comparison.baseline.report
        outcome = mitigation_comparison.outcomes["merged-certificates"].report
        assert outcome.by_cause[Cause.CERT].connections < max(
            1, baseline.by_cause[Cause.CERT].connections
        )

    def test_origin_frames_reduce_redundancy(self, mitigation_comparison):
        assert mitigation_comparison.reduction("origin-frames") > 0

    def test_every_mitigation_helps(self, mitigation_comparison):
        for name in mitigation_comparison.outcomes:
            assert mitigation_comparison.reduction(name) >= 0, name

    def test_render(self, mitigation_comparison):
        text = mitigation_comparison.render()
        assert "baseline" in text
        assert "coordinated-dns" in text
