"""Tests for the internal-pages extension."""

from __future__ import annotations

import pytest

from repro.analysis.internal import compare_landing_vs_internal
from repro.web.ecosystem import Ecosystem, EcosystemConfig


class TestInternalDocuments:
    def test_sites_have_internal_pages(self, small_ecosystem):
        site = small_ecosystem.websites[0]
        assert len(site.internal_paths) == (
            small_ecosystem.config.internal_pages_per_site
        )
        for path in site.internal_paths:
            document = site.document_for(path)
            assert document is not None
            assert document.domain == site.domain
            assert document.path == path

    def test_document_for_landing(self, small_ecosystem):
        site = small_ecosystem.websites[0]
        assert site.document_for("/") is site.document
        assert site.document_for("") is site.document
        assert site.document_for("/missing") is None

    def test_internal_embeds_subset_of_landing(self):
        eco = Ecosystem.generate(EcosystemConfig(seed=3, n_sites=60))
        landing_domains_union = set()
        internal_only = set()
        for site in eco.websites:
            landing_domains = site.document.domains()
            landing_domains_union |= landing_domains
            for path in site.internal_paths:
                internal = site.document_for(path).domains()
                third_party_internal = {
                    d for d in internal if not d.endswith(site.domain)
                }
                third_party_landing = {
                    d for d in landing_domains if not d.endswith(site.domain)
                }
                internal_only |= third_party_internal - third_party_landing
        # Internal pages only reuse landing-page services (retention
        # model), so cross-page-only third parties must be rare;
        # geo-independent domains from re-rolled embeds are allowed.
        assert len(internal_only) <= len(landing_domains_union)

    def test_browser_visits_internal_page(self, browser, small_ecosystem):
        site = small_ecosystem.websites[0]
        path = site.internal_paths[0]
        visit = browser.visit(f"{site.domain}{path}")
        assert visit.ok
        assert visit.load.url.endswith(path)
        assert visit.connections[0].sni == site.domain

    def test_unknown_internal_path_unreachable(self, browser, small_ecosystem):
        site = small_ecosystem.websites[0]
        visit = browser.visit(f"{site.domain}/definitely/not/there")
        assert visit.unreachable


class TestComparison:
    @pytest.fixture(scope="class")
    def comparison(self, small_ecosystem):
        return compare_landing_vs_internal(small_ecosystem, top=40, seed=5)

    def test_both_reports_populated(self, comparison):
        assert comparison.landing.h2_sites > 10
        assert comparison.internal.h2_sites > 10

    def test_internal_pages_are_lighter(self, comparison):
        """Retention < 1 → internal pages carry fewer third parties."""
        landing_rate = (
            comparison.landing.h2_connections / comparison.landing.h2_sites
        )
        internal_rate = (
            comparison.internal.h2_connections / comparison.internal.h2_sites
        )
        assert internal_rate < landing_rate

    def test_bias_is_bounded(self, comparison):
        assert -0.5 <= comparison.landing_bias() <= 0.5

    def test_render(self, comparison):
        text = comparison.render()
        assert "landing" in text and "internal" in text
        assert "bias" in text
