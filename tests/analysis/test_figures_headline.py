"""Tests for figure renderers and the headline statistics."""

from __future__ import annotations


from repro.analysis.figures import ccdf_complement, figure2, figure3
from repro.analysis.headline import headline


class TestCcdfComplement:
    def test_fills_gaps(self):
        points = ccdf_complement([0, 3])
        assert points == [(0, 1.0), (1, 0.5), (2, 0.5), (3, 0.5)]

    def test_empty(self):
        assert ccdf_complement([]) == []


class TestFigure2:
    def test_series_present(self, small_study):
        figure = figure2(small_study)
        assert set(figure.series) == {"har-endless", "alexa", "alexa-nofetch"}

    def test_monotone_decreasing(self, small_study):
        figure = figure2(small_study)
        for points in figure.series.values():
            shares = [share for _, share in points]
            assert all(a >= b for a, b in zip(shares, shares[1:]))

    def test_alexa_dominates_har(self, small_study):
        """Top sites open more redundant connections (paper Figure 2)."""
        figure = figure2(small_study)
        assert figure.share_with_at_least("alexa", 3) >= (
            figure.share_with_at_least("har-endless", 3)
        )

    def test_nofetch_below_fetch(self, small_study):
        figure = figure2(small_study)
        assert figure.share_with_at_least("alexa-nofetch", 2) <= (
            figure.share_with_at_least("alexa", 2) + 1e-9
        )

    def test_renders(self, small_study):
        text = figure2(small_study).render(max_x=5)
        assert "Figure 2" in text
        assert ">=  0" in text


class TestFigure3:
    def test_classifications(self, small_study):
        figure = figure3(small_study)
        classes = figure.classifications()
        assert classes[
            "www.google-analytics.com / prev: www.googletagmanager.com"
        ] == "never"
        values = set(classes.values())
        assert "sometimes" in values

    def test_renders_heatmap(self, small_study):
        text = figure3(small_study).render(max_slots=20)
        assert "Figure 3" in text
        assert "www.google-analytics.com" in text


class TestHeadline:
    def test_shapes(self, small_study):
        stats = headline(small_study)
        # Ordering constraints straight from the paper's Table 1 logic.
        assert stats.har_endless_redundant_share >= (
            stats.har_immediate_redundant_share
        )
        assert stats.alexa_redundant_share >= 0.8
        assert stats.cred_connections_without_fetch == 0
        assert stats.cred_connections_with_fetch > 0
        assert 0.05 <= stats.redundant_reduction_share <= 0.5

    def test_lifetime_stats(self, small_study):
        stats = headline(small_study)
        assert 0.0 < stats.closed_connection_share < 0.2
        if stats.median_closed_lifetime_s is not None:
            assert 30.0 < stats.median_closed_lifetime_s < 300.0

    def test_renders(self, small_study):
        text = headline(small_study).render()
        assert "Headline statistics" in text
        assert "privacy-mode-patched" in text
