"""Tests for the CLI, the exporters and HAR-corpus persistence."""

from __future__ import annotations

import csv
import io

import pytest

from repro.analysis.export import figure2_to_csv, table_to_csv, table_to_markdown
from repro.analysis.figures import figure2
from repro.analysis.tables import table1, table11
from repro.cli import build_parser, main
from repro.core.session import LifetimeModel
from repro.crawl.httparchive import HttpArchiveCrawler
from repro.har.store import load_corpus, save_corpus


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_study_headline(self, capsys):
        assert main(["study", "--sites", "60", "--headline"]) == 0
        out = capsys.readouterr().out
        assert "Headline statistics" in out

    def test_study_single_table(self, capsys):
        assert main(["study", "--sites", "60", "--table", "11"]) == 0
        out = capsys.readouterr().out
        assert "Table 11" in out
        assert "RWTH Aachen University" in out

    def test_study_unknown_table(self, capsys):
        assert main(["study", "--sites", "60", "--table", "99"]) == 2

    def test_audit_default_site(self, capsys):
        assert main(["audit", "--sites", "60"]) == 0
        out = capsys.readouterr().out
        assert "HTTP/2 connections" in out

    def test_audit_unreachable(self, capsys):
        assert main(["audit", "no-such-site.example", "--sites", "30"]) == 1

    def test_dnsstudy(self, capsys):
        assert main(["dnsstudy", "--days", "0.1", "--sites", "30"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_mitigations(self, capsys):
        assert main(["mitigations", "--sites", "50"]) == 0
        assert "coordinated-dns" in capsys.readouterr().out

    def test_perf(self, capsys):
        assert main(["perf", "--sites", "60"]) == 0
        assert "avoidable connections" in capsys.readouterr().out

    def test_report(self, capsys, tmp_path):
        output = tmp_path / "report.md"
        assert main(["report", str(output), "--sites", "60"]) == 0
        assert output.exists()
        assert "Table 1:" in output.read_text()

    def test_validate_passes_at_calibrated_scale(self, capsys):
        assert main(["validate", "--sites", "200"]) == 0
        out = capsys.readouterr().out
        assert "scorecard" in out


class TestExport:
    def test_table_markdown(self, small_study):
        text = table_to_markdown(table11(small_study))
        lines = text.splitlines()
        assert lines[0].startswith("**Table 11")
        assert lines[2].startswith("| IP |") or "IP" in lines[2]
        assert len(lines) == 3 + 1 + 14  # title, blank, header, rule? adjust

    def test_table_csv_roundtrip(self, small_study):
        text = table_to_csv(table1(small_study))
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "Cause"
        assert rows[1][0] == "CERT"
        assert len(rows) == 6  # header + 5 rows

    def test_figure2_csv(self, small_study):
        text = figure2_to_csv(figure2(small_study))
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["dataset", "redundant_connections", "share_at_least"]
        datasets = {row[0] for row in rows[1:]}
        assert datasets == {"har-endless", "alexa", "alexa-nofetch"}
        shares = [float(row[2]) for row in rows[1:]]
        assert all(0.0 <= share <= 1.0 for share in shares)


class TestHarStore:
    def test_save_load_roundtrip(self, small_ecosystem, tmp_path):
        crawler = HttpArchiveCrawler(ecosystem=small_ecosystem, seed=31)
        corpus = crawler.crawl(small_ecosystem.alexa_list(8))
        save_corpus(corpus, tmp_path / "corpus")
        loaded = load_corpus(tmp_path / "corpus")
        assert loaded.name == corpus.name
        assert set(loaded.hars) == set(corpus.hars)
        for domain in corpus.hars:
            assert loaded.hars[domain].to_dict() == corpus.hars[domain].to_dict()

    def test_loaded_corpus_classifies_identically(self, small_ecosystem,
                                                  tmp_path):
        crawler = HttpArchiveCrawler(ecosystem=small_ecosystem, seed=32)
        corpus = crawler.crawl(small_ecosystem.alexa_list(8))
        save_corpus(corpus, tmp_path / "c2")
        loaded = load_corpus(tmp_path / "c2")
        original = corpus.classify(model=LifetimeModel.ENDLESS)
        reloaded = loaded.classify(model=LifetimeModel.ENDLESS)
        assert original.report.redundant_connections == (
            reloaded.report.redundant_connections
        )
        assert original.report.h2_connections == reloaded.report.h2_connections

    def test_missing_index_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_corpus(tmp_path / "nope")
