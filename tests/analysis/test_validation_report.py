"""Tests for the validation scorecard and the report generator."""

from __future__ import annotations

from repro.analysis.report import generate_report, write_report
from repro.analysis.validation import validate_study


class TestValidation:
    def test_scorecard_passes_on_calibrated_study(self, small_study):
        scorecard = validate_study(small_study)
        assert scorecard.all_passed, scorecard.render()
        assert scorecard.passed == len(scorecard.checks)
        assert len(scorecard.checks) >= 15

    def test_every_check_cites_a_claim(self, small_study):
        scorecard = validate_study(small_study)
        for check in scorecard.checks:
            assert "§" in check.claim or "Table" in check.claim or (
                "Figure" in check.claim
            ), check.name

    def test_render_contains_status(self, small_study):
        text = validate_study(small_study).render()
        assert "PASS" in text
        assert "scorecard" in text


class TestReport:
    def test_report_contains_all_artifacts(self, small_study):
        report = generate_report(small_study)
        for i in range(1, 13):
            assert f"Table {i}:" in report
        assert "Figure 2" in report
        assert "Figure 3" in report
        assert "Headline statistics" in report
        assert "scorecard" in report

    def test_report_is_valid_markdown_tables(self, small_study):
        report = generate_report(small_study)
        # Every markdown table header row is followed by a rule row.
        lines = report.splitlines()
        for index, line in enumerate(lines):
            if line.startswith("**Table"):
                assert lines[index + 2].startswith("| ")
                assert set(lines[index + 3]) <= {"|", "-"}

    def test_write_report(self, small_study, tmp_path):
        path = write_report(small_study, tmp_path / "out" / "report.md",
                            include_dns_study=False)
        assert path.exists()
        content = path.read_text()
        assert "Table 1:" in content
        assert "Figure 3" not in content
