"""Golden-value regression tests.

Live study output for ``StudyConfig(seed=7, n_sites=120)`` is diffed
against the snapshots in ``tests/golden/``.  A failure here means some
layer of the pipeline changed behaviour; if the change is intentional,
regenerate and review the snapshots:

    PYTHONPATH=src python tests/golden/regenerate.py
"""

from __future__ import annotations

import difflib
from pathlib import Path

import pytest

pytestmark = pytest.mark.golden

_GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"


@pytest.fixture(scope="module")
def golden_artifacts(
    golden_regen, golden_study, faulted_golden_study,
    longitudinal_golden_result, h3_golden_study,
) -> dict[str, str]:
    """Live render of every golden artefact at the pinned configs.

    The studies come from session-scoped fixtures (see conftest), so
    the faults, evolve and h3 differential suites reuse them instead
    of re-running more n=120 pipelines.
    """
    artifacts = golden_regen.render_artifacts(golden_study)
    artifacts.update(
        golden_regen.render_faulted_artifacts(faulted_golden_study)
    )
    artifacts["longitudinal_digest.txt"] = (
        golden_regen.render_longitudinal_artifact(
            longitudinal_golden_result.digests()
        )
    )
    artifacts.update(golden_regen.render_h3_artifacts(h3_golden_study))
    return artifacts


def _golden_names() -> list[str]:
    names = sorted(
        path.name for path in _GOLDEN_DIR.glob("*.txt")
    )
    assert names, "golden snapshots missing; run tests/golden/regenerate.py"
    return names


@pytest.mark.parametrize("name", _golden_names())
def test_matches_snapshot(golden_artifacts, name):
    expected = (_GOLDEN_DIR / name).read_text()
    actual = golden_artifacts.get(name)
    assert actual is not None, (
        f"{name} is no longer rendered; update tests/golden/regenerate.py"
    )
    if actual != expected:
        diff = "".join(
            difflib.unified_diff(
                expected.splitlines(keepends=True),
                actual.splitlines(keepends=True),
                fromfile=f"golden/{name}",
                tofile="live",
            )
        )
        pytest.fail(
            f"golden mismatch for {name} (regenerate via "
            f"`PYTHONPATH=src python tests/golden/regenerate.py` if "
            f"intentional):\n{diff}"
        )


def test_no_stale_snapshots(golden_artifacts):
    """Every rendered artefact has a snapshot and vice versa."""
    assert set(golden_artifacts) == set(_golden_names())
