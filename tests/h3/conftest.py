"""Fixtures for the HTTP/3 rollout (:mod:`repro.h3`) suite.

The expensive world (a broad-rollout 120-site ecosystem) is
session-scoped like ``small_ecosystem``; the golden-scale h3 study
comes from the top-level ``h3_golden_study`` fixture so the pinned
digest is built exactly once per run.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.browser.browser import BrowserConfig, ChromiumBrowser
from repro.util.clock import SimClock
from repro.web.ecosystem import Ecosystem, EcosystemConfig


@pytest.fixture(scope="session")
def h3_ecosystem() -> Ecosystem:
    """The shared small world under the broad alt-svc rollout."""
    return Ecosystem.generate(
        EcosystemConfig(seed=7, n_sites=120, h3_profile="broad")
    )


@pytest.fixture()
def h3_browser_factory(h3_ecosystem: Ecosystem):
    """Factory for browsers over the broad-rollout world."""

    def make(config: BrowserConfig | None = None,
             seed: int = 1234) -> ChromiumBrowser:
        return ChromiumBrowser(
            ecosystem=h3_ecosystem,
            resolver=h3_ecosystem.make_resolver(),
            clock=SimClock(),
            rng=random.Random(seed),
            config=config or BrowserConfig(),
        )

    return make


@pytest.fixture()
def repo_root() -> Path:
    return Path(__file__).resolve().parents[2]
