"""The differential h3 invariants.

Mirrors ``tests/faults/test_differential.py`` for the ``h3_profile``
axis:

1. **Determinism under rollout** — for every named adoption profile,
   serial, thread and process executors must produce byte-identical
   ``study_digest``s, and the digest must be shard-count-invariant:
   adoption verdicts are pure threshold hashes of ``(seed, name)``, so
   neither scheduling nor partitioning may leak in.
2. **Inertness of the empty profile** — ``h3_profile="none"`` compiles
   to no plan at all; the pinned clean golden digest (captured before
   the h3 machinery existed) must reproduce exactly, and the canonical
   broad-rollout study must match its own pinned digest so the h3
   numbers are regression-locked like Table 1.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.digest import study_digest
from repro.analysis.study import Study, StudyConfig
from repro.runtime import ProcessExecutor, ThreadExecutor

pytestmark = pytest.mark.slow

_GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"

#: Every named (non-empty) adoption profile.
PROFILES = ("cdn-first", "broad")

#: Differential scale: small enough to afford the executor x profile x
#: shard matrix, large enough that both populations adopt.
_SCALE = dict(n_sites=40, dns_study_days=0.25)

#: Shard counts the digest must be invariant over (1 is the serial
#: baseline's default).
_SHARD_COUNTS = (2, 3, 7)


def _config(profile: str, **overrides) -> StudyConfig:
    return StudyConfig(seed=7, h3_profile=profile, **_SCALE, **overrides)


@pytest.fixture(scope="module")
def serial_studies() -> dict[str, Study]:
    """One serial study per profile (plus the h2-only baseline)."""
    return {
        profile: Study.run(_config(profile))
        for profile in ("none",) + PROFILES
    }


class TestExecutorIndependence:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_thread_executor_matches_serial(self, serial_studies, profile):
        with ThreadExecutor(4) as executor:
            threaded = Study.run(_config(profile), executor=executor)
        assert study_digest(threaded) == study_digest(
            serial_studies[profile]
        ), profile

    @pytest.mark.parametrize("profile", PROFILES)
    def test_process_executor_matches_serial(self, serial_studies, profile):
        with ProcessExecutor(2) as executor:
            processed = Study.run(_config(profile), executor=executor)
        assert study_digest(processed) == study_digest(
            serial_studies[profile]
        ), profile


class TestShardInvariance:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("shards", _SHARD_COUNTS)
    def test_digest_is_shard_count_invariant(self, serial_studies,
                                             profile, shards):
        sharded = Study.run(_config(profile, shards=shards))
        assert study_digest(sharded) == study_digest(
            serial_studies[profile]
        ), (profile, shards)


class TestProfilesPerturb:
    def test_every_profile_diverges_from_baseline(self, serial_studies):
        baseline = study_digest(serial_studies["none"])
        for profile in PROFILES:
            assert study_digest(serial_studies[profile]) != baseline, profile

    def test_profiles_pairwise_distinct(self, serial_studies):
        digests = {
            profile: study_digest(serial_studies[profile])
            for profile in PROFILES
        }
        assert len(set(digests.values())) == len(digests), digests

    def test_rollout_produces_h3_connections(self, serial_studies):
        for profile in PROFILES:
            report = serial_studies[profile].datasets["alexa"].report
            assert report.h3_connections > 0, profile

    def test_baseline_stays_h2_only(self, serial_studies):
        for dataset in serial_studies["none"].datasets.values():
            assert dataset.report.h3_connections == 0


class TestPinnedGoldens:
    def test_empty_plan_reproduces_pinned_golden_digest(self, golden_study):
        """h3 machinery off => zero behavioural drift.

        ``digest.txt`` was captured before the h3 subsystem existed; a
        study run through the fully h3-wired stack with the empty plan
        must still hash to it, byte for byte.
        """
        pinned = (_GOLDEN_DIR / "digest.txt").read_text().strip()
        assert golden_study.config.h3_profile == "none"
        assert study_digest(golden_study) == pinned

    def test_h3_golden_digest_pinned(self, h3_golden_study):
        pinned = (_GOLDEN_DIR / "h3_digest.txt").read_text().strip()
        assert study_digest(h3_golden_study) == pinned

    def test_h3_golden_differs_from_clean(self, golden_study,
                                          h3_golden_study):
        assert study_digest(h3_golden_study) != study_digest(golden_study)

    def test_h3_golden_upgrades_every_alexa_dataset(self, h3_golden_study):
        for name in ("alexa", "alexa-nofetch"):
            assert h3_golden_study.datasets[name].report.h3_connections > 0
