"""Unit tests for the alt-svc adoption plan layer (:mod:`repro.h3`)."""

from __future__ import annotations

import pytest

from repro.h3 import (
    PROFILES,
    H3Kind,
    H3Plan,
    H3Profile,
    H3Spec,
    apply_h3_adoption,
    h3_profile,
    profile_names,
)
from repro.web.ecosystem import Ecosystem, EcosystemConfig


class TestRegistry:
    def test_registered_names(self):
        assert profile_names() == ["broad", "cdn-first", "none"]

    def test_none_is_empty(self):
        assert h3_profile("none").empty
        assert not h3_profile("cdn-first").empty
        assert not h3_profile("broad").empty

    def test_cdn_first_shape(self):
        profile = h3_profile("cdn-first")
        assert profile.fraction_for(H3Kind.PROVIDER_ADOPT) > (
            profile.fraction_for(H3Kind.ORIGIN_ADOPT)
        )

    def test_broad_adopts_more_than_cdn_first(self):
        for kind in H3Kind:
            assert h3_profile("broad").fraction_for(kind) >= (
                h3_profile("cdn-first").fraction_for(kind)
            )

    def test_unknown_profile_lists_names(self):
        with pytest.raises(ValueError) as error:
            h3_profile("warp")
        message = str(error.value)
        assert "'warp'" in message
        for name in profile_names():
            assert name in message
        assert "adopt-<fraction>" in message

    def test_lookup_returns_registry_object(self):
        assert h3_profile("broad") is PROFILES["broad"]


class TestAdoptFractionProfiles:
    def test_synthesised_fractions(self):
        profile = h3_profile("adopt-0.4")
        assert profile.fraction_for(H3Kind.ORIGIN_ADOPT) == 0.4
        assert profile.fraction_for(H3Kind.PROVIDER_ADOPT) == 0.4
        assert not profile.empty

    def test_integer_spelling(self):
        assert h3_profile("adopt-1").fraction_for(H3Kind.ORIGIN_ADOPT) == 1.0

    @pytest.mark.parametrize("name", ["adopt-1.5", "adopt--0.1", "adopt-",
                                      "adopt-x", "adopt-0.5x"])
    def test_out_of_range_or_malformed_rejected(self, name):
        with pytest.raises(ValueError):
            h3_profile(name)


class TestSpecsAndProfiles:
    def test_fraction_bounds_enforced(self):
        with pytest.raises(ValueError):
            H3Spec(H3Kind.ORIGIN_ADOPT, fraction=1.01)
        with pytest.raises(ValueError):
            H3Spec(H3Kind.ORIGIN_ADOPT, fraction=-0.01)

    def test_duplicate_kinds_rejected(self):
        with pytest.raises(ValueError):
            H3Profile("dup", "duplicate", (
                H3Spec(H3Kind.ORIGIN_ADOPT, 0.1),
                H3Spec(H3Kind.ORIGIN_ADOPT, 0.2),
            ))


class TestCompile:
    def test_none_compiles_to_no_plan(self):
        assert H3Plan.compile("none", seed=7) is None
        assert H3Plan.compile(h3_profile("none"), seed=7) is None

    def test_named_profile_compiles(self):
        plan = H3Plan.compile("broad", seed=7)
        assert plan is not None
        assert plan.profile is PROFILES["broad"]
        assert plan.seed == 7

    def test_zero_fraction_never_adopts(self):
        plan = H3Plan.compile("adopt-0.0", seed=7)
        assert plan is not None  # non-empty profile, inert verdicts
        assert not any(
            plan.adopts(kind, f"site{i:03d}.com")
            for kind in H3Kind for i in range(50)
        )

    def test_full_fraction_always_adopts(self):
        plan = H3Plan.compile("adopt-1.0", seed=7)
        assert all(
            plan.adopts(kind, f"site{i:03d}.com")
            for kind in H3Kind for i in range(50)
        )


class TestApplyAdoption:
    def _world(self, profile: str) -> Ecosystem:
        return Ecosystem.generate(
            EcosystemConfig(seed=7, n_sites=40, h3_profile=profile)
        )

    def test_none_profile_applies_nothing(self):
        assert apply_h3_adoption(self._world("none")) == ()

    def test_broad_profile_adopts_both_populations(self):
        counts = dict(apply_h3_adoption(self._world("broad")))
        assert counts.get("origin-adopt", 0) > 0
        assert counts.get("provider-adopt", 0) > 0

    def test_application_is_idempotent(self):
        # Flags are only ever set, never cleared: a second application
        # (e.g. h3-rollout churn after generation) changes nothing.
        world = self._world("broad")
        before = {
            site.domain: [
                server.alt_svc_h3
                for server in world.fleet_for([site.domain])
            ]
            for site in world.websites
        }
        apply_h3_adoption(world)
        after = {
            site.domain: [
                server.alt_svc_h3
                for server in world.fleet_for([site.domain])
            ]
            for site in world.websites
        }
        assert before == after

    def test_broad_world_advertises_more_than_clean(self):
        def advertising(world: Ecosystem) -> int:
            count = 0
            for site in world.websites:
                domains = [site.domain, *site.shard_domains()]
                count += sum(
                    1 for server in world.fleet_for(domains)
                    if server.alt_svc_h3
                )
            return count

        assert advertising(self._world("broad")) > (
            advertising(self._world("none"))
        )
