"""Alt-svc discovery dynamics under the ``h3_profile`` axis.

Three layers, bottom up:

* **pool** — first contact with an advertising endpoint negotiates the
  server's ALPN (h2), the offer is remembered, and the host's *next*
  connection upgrades to h3: fresh, or coalesced onto an existing h3
  session, never onto an h2 alias;
* **reuse predicate** — an h3 request can only ride an h3 connection
  (RFC 9114 §3.3 inherits the coalescing conditions but not the
  transport);
* **browser/classifier** — a broad-rollout world produces h3 sessions
  whose redundancy is attributed per protocol (an h3 hit's witness is
  always h3).
"""

from __future__ import annotations

import random

from repro.browser.browser import BrowserConfig
from repro.browser.pool import ConnectionPool
from repro.core.reuse import could_reuse, reuse_blockers
from repro.core.session import SessionRecord
from repro.tls.certificate import Certificate
from repro.web.server import OriginServer


def _world(alt_svc_h3: bool = True):
    """Two shared-cert endpoints advertising h3, one laggard on .3."""
    shared = Certificate(serial=1, subject="a.example.com",
                         sans=("a.example.com", "b.example.com"),
                         issuer_org="CA")
    other = Certificate(serial=2, subject="c.example.com",
                        sans=("c.example.com",), issuer_org="CA")
    servers = {}
    for ip in ("10.0.0.1", "10.0.0.2"):
        servers[ip] = OriginServer(
            ip=ip, name="shared",
            cert_map={"a.example.com": shared, "b.example.com": shared},
            default_certificate=shared,
            alt_svc_h3=alt_svc_h3,
        )
    servers["10.0.0.3"] = OriginServer(
        ip="10.0.0.3", name="laggard",
        cert_map={"c.example.com": other},
        default_certificate=other,
    )
    return servers


def _pool(servers=None, **kwargs):
    servers = servers or _world()
    return ConnectionPool(
        server_lookup=servers.__getitem__, rng=random.Random(1), **kwargs
    )


class TestPoolDiscovery:
    def test_first_contact_negotiates_h2_then_upgrades(self):
        pool = _pool(h3_discovery=True)
        first = pool.get_connection("a.example.com", ("10.0.0.1",),
                                    privacy_mode=False, now=0.0)
        assert first.connection.protocol == "h2"
        assert not first.h3_upgraded
        second = pool.get_connection("a.example.com", ("10.0.0.1",),
                                     privacy_mode=False, now=1.0)
        assert second.connection.protocol == "h3"
        assert second.created and second.h3_upgraded
        assert second.connection is not first.connection
        assert pool.h3_upgraded_count == 1

    def test_learned_host_skips_open_h2_alias(self):
        # The alias-hit fast path must not pin a learned host to its
        # pre-upgrade h2 session.
        pool = _pool(h3_discovery=True)
        first = pool.get_connection("a.example.com", ("10.0.0.1",),
                                    privacy_mode=False, now=0.0)
        assert first.connection.is_open
        second = pool.get_connection("a.example.com", ("10.0.0.1",),
                                     privacy_mode=False, now=1.0)
        assert second.connection.protocol == "h3"

    def test_upgrade_coalesces_onto_existing_h3_session(self):
        pool = _pool(h3_discovery=True)
        # a: h2 first contact, then its h3 upgrade.
        pool.get_connection("a.example.com", ("10.0.0.1",),
                            privacy_mode=False, now=0.0)
        upgraded = pool.get_connection("a.example.com", ("10.0.0.1",),
                                       privacy_mode=False, now=1.0)
        # b (covered by the same cert, same IP): first contact learns,
        # then the upgrade rides the existing h3 session.
        pool.get_connection("b.example.com", ("10.0.0.1",),
                            privacy_mode=False, now=2.0)
        decision = pool.get_connection("b.example.com", ("10.0.0.1",),
                                       privacy_mode=False, now=3.0)
        assert decision.coalesced and decision.h3_upgraded
        assert decision.connection is upgraded.connection

    def test_h2_requests_never_coalesce_onto_h3_sessions(self):
        pool = _pool(h3_discovery=True)
        pool.get_connection("a.example.com", ("10.0.0.1",),
                            privacy_mode=False, now=0.0)
        pool.get_connection("a.example.com", ("10.0.0.1",),
                            privacy_mode=False, now=1.0)  # h3 upgrade
        # b's first contact (not yet learned) wants h2; the open h3
        # session on the same IP/cert must not serve it.
        decision = pool.get_connection("b.example.com", ("10.0.0.1",),
                                       privacy_mode=False, now=2.0)
        assert decision.connection.protocol == "h2"

    def test_non_advertising_endpoint_never_upgrades(self):
        pool = _pool(_world(alt_svc_h3=False), h3_discovery=True)
        for now in (0.0, 1.0, 2.0):
            decision = pool.get_connection(
                "a.example.com", ("10.0.0.1",),
                privacy_mode=False, now=now,
            )
            assert decision.connection.protocol == "h2"
            assert not decision.h3_upgraded
        assert pool.h3_upgraded_count == 0

    def test_legacy_enable_quic_upgrades_on_first_contact(self):
        # The pre-discovery semantics (BrowserConfig.disable_quic=False)
        # are untouched: an advertising endpoint is h3 immediately.
        pool = _pool(enable_quic=True)
        first = pool.get_connection("a.example.com", ("10.0.0.1",),
                                    privacy_mode=False, now=0.0)
        assert first.connection.protocol == "h3"
        assert not first.h3_upgraded  # no discovery, no upgrade

    def test_discovery_off_is_inert(self):
        pool = _pool()
        for now in (0.0, 1.0):
            decision = pool.get_connection(
                "a.example.com", ("10.0.0.1",),
                privacy_mode=False, now=now,
            )
            assert decision.connection.protocol == "h2"
        assert pool.h3_upgraded_count == 0


class TestReusePredicateProtocols:
    def _record(self, **kwargs):
        defaults = dict(
            connection_id=1,
            domain="a.example.com",
            ip="10.0.0.1",
            port=443,
            sans=("*.example.com",),
            issuer="CA",
            start=0.0,
            end=None,
        )
        defaults.update(kwargs)
        return SessionRecord(**defaults)

    def test_h3_reuses_h3(self):
        record = self._record(protocol="h3")
        assert could_reuse(record, "b.example.com", "10.0.0.1",
                           protocol="h3")

    def test_h3_request_cannot_ride_h2(self):
        record = self._record(protocol="h2")
        assert not could_reuse(record, "b.example.com", "10.0.0.1",
                               protocol="h3")
        blockers = reuse_blockers(record, "b.example.com", "10.0.0.1",
                                  protocol="h3")
        assert any("not HTTP/3" in blocker for blocker in blockers)

    def test_h2_request_cannot_ride_h3(self):
        record = self._record(protocol="h3")
        assert not could_reuse(record, "b.example.com", "10.0.0.1")
        blockers = reuse_blockers(record, "b.example.com", "10.0.0.1")
        assert any("not HTTP/2" in blocker for blocker in blockers)


class TestBrowserDiscovery:
    def test_broad_world_produces_h3_upgrades(self, h3_browser_factory,
                                              h3_ecosystem):
        # Default config: QUIC stays "disabled" in the legacy sense;
        # the h3_profile axis alone activates discovery.
        browser = h3_browser_factory(BrowserConfig())
        upgrades = 0
        h3_connections = 0
        for site in h3_ecosystem.websites[:30]:
            visit = browser.visit(site.domain)
            if visit.unreachable:
                continue
            upgrades += visit.load.h3_upgrades
            h3_connections += sum(
                1 for connection in visit.connections
                if connection.protocol == "h3"
            )
        assert upgrades > 0
        assert h3_connections > 0

    def test_upgraded_requests_are_flagged(self, h3_browser_factory,
                                           h3_ecosystem):
        browser = h3_browser_factory(BrowserConfig())
        for site in h3_ecosystem.websites[:30]:
            visit = browser.visit(site.domain)
            if visit.unreachable:
                continue
            flagged = [request for request in visit.load.requests
                       if request.h3_upgraded]
            assert len(flagged) == visit.load.h3_upgrades
            for request in flagged:
                assert request.connection.protocol == "h3"

    def test_clean_world_stays_h2(self, browser, small_ecosystem):
        # Same browser defaults over the h3_profile="none" world: the
        # discovery machinery never engages (the clean golden pins the
        # aggregate version of this).
        for site in small_ecosystem.websites[:10]:
            visit = browser.visit(site.domain)
            assert visit.load.h3_upgrades == 0
            assert all(connection.protocol != "h3"
                       for connection in visit.connections)


class TestAttributionSplit:
    def test_h3_hits_have_h3_witnesses(self, h3_golden_study):
        # Same-protocol priors only: every redundant h3 connection's
        # reusable witness is itself h3.
        for dataset in h3_golden_study.datasets.values():
            for classification in dataset.classifications.values():
                for hit in classification.hits:
                    assert hit.record.protocol == hit.previous.protocol

    def test_protocol_causes_split_present(self, h3_golden_study):
        attribution = h3_golden_study.datasets["alexa"].attribution
        assert "h2" in attribution.protocol_causes
        assert "h3" in attribution.protocol_causes

    def test_clean_study_attributes_h2_only(self, golden_study):
        for dataset in golden_study.datasets.values():
            assert set(dataset.attribution.protocol_causes) <= {"h2"}
        assert golden_study.datasets["alexa"].report.h3_connections == 0
