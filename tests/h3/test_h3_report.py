"""The ``repro h3`` analysis layer (:mod:`repro.analysis.h3`)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.h3 import h3_report

pytestmark = pytest.mark.slow


class TestH3Report:
    def test_render_covers_every_section(self, golden_study,
                                         h3_golden_study):
        rendered = h3_report(golden_study, h3_golden_study).render()
        assert "h3 profile 'broad'" in rendered
        assert "Protocol split per dataset" in rendered
        assert "Reuse impact per dataset" in rendered
        assert "Attribution by protocol" in rendered
        assert "Coalescing potential" in rendered
        # The what-if table carries both runs.
        assert "baseline" in rendered
        assert "h3 (broad)" in rendered

    def test_protocol_rows_show_the_split(self, golden_study,
                                          h3_golden_study):
        result = h3_report(golden_study, h3_golden_study)
        rows = {row[0]: row for row in result.protocol_rows()}
        alexa = rows["alexa"]
        assert int(alexa[3]) > 0  # h3 connections under the rollout
        # The h3 run's joint h2+h3 total stays in the same ballpark as
        # the baseline's h2-only count (upgrades split, not inflate).
        assert int(alexa[1]) > 0

    def test_cause_rows_split_by_protocol(self, golden_study,
                                          h3_golden_study):
        result = h3_report(golden_study, h3_golden_study)
        protocols = {row[1] for row in result.cause_rows()}
        assert "h2" in protocols
        assert "h3" in protocols

    def test_whatif_rows_cover_both_runs(self, golden_study,
                                         h3_golden_study):
        rows = h3_report(golden_study, h3_golden_study).whatif_rows()
        assert [row[0] for row in rows] == ["baseline", "h3 (broad)"]
        for row in rows:
            assert int(row[1]) > 0  # sites estimated


class TestInputValidation:
    def test_baseline_must_be_profile_none(self, h3_golden_study):
        with pytest.raises(ValueError, match="expected 'none'"):
            h3_report(h3_golden_study, h3_golden_study)

    def test_configs_must_match_beyond_h3_profile(self, golden_study,
                                                  h3_golden_study):
        mismatched = replace(
            h3_golden_study, config=replace(
                h3_golden_study.config, n_sites=99
            )
        )
        with pytest.raises(ValueError, match="differ beyond h3_profile"):
            h3_report(golden_study, mismatched)
