"""Property-based tests for the adoption model's determinism contract.

Three properties the differential suite depends on (see the
:mod:`repro.h3.plan` module docstring):

* verdicts are pure functions of ``(seed, kind, name)`` — evaluation
  order and plan identity never matter (this is what makes the world
  rebuildable inside process workers);
* adoption is monotone in the fraction — a name adopted at fraction
  ``f`` stays adopted at every ``f' >= f`` under the same seed;
* profile compilation is pure — same inputs, equal plans.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.h3 import H3Kind, H3Plan, h3_profile, profile_names

_names = st.lists(
    st.text(alphabet="abcdefghij0123456789.-", min_size=1, max_size=16),
    min_size=1, max_size=25, unique=True,
)
_seeds = st.integers(min_value=0, max_value=2**31)
_kinds = st.sampled_from(list(H3Kind))

#: Percent fractions keep the ``adopt-<fraction>`` spelling exact
#: (float repr could produce exponents the profile pattern rejects).
_percents = st.integers(min_value=0, max_value=100)


def _adopt_plan(percent: int, seed: int) -> H3Plan:
    plan = H3Plan.compile(h3_profile(f"adopt-{percent / 100:.2f}"), seed=seed)
    assert plan is not None  # adopt profiles are never empty
    return plan


class TestOrderIndependence:
    @given(seed=_seeds, kind=_kinds, names=_names)
    def test_verdicts_ignore_evaluation_order(self, seed, kind, names):
        plan = H3Plan.compile("broad", seed=seed)
        forward = {name: plan.adopts(kind, name) for name in names}
        backward = {name: plan.adopts(kind, name)
                    for name in reversed(names)}
        assert forward == backward

    @given(seed=_seeds, kind=_kinds, names=_names)
    def test_rebuilt_plan_agrees(self, seed, kind, names):
        # A process worker rebuilds the plan from (profile, seed); its
        # verdicts must match the parent's exactly.
        first = H3Plan.compile("broad", seed=seed)
        rebuilt = H3Plan.compile("broad", seed=seed)
        assert {name: first.adopts(kind, name) for name in names} == {
            name: rebuilt.adopts(kind, name) for name in names
        }

    @given(seed=_seeds, kind=_kinds, name=st.text(
        alphabet="abcdefghij.-", min_size=1, max_size=16
    ))
    def test_repeated_evaluation_is_stable(self, seed, kind, name):
        plan = H3Plan.compile("cdn-first", seed=seed)
        verdicts = {plan.adopts(kind, name) for _ in range(5)}
        assert len(verdicts) == 1


class TestFractionMonotonicity:
    @given(seed=_seeds, kind=_kinds, name=st.text(
        alphabet="abcdefghij.-", min_size=1, max_size=16
    ), lo=_percents, hi=_percents)
    def test_adopted_names_never_unadopt_as_fraction_grows(
        self, seed, kind, name, lo, hi
    ):
        lo, hi = sorted((lo, hi))
        if _adopt_plan(lo, seed).adopts(kind, name):
            assert _adopt_plan(hi, seed).adopts(kind, name)

    @given(seed=_seeds, kind=_kinds, names=_names)
    def test_adopted_set_grows_with_fraction(self, seed, kind, names):
        sets = []
        for percent in (10, 50, 90):
            plan = _adopt_plan(percent, seed)
            sets.append({n for n in names if plan.adopts(kind, n)})
        assert sets[0] <= sets[1] <= sets[2]


class TestCompilePurity:
    @given(seed=_seeds, name=st.sampled_from(
        tuple(profile_names()) + ("adopt-0.25", "adopt-0.75")
    ))
    def test_compile_is_pure(self, seed, name):
        assert H3Plan.compile(name, seed=seed) == H3Plan.compile(
            name, seed=seed
        )

    @given(seed=_seeds)
    def test_none_always_compiles_to_no_plan(self, seed):
        assert H3Plan.compile("none", seed=seed) is None
