"""Legacy alt-svc / QUIC semantics (§4.2.2), retired here from
``tests/browser/test_quic.py`` when the h3 suite became its own tier.

These pin the *pre-discovery* behaviour: ``BrowserConfig.disable_quic``
gates the immediate first-contact upgrade, independently of the
``h3_profile`` discovery dynamics exercised in ``test_discovery.py``.
"""

from __future__ import annotations

from repro.browser.browser import BrowserConfig
from repro.core.classifier import classify_site
from repro.core.session import LifetimeModel, records_from_visit
from repro.har.reader import read_sessions
from repro.har.writer import HarNoiseConfig, write_har


def _fonts_site(small_ecosystem):
    for site in small_ecosystem.websites:
        if "google-fonts" in site.embedded_services:
            return site
    return None


class TestQuicDisabled:
    def test_default_crawl_has_no_h3(self, browser, small_ecosystem):
        """The paper disables QUIC; every session must be h2/h1."""
        for site in small_ecosystem.websites[:10]:
            visit = browser.visit(site.domain)
            assert all(c.protocol in ("h2", "http/1.1")
                       for c in visit.connections)


class TestQuicEnabled:
    def test_alt_svc_endpoints_negotiate_h3(self, browser_factory,
                                            small_ecosystem):
        site = _fonts_site(small_ecosystem)
        assert site is not None
        visit = browser_factory(BrowserConfig(disable_quic=False)).visit(
            site.domain
        )
        protocols = {c.sni: c.protocol for c in visit.connections}
        assert protocols.get("fonts.gstatic.com", "h3") == "h3" or (
            "h3" in protocols.values()
        )

    def test_h3_sessions_excluded_from_classification(self, browser_factory,
                                                      small_ecosystem):
        site = _fonts_site(small_ecosystem)
        visit = browser_factory(BrowserConfig(disable_quic=False)).visit(
            site.domain
        )
        records = records_from_visit(visit)
        h3_count = sum(1 for r in records if r.protocol == "h3")
        verdict = classify_site(site.domain, records,
                                model=LifetimeModel.ACTUAL)
        assert verdict.h2_connections == len(records) - h3_count - sum(
            1 for r in records if r.protocol == "http/1.1"
        )

    def test_h3_requests_get_socket_zero_in_har(self, browser_factory,
                                                small_ecosystem):
        """'We ignore HTTP/3 / QUIC requests as these all have socket
        ID 0' (§4.2.1)."""
        site = _fonts_site(small_ecosystem)
        visit = browser_factory(BrowserConfig(disable_quic=False)).visit(
            site.domain
        )
        har = write_har(visit, noise=HarNoiseConfig.none())
        h3_entries = [e for e in har.entries if e.http_version == "h3"]
        if h3_entries:
            assert all(entry.connection == "0" for entry in h3_entries)
            result = read_sessions(har)
            assert result.stats.socket_id_zero == len(h3_entries)

    def test_quic_does_not_break_h2_coalescing(self, browser_factory,
                                               small_ecosystem):
        """h3 sessions never serve as coalescing targets for h2."""
        site = _fonts_site(small_ecosystem)
        visit = browser_factory(BrowserConfig(disable_quic=False)).visit(
            site.domain
        )
        for loaded in visit.load.requests:
            if loaded.coalesced:
                assert loaded.connection.protocol == "h2"
