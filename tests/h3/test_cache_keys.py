"""Cache correctness of the ``h3_profile`` axis.

Two acceptance properties, in the PR-7 style:

* **statically** — ``h3_profile`` reaches every stage/shard key through
  the ``ecosystem_config()`` router; deleting that single routing line
  from the live sources turns the ``cache-key`` lint rule red;
* **dynamically** — a :class:`~repro.store.StudyCache` warmed under one
  profile never serves a study running another (the keys differ), so a
  rollout can never leak cached h2-only artefacts.
"""

from __future__ import annotations

import shutil
from dataclasses import replace

import pytest

from repro.analysis.digest import study_digest
from repro.analysis.study import Study, StudyConfig
from repro.lint import Project
from repro.lint.rules import CacheKeyRule
from repro.store import StudyCache

#: The real files the StudyConfig completeness check reads (the same
#: set the lint suite uses): the config itself, both crawlers'
#: shard/stage keys, and the world-identity key.
_REAL_KEY_FILES = (
    "src/repro/analysis/study.py",
    "src/repro/crawl/alexa.py",
    "src/repro/crawl/httparchive.py",
    "src/repro/web/ecosystem.py",
)


class TestStaticKeyCoverage:
    """The lint acceptance property, on copies of the live sources."""

    @pytest.fixture()
    def real_tree(self, tmp_path, repo_root):
        for rel in _REAL_KEY_FILES:
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(repo_root / rel, target)
        return tmp_path

    def _run(self, root):
        project = Project.load(root, ["src"])
        return list(CacheKeyRule().check(project))

    def test_pristine_sources_pass(self, real_tree):
        assert self._run(real_tree) == []

    def test_deleting_h3_profile_routing_fails(self, real_tree):
        # h3_profile reaches the keys only via the ecosystem_config()
        # routing line; removing it must turn the rule red (were the
        # field also read inside a key function, this deletion would
        # pass silently and the coverage would be redundant).
        path = real_tree / "src/repro/analysis/study.py"
        munged = path.read_text().replace(
            "\n            h3_profile=self.h3_profile,", "", 1
        )
        assert munged != path.read_text(), "munge missed the routing line"
        path.write_text(munged)
        findings = self._run(real_tree)
        assert any(
            "StudyConfig.h3_profile" in finding.message
            for finding in findings
        ), [finding.message for finding in findings]


@pytest.mark.slow
class TestCrossProfileCacheMiss:
    def test_warm_cache_never_serves_another_profile(self, tmp_path):
        cache = StudyCache(tmp_path / "cache")
        config = StudyConfig(seed=7, n_sites=40, dns_study_days=0.25)

        clean = Study.run(config, cache=cache)
        cold = cache.total_stats()
        assert cold.writes > 0

        # Identical rerun: pure hits, nothing recomputed.
        rerun = Study.run(config, cache=cache)
        warm = cache.total_stats()
        assert warm.hits > cold.hits
        assert warm.misses == cold.misses
        assert study_digest(rerun) == study_digest(clean)

        # Same scale under a rollout: every stage lookup must miss.
        broad = Study.run(
            replace(config, h3_profile="broad"), cache=cache
        )
        crossed = cache.total_stats()
        assert crossed.misses > warm.misses
        assert crossed.hits == warm.hits
        assert study_digest(broad) != study_digest(clean)

        # And the rollout's own artefacts cache cleanly in turn.
        rebroad = Study.run(
            replace(config, h3_profile="broad"), cache=cache
        )
        rewarm = cache.total_stats()
        assert rewarm.hits > crossed.hits
        assert rewarm.misses == crossed.misses
        assert study_digest(rebroad) == study_digest(broad)
