"""The differential resilience invariants.

Two families of guarantees:

1. **Determinism under perturbation** — for every named fault profile,
   serial, thread and process executors must produce byte-identical
   ``study_digest``s: fault plans derive from ``(seed, run, domain)``
   exactly like the crawl RNG streams, so scheduling must not leak in.
2. **Inertness of the empty plan** — ``fault_profile="none"`` compiles
   to no plan at all; the pinned golden digest (captured before the
   fault machinery existed) must reproduce exactly, and the canonical
   faulted study must match its own pinned digest so the resilience
   numbers are regression-locked like Table 1.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.digest import study_digest
from repro.analysis.study import Study, StudyConfig
from repro.runtime import ProcessExecutor, ThreadExecutor

pytestmark = pytest.mark.slow

_GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"

#: Every named (non-empty) profile the acceptance criteria call out.
PROFILES = ("flaky-dns", "broken-tls", "h2-churn", "slow-origin")

#: Differential scale: small enough to afford 3 executors x 4 profiles,
#: large enough that every fault kind strikes at least once.
_SCALE = dict(n_sites=40, dns_study_days=0.25)


def _config(profile: str) -> StudyConfig:
    return StudyConfig(seed=7, fault_profile=profile, **_SCALE)


@pytest.fixture(scope="module")
def serial_studies() -> dict[str, Study]:
    """One serial study per profile (plus the fault-free baseline)."""
    return {
        profile: Study.run(_config(profile))
        for profile in ("none",) + PROFILES
    }


class TestExecutorIndependence:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_thread_executor_matches_serial(self, serial_studies, profile):
        with ThreadExecutor(4) as executor:
            threaded = Study.run(_config(profile), executor=executor)
        assert study_digest(threaded) == study_digest(
            serial_studies[profile]
        ), profile

    @pytest.mark.parametrize("profile", PROFILES)
    def test_process_executor_matches_serial(self, serial_studies, profile):
        with ProcessExecutor(2) as executor:
            processed = Study.run(_config(profile), executor=executor)
        assert study_digest(processed) == study_digest(
            serial_studies[profile]
        ), profile

    def test_fault_counts_executor_independent(self, serial_studies):
        # Not just the datasets: the fired-fault taxonomy must be
        # identical too, or resilience reports would depend on the
        # execution substrate.
        with ProcessExecutor(2) as executor:
            processed = Study.run(_config("flaky-dns"), executor=executor)
        assert processed.fault_counts() == (
            serial_studies["flaky-dns"].fault_counts()
        )


class TestProfilesPerturb:
    def test_every_profile_diverges_from_baseline(self, serial_studies):
        baseline = study_digest(serial_studies["none"])
        for profile in PROFILES:
            assert study_digest(serial_studies[profile]) != baseline, profile

    def test_profiles_pairwise_distinct(self, serial_studies):
        digests = {
            profile: study_digest(serial_studies[profile])
            for profile in PROFILES
        }
        assert len(set(digests.values())) == len(digests), digests

    def test_fault_kinds_strike_within_their_layer(self, serial_studies):
        from repro.faults import fault_profile

        for profile in PROFILES:
            counts = serial_studies[profile].fault_counts()
            assert counts, f"profile {profile} never fired"
            allowed = {kind.value for kind in fault_profile(profile).kinds}
            assert set(counts) <= allowed, (profile, counts)

    def test_baseline_reports_no_faults(self, serial_studies):
        assert serial_studies["none"].fault_counts() == {}


class TestPinnedGoldens:
    def test_empty_plan_reproduces_pinned_golden_digest(self, golden_study):
        """Fault machinery off => zero behavioural drift.

        ``digest.txt`` was captured before the fault subsystem existed;
        a study run through the fully fault-wired stack with the empty
        plan must still hash to it, byte for byte.
        """
        pinned = (_GOLDEN_DIR / "digest.txt").read_text().strip()
        assert golden_study.config.fault_profile == "none"
        assert study_digest(golden_study) == pinned

    def test_faulted_golden_digest_pinned(self, faulted_golden_study):
        pinned = (_GOLDEN_DIR / "faulted_digest.txt").read_text().strip()
        assert study_digest(faulted_golden_study) == pinned

    def test_faulted_golden_differs_from_clean(self, golden_study,
                                               faulted_golden_study):
        assert study_digest(faulted_golden_study) != study_digest(
            golden_study
        )

    def test_faulted_golden_strikes_every_layer(self, faulted_golden_study):
        counts = faulted_golden_study.fault_counts()
        layers = {kind.split("-")[0] for kind in counts}
        assert {"dns", "tls", "h2", "srv"} <= layers, counts
