"""Unit tests for the fault-plan model itself."""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.study import StudyConfig
from repro.faults import (
    PROFILES,
    FaultKind,
    FaultPlan,
    FaultProfile,
    FaultSpec,
    fault_profile,
    merge_counts,
    profile_names,
)
from repro.sweep import SweepSpec


def _always(kind: FaultKind, param: float = 0.0) -> FaultProfile:
    """A single-kind profile that fires on every draw."""
    return FaultProfile(
        name=f"always-{kind.value}", description="test",
        specs=(FaultSpec(kind, rate=1.0, param=param),),
    )


class TestRegistry:
    def test_required_profiles_registered(self):
        for name in ("none", "flaky-dns", "broken-tls", "h2-churn",
                     "slow-origin", "chaos"):
            assert name in PROFILES

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            fault_profile("fire-everything")

    def test_profile_names_sorted(self):
        assert profile_names() == sorted(PROFILES)

    def test_none_profile_is_empty(self):
        assert fault_profile("none").empty

    def test_chaos_covers_every_named_profile(self):
        named = set()
        for name in ("flaky-dns", "broken-tls", "h2-churn", "slow-origin"):
            named |= fault_profile(name).kinds
        assert fault_profile("chaos").kinds == named

    def test_duplicate_kinds_rejected(self):
        with pytest.raises(ValueError, match="duplicate fault kinds"):
            FaultProfile(
                "dup", "test",
                (FaultSpec(FaultKind.H2_GOAWAY, 0.1),
                 FaultSpec(FaultKind.H2_GOAWAY, 0.2)),
            )

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(FaultKind.H2_GOAWAY, rate=1.5)


class TestCompile:
    def test_empty_profile_compiles_to_none(self):
        assert FaultPlan.compile(
            "none", seed=7, run="alexa-fetch", domain="site000001.com"
        ) is None

    def test_named_profile_compiles_to_plan(self):
        plan = FaultPlan.compile(
            "flaky-dns", seed=7, run="alexa-fetch", domain="site000001.com"
        )
        assert plan is not None
        assert plan.profile.name == "flaky-dns"

    def test_profile_instances_accepted(self):
        plan = FaultPlan.compile(
            _always(FaultKind.H2_GOAWAY), seed=1, run="r", domain="d"
        )
        assert plan.fires(FaultKind.H2_GOAWAY)

    def test_verifies_tls_only_for_tls_profiles(self):
        tls = FaultPlan.compile("broken-tls", seed=1, run="r", domain="d")
        dns = FaultPlan.compile("flaky-dns", seed=1, run="r", domain="d")
        chaos = FaultPlan.compile("chaos", seed=1, run="r", domain="d")
        assert tls.verifies_tls
        assert not dns.verifies_tls
        assert chaos.verifies_tls


class TestDeterminism:
    def _draws(self, seed: int, run: str, domain: str, n: int = 200):
        plan = FaultPlan.compile("chaos", seed=seed, run=run, domain=domain)
        return [
            (plan.fires(FaultKind.DNS_TIMEOUT), plan.fires(FaultKind.H2_GOAWAY))
            for _ in range(n)
        ]

    def test_identical_coordinates_identical_draws(self):
        assert self._draws(7, "alexa-fetch", "a.com") == (
            self._draws(7, "alexa-fetch", "a.com")
        )

    def test_domains_decorrelated(self):
        assert self._draws(7, "alexa-fetch", "a.com") != (
            self._draws(7, "alexa-fetch", "b.com")
        )

    def test_runs_decorrelated(self):
        assert self._draws(7, "alexa-fetch", "a.com") != (
            self._draws(7, "alexa-nofetch", "a.com")
        )

    def test_seeds_decorrelated(self):
        assert self._draws(7, "alexa-fetch", "a.com") != (
            self._draws(8, "alexa-fetch", "a.com")
        )

    def test_kind_streams_independent(self):
        # Consuming draws of one kind must not shift another kind's
        # sequence — this is what lets a profile tune one rate without
        # reshuffling every other fault.
        plan_a = FaultPlan.compile("chaos", seed=7, run="r", domain="d")
        plan_b = FaultPlan.compile("chaos", seed=7, run="r", domain="d")
        for _ in range(50):
            plan_b.fires(FaultKind.DNS_SERVFAIL)  # extra traffic on one kind
        seq_a = [plan_a.fires(FaultKind.H2_RST_STREAM) for _ in range(100)]
        seq_b = [plan_b.fires(FaultKind.H2_RST_STREAM) for _ in range(100)]
        assert seq_a == seq_b

    def test_unlisted_kind_never_fires_and_draws_nothing(self):
        plan = FaultPlan.compile("flaky-dns", seed=7, run="r", domain="d")
        reference = FaultPlan.compile("flaky-dns", seed=7, run="r", domain="d")
        for _ in range(20):
            assert not plan.fires(FaultKind.H2_GOAWAY)
        # The DNS streams must be untouched by the no-op draws above.
        seq = [plan.fires(FaultKind.DNS_TIMEOUT) for _ in range(50)]
        ref = [reference.fires(FaultKind.DNS_TIMEOUT) for _ in range(50)]
        assert seq == ref


class TestCounts:
    def test_counts_tally_fired_only(self):
        plan = FaultPlan.compile(
            _always(FaultKind.SRV_ERROR_BURST), seed=1, run="r", domain="d"
        )
        assert plan.counts() == ()
        for _ in range(3):
            assert plan.fires(FaultKind.SRV_ERROR_BURST)
        assert plan.counts() == (("srv-5xx-burst", 3),)

    def test_param_defaults(self):
        plan = FaultPlan.compile(
            _always(FaultKind.SRV_LATENCY_SPIKE, param=10.0),
            seed=1, run="r", domain="d",
        )
        assert plan.param(FaultKind.SRV_LATENCY_SPIKE) == 10.0
        assert plan.param(FaultKind.H2_GOAWAY, 42.0) == 42.0

    def test_merge_counts(self):
        totals: dict[str, int] = {}
        merge_counts(totals, (("a", 1), ("b", 2)))
        merge_counts(totals, (("b", 3),))
        assert totals == {"a": 1, "b": 5}

    def test_plan_pickles(self):
        # Plans never cross process boundaries today (workers rebuild
        # them), but the RNG streams must not make them unpicklable if
        # a future artefact embeds one.
        plan = FaultPlan.compile("chaos", seed=7, run="r", domain="d")
        plan.fires(FaultKind.DNS_TIMEOUT)
        clone = pickle.loads(pickle.dumps(plan))
        seq = [plan.fires(FaultKind.DNS_TIMEOUT) for _ in range(20)]
        cloned_seq = [clone.fires(FaultKind.DNS_TIMEOUT) for _ in range(20)]
        assert seq == cloned_seq


class TestConfigIntegration:
    def test_study_config_validates_profile(self):
        StudyConfig(fault_profile="flaky-dns").validate()
        with pytest.raises(ValueError, match="unknown fault profile"):
            StudyConfig(fault_profile="bogus").validate()

    def test_small_config_keeps_profile(self):
        config = StudyConfig(n_sites=2000, fault_profile="h2-churn")
        assert config.small().fault_profile == "h2-churn"

    def test_sweep_axis_parses(self):
        axes = SweepSpec.parse_axes(["fault_profile=none,flaky-dns"])
        assert axes == (("fault_profile", ("none", "flaky-dns")),)
        spec = SweepSpec(base=StudyConfig(n_sites=40), axes=axes)
        labels = [cell.variant_label() for cell in spec.cells()]
        assert labels == ["fault_profile=none", "fault_profile=flaky-dns"]

    def test_sweep_axis_bad_value_fails_eagerly(self):
        spec = SweepSpec(
            base=StudyConfig(n_sites=40),
            axes=(("fault_profile", ("bogus",)),),
        )
        with pytest.raises(ValueError, match="unknown fault profile"):
            spec.cells()


class TestTaskFaults:
    """The task-level kinds driving the repro.runlog recovery tests."""

    def test_task_profiles_registered(self):
        for name in ("worker-crash", "worker-poison", "cache-rot"):
            assert name in PROFILES
            assert name in profile_names()

    def test_chaos_excludes_task_kinds(self):
        # chaos must stay runnable through a bare executor; task faults
        # need the run layer to recover them.
        kinds = fault_profile("chaos").kinds
        assert FaultKind.TASK_WORKER_CRASH not in kinds
        assert FaultKind.TASK_CACHE_ROT not in kinds

    def _struck_domains(self, profile: str, n: int = 400) -> list[str]:
        domains = [f"site{index:06d}.com" for index in range(n)]
        return [
            domain for domain in domains
            if FaultPlan.compile(
                profile, seed=7, run="alexa-crawl", domain=domain
            ).task_crash(0)
        ]

    def test_worker_crash_is_attempt_bounded(self):
        # param=1.0: attempt 0 may strike, attempt 1 never does — that
        # bound is what makes the profile recoverable by re-dispatch.
        struck = self._struck_domains("worker-crash")
        assert struck  # rate 0.25 over 400 domains must hit something
        for domain in struck:
            retry_plan = FaultPlan.compile(
                "worker-crash", seed=7, run="alexa-crawl", domain=domain
            )
            assert not retry_plan.task_crash(1)

    def test_worker_poison_strikes_every_attempt(self):
        struck = self._struck_domains("worker-poison")
        assert struck  # rate 0.02 over 400 domains
        plan = FaultPlan.compile(
            "worker-poison", seed=7, run="alexa-crawl", domain=struck[0]
        )
        for attempt in (0, 1, 5, 1000):
            assert plan.task_crash(attempt)

    def test_verdict_is_a_pure_function_of_coordinates(self):
        # Recompiled plans (fresh worker per retry) must agree with the
        # original — the whole recovery story depends on it.
        for domain in ("site000000.com", "site000003.com", "other.org"):
            verdicts = {
                FaultPlan.compile(
                    "worker-crash", seed=7, run="r", domain=domain
                ).task_crash(0)
                for _ in range(3)
            }
            assert len(verdicts) == 1
        assert self._struck_domains("worker-crash") == (
            self._struck_domains("worker-crash")
        )

    def test_task_crash_false_without_a_task_spec(self):
        plan = FaultPlan.compile(
            "flaky-dns", seed=7, run="r", domain="a.com"
        )
        assert not plan.task_crash(0)

    def test_struck_crash_tallies_in_counts(self):
        struck = self._struck_domains("worker-crash")
        plan = FaultPlan.compile(
            "worker-crash", seed=7, run="alexa-crawl", domain=struck[0]
        )
        assert plan.task_crash(0)
        assert ("worker-crash", 1) in plan.counts()

    def test_task_crash_does_not_consume_rng_streams(self):
        # The hash-based verdict must not perturb the per-kind RNG
        # streams, or adding retries would change which *protocol*
        # faults fire and break digest parity with 'none'.
        hybrid = FaultProfile(
            name="hybrid-task-dns", description="test",
            specs=(
                FaultSpec(FaultKind.TASK_WORKER_CRASH, rate=1.0,
                          param=10.0),
                FaultSpec(FaultKind.DNS_SERVFAIL, rate=0.5),
            ),
        )
        untouched = FaultPlan.compile(hybrid, seed=7, run="r",
                                      domain="a.com")
        crashed = FaultPlan.compile(hybrid, seed=7, run="r",
                                    domain="a.com")
        for attempt in range(4):
            crashed.task_crash(attempt)
        draws_untouched = [
            untouched.fires(FaultKind.DNS_SERVFAIL) for _ in range(20)
        ]
        draws_crashed = [
            crashed.fires(FaultKind.DNS_SERVFAIL) for _ in range(20)
        ]
        assert draws_untouched == draws_crashed

    def test_cache_rot_param_is_the_keep_factor(self):
        plan = FaultPlan.compile(
            "cache-rot", seed=7, run="cache-rot:alexa-crawl",
            domain="shardkey"
        )
        assert plan.param(FaultKind.TASK_CACHE_ROT) == 0.5
