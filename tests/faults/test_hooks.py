"""Per-layer unit tests for every fault hook point.

Each test compiles an ad-hoc always-fires profile for exactly the kind
under test, so the strike is deterministic and the assertion is about
the *mechanism* (typed error, fallback, counter), not about rates.
"""

from __future__ import annotations

import random

import pytest

from repro.browser.browser import BrowserConfig, ChromiumBrowser
from repro.dns.loadbalancer import narrow_answer
from repro.dns.resolver import DnsTimeout, ServFail
from repro.dns.zone import NxDomain
from repro.faults import FaultKind, FaultPlan, FaultProfile, FaultSpec
from repro.h2.connection import ConnectionClosedError, Http2Connection
from repro.h2.stream import StreamResetError
from repro.tls.certificate import (
    UNTRUSTED_ISSUER,
    Certificate,
    degrade_certificate,
)
from repro.tls.verify import (
    CertificateExpiredError,
    CertificateNameError,
    UntrustedIssuerError,
    verify_certificate,
)
from repro.util.clock import SimClock
from repro.web.server import FaultedEndpoint, OriginServer


def _plan(*specs: FaultSpec) -> FaultPlan:
    profile = FaultProfile(name="adhoc", description="test", specs=specs)
    return FaultPlan.compile(profile, seed=1, run="test", domain="site.test")


def _always(kind: FaultKind, param: float = 0.0) -> FaultPlan:
    return _plan(FaultSpec(kind, rate=1.0, param=param))


def _origin_server(
    ip: str = "10.0.0.1", domains: tuple[str, ...] = ("example.com",)
) -> OriginServer:
    cert = Certificate(
        serial=1, subject=domains[0], sans=domains, issuer_org="CA"
    )
    return OriginServer(
        ip=ip, name="test",
        cert_map={domain: cert for domain in domains},
        default_certificate=cert,
    )


# ----------------------------------------------------------------------
# DNS layer
# ----------------------------------------------------------------------
class TestResolverHooks:
    def _resolver(self, ecosystem, plan):
        resolver = ecosystem.make_resolver("internal")
        resolver.faults = plan
        return resolver

    def test_servfail_raises_typed_error(self, small_ecosystem):
        resolver = self._resolver(
            small_ecosystem, _always(FaultKind.DNS_SERVFAIL)
        )
        domain = small_ecosystem.websites[0].domain
        with pytest.raises(ServFail):
            resolver.resolve(domain, now=0.0)

    def test_timeout_raises_typed_error(self, small_ecosystem):
        resolver = self._resolver(
            small_ecosystem, _always(FaultKind.DNS_TIMEOUT)
        )
        with pytest.raises(DnsTimeout):
            resolver.resolve(small_ecosystem.websites[0].domain, now=0.0)

    def test_nxdomain_injected_for_existing_name(self, small_ecosystem):
        domain = small_ecosystem.websites[0].domain
        clean = small_ecosystem.make_resolver("internal")
        assert clean.resolve(domain, now=0.0) is not None  # name exists
        resolver = self._resolver(
            small_ecosystem, _always(FaultKind.DNS_NXDOMAIN)
        )
        with pytest.raises(NxDomain):
            resolver.resolve(domain, now=0.0)

    def test_stale_ttl_serves_expired_entry(self, small_ecosystem):
        domain = small_ecosystem.websites[0].domain
        resolver = self._resolver(
            small_ecosystem, _always(FaultKind.DNS_STALE_TTL)
        )
        first = resolver.resolve(domain, now=0.0)
        stale = resolver.resolve(domain, now=first.ttl + 10_000.0)
        assert stale is first  # the cached (expired) object, served as-is
        assert resolver.stale_answers_served == 1
        assert resolver.cache_size == 1  # entry is kept, not evicted

    def test_narrowed_answers_keep_first_records(self, small_ecosystem):
        # Third-party pool names answer with several A records; the
        # narrowed-balancer fault must cut them to the first `param`.
        domain = "connect.facebook.net"
        plan = _always(FaultKind.DNS_NARROWED, param=1.0)
        clean = small_ecosystem.make_resolver("internal")
        narrow = self._resolver(small_ecosystem, plan)
        baseline = clean.resolve(domain, now=0.0)
        assert len(baseline.ips) > 1  # precondition: a balanced pool
        narrowed = narrow.resolve(domain, now=0.0)
        assert narrowed.ips == baseline.ips[:1]

    def test_no_plan_counters_untouched(self, small_ecosystem):
        resolver = small_ecosystem.make_resolver("internal")
        resolver.resolve(small_ecosystem.websites[0].domain, now=0.0)
        assert resolver.stale_answers_served == 0


class TestNarrowAnswer:
    def test_short_answers_pass_through(self, small_ecosystem):
        resolver = small_ecosystem.make_resolver("internal")
        answer = resolver.resolve(small_ecosystem.websites[0].domain, now=0.0)
        assert narrow_answer(answer, keep=len(answer.ips)) is answer

    def test_keep_is_clamped_to_one(self, small_ecosystem):
        resolver = small_ecosystem.make_resolver("internal")
        answer = resolver.resolve(small_ecosystem.websites[0].domain, now=0.0)
        assert len(narrow_answer(answer, keep=0).ips) >= 1


# ----------------------------------------------------------------------
# TLS layer
# ----------------------------------------------------------------------
class TestTlsHooks:
    _CERT = Certificate(
        serial=77, subject="example.com",
        sans=("example.com", "*.example.com"), issuer_org="TestCA",
        not_before=0.0, not_after=1_000_000.0,
    )

    def test_healthy_certificate_verifies(self):
        verify_certificate(
            self._CERT, "img.example.com", now=5.0,
            trusted_issuers=frozenset({"TestCA"}),
        )

    def test_expired_degradation(self):
        degraded = degrade_certificate(self._CERT, "expired", now=500.0)
        assert not degraded.is_valid_at(500.0)
        with pytest.raises(CertificateExpiredError):
            verify_certificate(degraded, "example.com", now=500.0)

    def test_san_mismatch_degradation(self):
        degraded = degrade_certificate(self._CERT, "san-mismatch", now=0.0)
        with pytest.raises(CertificateNameError):
            verify_certificate(degraded, "example.com", now=0.0)

    def test_untrusted_issuer_degradation(self):
        degraded = degrade_certificate(
            self._CERT, "untrusted-issuer", now=0.0
        )
        assert degraded.issuer_org == UNTRUSTED_ISSUER
        with pytest.raises(UntrustedIssuerError):
            verify_certificate(
                degraded, "example.com", now=0.0,
                trusted_issuers=frozenset({"TestCA"}),
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown degradation mode"):
            degrade_certificate(self._CERT, "melted", now=0.0)

    def test_degraded_serial_never_collides(self):
        degraded = degrade_certificate(self._CERT, "expired", now=0.0)
        assert degraded.fingerprint != self._CERT.fingerprint

    def test_trust_check_precedes_name_check(self):
        degraded = degrade_certificate(
            self._CERT, "untrusted-issuer", now=0.0
        )
        with pytest.raises(UntrustedIssuerError):
            verify_certificate(
                degraded, "not-covered.test", now=0.0,
                trusted_issuers=frozenset({"TestCA"}),
            )


# ----------------------------------------------------------------------
# HTTP/2 layer
# ----------------------------------------------------------------------
class TestConnectionHooks:
    def _connection(self, plan) -> Http2Connection:
        server = _origin_server()
        return Http2Connection(
            connection_id=1, server=server, sni="example.com",
            remote_ip=server.ip, created_at=0.0, faults=plan,
        )

    def test_injected_goaway_closes_session(self):
        connection = self._connection(_always(FaultKind.H2_GOAWAY))
        with pytest.raises(ConnectionClosedError):
            connection.perform_request("example.com", "/", now=1.0)
        assert connection.goaway_received
        assert connection.closed_at == 1.0

    def test_injected_rst_stream_keeps_session_open(self):
        connection = self._connection(_always(FaultKind.H2_RST_STREAM))
        with pytest.raises(StreamResetError):
            connection.perform_request("example.com", "/", now=1.0)
        assert connection.is_open
        assert connection.open_stream_count() == 0
        assert connection.requests == []  # no record for the dead stream
        # The stream id was consumed, like a real sequence number.
        assert connection.streams[1].is_closed

    def test_settings_churn_quiesces_session(self):
        connection = self._connection(
            _always(FaultKind.H2_SETTINGS_CHURN, param=0.0)
        )
        with pytest.raises(ConnectionClosedError, match="MAX_CONCURRENT"):
            connection.perform_request("example.com", "/", now=1.0)
        assert connection.is_open  # quiesced, not closed
        assert connection.remote_settings.max_concurrent_streams == 0

    def test_apply_remote_settings_pins_header_table(self):
        connection = self._connection(None)
        from repro.h2.settings import Http2Settings

        connection.apply_remote_settings(
            Http2Settings(header_table_size=0, max_concurrent_streams=5)
        )
        assert connection.remote_settings.max_concurrent_streams == 5
        assert connection.remote_settings.header_table_size == 4096

    def test_no_plan_request_path_unchanged(self):
        connection = self._connection(None)
        record = connection.perform_request("example.com", "/", now=1.0)
        assert record.status == 200


class TestPoolQuiescedSessions:
    def _pool(self, server):
        from repro.browser.pool import ConnectionPool

        return ConnectionPool(
            server_lookup=lambda ip: server, rng=random.Random(1)
        )

    def test_quiesced_session_replaced_and_realiased(self):
        # A SETTINGS-churned session (MAX_CONCURRENT_STREAMS=0) is open
        # but can never carry another stream; the pool must stop
        # handing it out and alias a replacement, instead of burning
        # one doomed attempt per subsequent request to the host.
        from repro.h2.settings import Http2Settings

        server = _origin_server()
        pool = self._pool(server)
        first = pool.get_connection(
            "example.com", (server.ip,), privacy_mode=False, now=0.0
        )
        first.connection.apply_remote_settings(
            Http2Settings(max_concurrent_streams=0)
        )
        replacement = pool.get_connection(
            "example.com", (server.ip,), privacy_mode=False, now=1.0
        )
        assert replacement.created
        assert replacement.connection is not first.connection
        again = pool.get_connection(
            "example.com", (server.ip,), privacy_mode=False, now=2.0
        )
        assert again.connection is replacement.connection  # re-aliased

    def test_quiesced_session_not_coalescable(self):
        from repro.h2.settings import Http2Settings

        server = _origin_server(domains=("example.com", "img.example.com"))
        pool = self._pool(server)
        first = pool.get_connection(
            "example.com", (server.ip,), privacy_mode=False, now=0.0
        )
        first.connection.apply_remote_settings(
            Http2Settings(max_concurrent_streams=0)
        )
        other = pool.get_connection(
            "img.example.com", (server.ip,), privacy_mode=False, now=1.0
        )
        assert not other.coalesced
        assert other.connection is not first.connection


# ----------------------------------------------------------------------
# Origin-server layer
# ----------------------------------------------------------------------
class TestFaultedEndpoint:
    def _endpoint(self, plan, server=None) -> FaultedEndpoint:
        return FaultedEndpoint(
            inner=server or _origin_server(), faults=plan,
            clock=SimClock(100.0),
        )

    def test_error_burst_arms_consecutive_503s(self):
        plan = _plan(
            FaultSpec(FaultKind.SRV_ERROR_BURST, rate=1.0, param=3.0)
        )
        endpoint = self._endpoint(plan)
        statuses = [
            endpoint.handle_request(
                "example.com", "/", method="GET", credentials=False
            )[0]
            for _ in range(4)
        ]
        assert statuses == [503, 503, 503, 503]

    def test_truncated_body_keeps_headers(self):
        endpoint = self._endpoint(
            _always(FaultKind.SRV_TRUNCATED_BODY, param=0.25)
        )
        status, headers, body = endpoint.handle_request(
            "example.com", "/", method="GET", credentials=False
        )
        _, _, full_body = endpoint.inner.handle_request(
            "example.com", "/", method="GET", credentials=False
        )
        assert status == 200
        assert body == int(full_body * 0.25)
        # The announced content-length still promises the full body —
        # the truncation is observable, as in real truncated transfers.
        announced = dict(headers)["content-length"]
        assert int(announced) == full_body

    def test_misdirected_passthrough_untouched(self):
        endpoint = self._endpoint(
            _always(FaultKind.SRV_ERROR_BURST, param=3.0)
        )
        status, _, _ = endpoint.handle_request(
            "not-served.test", "/", method="GET", credentials=False
        )
        assert status == 421  # 421s are never rewritten into 503s

    def test_certificate_decision_cached_per_sni(self):
        plan = _plan(FaultSpec(FaultKind.TLS_EXPIRED, rate=0.5))
        endpoint = self._endpoint(plan)
        first = endpoint.certificate_for("example.com")
        assert endpoint.certificate_for("example.com") is first

    def test_degraded_certificate_presented(self):
        endpoint = self._endpoint(_always(FaultKind.TLS_EXPIRED))
        presented = endpoint.certificate_for("example.com")
        assert not presented.is_valid_at(100.0)

    def test_surface_mirrors_inner(self):
        server = _origin_server()
        endpoint = self._endpoint(_always(FaultKind.TLS_EXPIRED), server)
        assert endpoint.ip == server.ip
        assert endpoint.alpn == server.alpn
        assert endpoint.advertised_origins() == server.advertised_origins()
        assert endpoint.serves("example.com")


# ----------------------------------------------------------------------
# Loader fallback behaviour (whole-visit integration per fault kind)
# ----------------------------------------------------------------------
class TestLoaderFallback:
    def _visit(self, ecosystem, plan):
        resolver = ecosystem.make_resolver("internal")
        resolver.faults = plan
        browser = ChromiumBrowser(
            ecosystem=ecosystem,
            resolver=resolver,
            clock=SimClock(),
            rng=random.Random(1234),
            config=BrowserConfig(observe_s=30.0),
            faults=plan,
        )
        return browser.visit(ecosystem.websites[0].domain)

    def test_permanent_dns_timeout_fails_all_resources(self, small_ecosystem):
        visit = self._visit(small_ecosystem, _always(FaultKind.DNS_TIMEOUT))
        assert visit.load.requests == []
        assert visit.load.dns_failures  # the document domain at least

    def test_broken_tls_fails_handshakes_with_record(self, small_ecosystem):
        visit = self._visit(small_ecosystem, _always(FaultKind.TLS_EXPIRED))
        assert visit.load.requests == []
        # Two handshake attempts per document fetch are both recorded.
        assert len(visit.load.tls_failures) >= 2

    def test_rst_storm_counts_resets(self, small_ecosystem):
        visit = self._visit(small_ecosystem, _always(FaultKind.H2_RST_STREAM))
        assert visit.load.requests == []
        assert visit.load.stream_resets >= 2

    def test_5xx_recorded_and_children_skipped(self, small_ecosystem):
        plan = _plan(
            FaultSpec(FaultKind.SRV_ERROR_BURST, rate=1.0, param=1000.0)
        )
        visit = self._visit(small_ecosystem, plan)
        # The document's 503 is observed (and retried once), but its
        # subresources never load.
        assert len(visit.load.requests) == 1
        assert visit.load.requests[0].record.status == 503
        assert visit.load.server_errors == 2

    def test_latency_spike_slows_load(self, small_ecosystem):
        baseline = self._visit(small_ecosystem, None)
        spiked = self._visit(
            small_ecosystem, _always(FaultKind.SRV_LATENCY_SPIKE, param=50.0)
        )
        assert spiked.load.load_time > baseline.load.load_time
        assert len(spiked.load.requests) == len(baseline.load.requests)
