"""Tests for the AS database."""

from __future__ import annotations

import pytest

from repro.net.address_space import PrefixAllocator
from repro.net.asdb import AsDatabase, AutonomousSystem


@pytest.fixture()
def asdb_with_prefixes():
    asdb = AsDatabase()
    allocator = PrefixAllocator()
    google = asdb.register(AutonomousSystem(asn=15169, name="GOOGLE",
                                            organization="Google LLC"))
    amazon = asdb.register(AutonomousSystem(asn=16509, name="AMAZON-02",
                                            organization="Amazon"))
    google_prefix = allocator.allocate_prefix(asn=15169)
    amazon_prefix = allocator.allocate_prefix(asn=16509)
    asdb.add_prefix(google_prefix)
    asdb.add_prefix(amazon_prefix)
    return asdb, allocator, google_prefix, amazon_prefix, google, amazon


class TestAsDatabase:
    def test_lookup_maps_ip_to_owner(self, asdb_with_prefixes):
        asdb, allocator, gp, ap, google, amazon = asdb_with_prefixes
        assert asdb.lookup(allocator.allocate_host(gp)) == google
        assert asdb.lookup(allocator.allocate_host(ap)) == amazon

    def test_lookup_unknown_ip(self, asdb_with_prefixes):
        asdb, *_ = asdb_with_prefixes
        assert asdb.lookup("192.0.2.1") is None

    def test_lookup_boundaries(self, asdb_with_prefixes):
        asdb, _, gp, _, google, _ = asdb_with_prefixes
        assert asdb.lookup(str(gp.network.network_address)) == google
        assert asdb.lookup(str(gp.network.broadcast_address)) == google
        after = gp.network.broadcast_address + 1
        looked = asdb.lookup(str(after))
        assert looked is None or looked.asn != google.asn

    def test_register_idempotent(self):
        asdb = AsDatabase()
        system = AutonomousSystem(asn=1, name="A", organization="a")
        asdb.register(system)
        asdb.register(system)
        assert len(asdb) == 1

    def test_register_conflict_rejected(self):
        asdb = AsDatabase()
        asdb.register(AutonomousSystem(asn=1, name="A", organization="a"))
        with pytest.raises(ValueError):
            asdb.register(AutonomousSystem(asn=1, name="B", organization="b"))

    def test_prefix_requires_known_asn(self):
        asdb = AsDatabase()
        allocator = PrefixAllocator()
        with pytest.raises(KeyError):
            asdb.add_prefix(allocator.allocate_prefix(asn=99))

    def test_iteration_and_get(self, asdb_with_prefixes):
        asdb, *_ = asdb_with_prefixes
        names = {system.name for system in asdb}
        assert names == {"GOOGLE", "AMAZON-02"}
        assert asdb.get(15169).name == "GOOGLE"
        assert asdb.get(999) is None

    def test_incremental_reindex(self):
        """Prefixes added after a lookup are still found later."""
        asdb = AsDatabase()
        allocator = PrefixAllocator()
        asdb.register(AutonomousSystem(asn=1, name="A", organization="a"))
        first = allocator.allocate_prefix(asn=1)
        asdb.add_prefix(first)
        ip1 = allocator.allocate_host(first)
        assert asdb.lookup(ip1).asn == 1
        second = allocator.allocate_prefix(asn=1)
        asdb.add_prefix(second)
        ip2 = allocator.allocate_host(second)
        assert asdb.lookup(ip2).asn == 1
        assert asdb.lookup(ip1).asn == 1
