"""Tests for prefix/address allocation."""

from __future__ import annotations

import ipaddress

import pytest

from repro.net.address_space import Prefix, PrefixAllocator, same_slash24


class TestSameSlash24:
    def test_same(self):
        assert same_slash24("10.1.2.3", "10.1.2.200")

    def test_different(self):
        assert not same_slash24("10.1.2.3", "10.1.3.3")


class TestPrefixAllocator:
    def test_prefixes_disjoint(self):
        allocator = PrefixAllocator()
        prefixes = [allocator.allocate_prefix(asn=1) for _ in range(10)]
        networks = [prefix.network for prefix in prefixes]
        for i, a in enumerate(networks):
            for b in networks[i + 1:]:
                assert not a.overlaps(b)

    def test_mixed_sizes_disjoint(self):
        allocator = PrefixAllocator()
        a = allocator.allocate_prefix(asn=1, prefixlen=24)
        b = allocator.allocate_prefix(asn=1, prefixlen=20)
        c = allocator.allocate_prefix(asn=2, prefixlen=24)
        assert not a.network.overlaps(b.network)
        assert not b.network.overlaps(c.network)

    def test_prefixlen_bounds(self):
        allocator = PrefixAllocator()
        with pytest.raises(ValueError):
            allocator.allocate_prefix(asn=1, prefixlen=25)
        with pytest.raises(ValueError):
            allocator.allocate_prefix(asn=1, prefixlen=8)

    def test_hosts_within_prefix_and_unique(self):
        allocator = PrefixAllocator()
        prefix = allocator.allocate_prefix(asn=1)
        hosts = [allocator.allocate_host(prefix) for _ in range(50)]
        assert len(set(hosts)) == 50
        for host in hosts:
            assert host in prefix

    def test_hosts_same_slash24(self):
        allocator = PrefixAllocator()
        prefix = allocator.allocate_prefix(asn=7)
        a = allocator.allocate_host(prefix)
        b = allocator.allocate_host(prefix)
        assert same_slash24(a, b)

    def test_skips_network_address(self):
        allocator = PrefixAllocator()
        prefix = allocator.allocate_prefix(asn=1)
        first = allocator.allocate_host(prefix)
        assert ipaddress.IPv4Address(first) != prefix.network.network_address

    def test_prefix_exhaustion(self):
        allocator = PrefixAllocator()
        prefix = allocator.allocate_prefix(asn=1)
        for _ in range(255):
            allocator.allocate_host(prefix)
        with pytest.raises(RuntimeError):
            allocator.allocate_host(prefix)

    def test_deterministic_sequence(self):
        first = PrefixAllocator()
        second = PrefixAllocator()
        for _ in range(5):
            a = first.allocate_prefix(asn=1)
            b = second.allocate_prefix(asn=1)
            assert a.network == b.network

    def test_contains_protocol(self):
        prefix = Prefix(network=ipaddress.IPv4Network("10.2.3.0/24"), asn=5)
        assert "10.2.3.17" in prefix
        assert "10.2.4.17" not in prefix
