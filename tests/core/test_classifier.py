"""Tests for the §4.1 classifier, including the paper's worked example."""

from __future__ import annotations

import itertools

from repro.core.causes import Cause
from repro.core.classifier import classify_site
from repro.core.session import LifetimeModel, RequestSummary, SessionRecord

_IDS = itertools.count(1)


def _record(domain, ip, sans, *, start, issuer="CA", protocol="h2",
            requests=(), end=None):
    return SessionRecord(
        connection_id=next(_IDS),
        domain=domain,
        ip=ip,
        port=443,
        sans=tuple(sans),
        issuer=issuer,
        start=start,
        end=end,
        protocol=protocol,
        requests=tuple(requests),
    )


class TestPaperWorkedExample:
    def test_four_connections_alternating_certificates(self):
        """§4.1: same IP, certs A,B,A,B → CERT×3, CRED×2, 3 redundant."""
        ip = "10.0.0.1"
        records = [
            _record("a.example.com", ip, ["a.example.com"], start=1.0),
            _record("b.example.com", ip, ["b.example.com"], start=2.0),
            _record("a.example.com", ip, ["a.example.com"], start=3.0),
            _record("b.example.com", ip, ["b.example.com"], start=4.0),
        ]
        result = classify_site("site", records, model=LifetimeModel.ENDLESS)
        assert result.count(Cause.CERT) == 3
        assert result.count(Cause.CRED) == 2
        assert result.count(Cause.IP) == 0
        assert result.redundant_count == 3

    def test_attribution_prefers_earliest_prior(self):
        ip = "10.0.0.1"
        records = [
            _record("a.example.com", ip, ["a.example.com"], start=1.0),
            _record("b.example.com", ip, ["b.example.com"], start=2.0),
            _record("a.example.com", ip, ["a.example.com"], start=3.0),
        ]
        result = classify_site("site", records, model=LifetimeModel.ENDLESS)
        cred_hits = result.hits_for(Cause.CRED)
        assert len(cred_hits) == 1
        assert cred_hits[0].previous.connection_id == records[0].connection_id


class TestCauses:
    def test_ip_cause(self):
        records = [
            _record("gtm.example.com", "10.0.0.1",
                    ["gtm.example.com", "ga.example.com"], start=1.0),
            _record("ga.example.com", "10.0.0.9",
                    ["gtm.example.com", "ga.example.com"], start=2.0),
        ]
        result = classify_site("site", records, model=LifetimeModel.ENDLESS)
        assert result.count(Cause.IP) == 1
        assert result.hits_for(Cause.IP)[0].previous.domain == "gtm.example.com"

    def test_unknown_third_party_not_redundant(self):
        records = [
            _record("a.example.com", "10.0.0.1", ["a.example.com"], start=1.0),
            _record("tracker.other.net", "10.0.9.9", ["tracker.other.net"],
                    start=2.0),
        ]
        result = classify_site("site", records, model=LifetimeModel.ENDLESS)
        assert result.redundant_count == 0

    def test_same_domain_different_ip_corner_case_is_cred(self):
        """§4.1: same initial domain on another announced IP → CRED."""
        records = [
            _record("cdn.example.com", "10.0.0.1", ["cdn.example.com"], start=1.0),
            _record("cdn.example.com", "10.0.0.2", ["cdn.example.com"], start=2.0),
        ]
        result = classify_site("site", records, model=LifetimeModel.ENDLESS)
        assert result.count(Cause.CRED) == 1
        assert result.count(Cause.IP) == 0

    def test_multiple_causes_single_connection(self):
        records = [
            _record("a.example.com", "10.0.0.1", ["a.example.com"], start=1.0),
            _record("b.example.com", "10.0.0.2",
                    ["b.example.com", "c.example.com"], start=2.0),
            # Same IP as #1 without SAN (CERT) + covered by #2 on a
            # different IP (IP): one connection, two causes.
            _record("c.example.com", "10.0.0.1", ["c.example.com"], start=3.0),
        ]
        result = classify_site("site", records, model=LifetimeModel.ENDLESS)
        assert result.count(Cause.CERT) == 1
        assert result.count(Cause.IP) == 1
        assert result.redundant_count == 1  # still one redundant connection


class TestExclusions:
    def test_421_domains_ignored(self):
        """Domains answering 421 are excluded from the analysis."""
        records = [
            _record("a.example.com", "10.0.0.1", ["*.example.com"], start=1.0),
            _record(
                "b.example.com", "10.0.0.1", ["*.example.com"], start=2.0,
                requests=[RequestSummary(domain="b.example.com", status=421,
                                         finished_at=2.1)],
            ),
        ]
        result = classify_site("site", records, model=LifetimeModel.ENDLESS)
        assert result.redundant_count == 0
        assert "b.example.com" in result.excluded_domains

    def test_421_domain_not_usable_as_prior_either(self):
        records = [
            _record(
                "a.example.com", "10.0.0.1", ["*.example.com"], start=1.0,
                requests=[RequestSummary(domain="a.example.com", status=421,
                                         finished_at=1.1)],
            ),
            _record("b.example.com", "10.0.0.1", ["*.example.com"], start=2.0),
        ]
        result = classify_site("site", records, model=LifetimeModel.ENDLESS)
        assert result.redundant_count == 0

    def test_http1_connections_not_classified(self):
        records = [
            _record("a.example.com", "10.0.0.1", ["*.example.com"], start=1.0,
                    protocol="http/1.1"),
            _record("b.example.com", "10.0.0.1", ["*.example.com"], start=2.0),
        ]
        result = classify_site("site", records, model=LifetimeModel.ENDLESS)
        assert result.h2_connections == 1
        assert result.redundant_count == 0


class TestLifetimeModels:
    def test_immediate_model_kills_stale_priors(self):
        records = [
            _record(
                "a.example.com", "10.0.0.1", ["*.example.com"], start=1.0,
                requests=[RequestSummary(domain="a.example.com", status=200,
                                         finished_at=1.5)],
            ),
            _record("b.example.com", "10.0.0.1", ["*.example.com"], start=10.0),
        ]
        endless = classify_site("site", records, model=LifetimeModel.ENDLESS)
        immediate = classify_site("site", records, model=LifetimeModel.IMMEDIATE)
        assert endless.redundant_count == 1
        assert immediate.redundant_count == 0

    def test_actual_model_uses_recorded_end(self):
        records = [
            _record("a.example.com", "10.0.0.1", ["*.example.com"],
                    start=1.0, end=5.0),
            _record("b.example.com", "10.0.0.1", ["*.example.com"], start=10.0),
        ]
        actual = classify_site("site", records, model=LifetimeModel.ACTUAL)
        assert actual.redundant_count == 0

    def test_priors_must_precede(self):
        records = [
            _record("b.example.com", "10.0.0.1", ["*.example.com"], start=5.0),
            _record("a.example.com", "10.0.0.1", ["*.example.com"], start=1.0),
        ]
        result = classify_site("site", records, model=LifetimeModel.ENDLESS)
        # Sorted by start: only the later one can be redundant.
        redundant = result.redundant_records
        assert [r.domain for r in redundant] == ["b.example.com"]


class TestClassificationAccessors:
    def test_counts_deduplicate_per_connection(self):
        ip = "10.0.0.1"
        records = [
            _record("a.example.com", ip, ["a.example.com"], start=1.0),
            _record("a.example.com", ip, ["a.example.com"], start=2.0),
            _record("a.example.com", ip, ["a.example.com"], start=3.0),
        ]
        result = classify_site("site", records, model=LifetimeModel.ENDLESS)
        # #2 and #3 are each CRED once, despite #3 having two witnesses.
        assert result.count(Cause.CRED) == 2
        assert result.has_cause(Cause.CRED)
        assert not result.has_cause(Cause.CERT)
