"""Tests for origin/issuer/AS attribution."""

from __future__ import annotations

import itertools

from repro.core.attribution import AttributionIndex
from repro.core.classifier import classify_site
from repro.core.session import LifetimeModel, SessionRecord
from repro.net.address_space import PrefixAllocator
from repro.net.asdb import AsDatabase, AutonomousSystem

_IDS = itertools.count(1)


def _record(domain, ip, sans, start, issuer="CA"):
    return SessionRecord(
        connection_id=next(_IDS), domain=domain, ip=ip, port=443,
        sans=tuple(sans), issuer=issuer, start=start, end=None,
    )


def _index(records):
    index = AttributionIndex()
    index.add_site(classify_site("s", records, model=LifetimeModel.ENDLESS))
    return index


class TestIpAttribution:
    def test_counts_and_prev(self):
        index = _index([
            _record("gtm.x.com", "10.0.0.1", ["*.x.com"], 1.0),
            _record("ga.x.com", "10.0.0.2", ["*.x.com"], 2.0),
            _record("ga.x.com", "10.0.0.3", ["*.x.com"], 3.0),
        ])
        # Second ga conn: same-domain corner case → CRED, not IP.
        attribution = index.ip_origins["ga.x.com"]
        assert attribution.connections == 2
        assert attribution.previous["gtm.x.com"] == 2
        assert index.ip_origin_rank("ga.x.com") == 1
        assert index.ip_origin_rank("missing.com") is None

    def test_top_ordering(self):
        index = _index([
            _record("seed.x.com", "10.0.0.1", ["*.x.com"], 0.0),
            _record("a.x.com", "10.0.1.1", ["*.x.com"], 1.0),
            _record("b.x.com", "10.0.2.1", ["*.x.com"], 2.0),
            _record("b.x.com", "10.0.3.1", ["*.x.com"], 3.0),
        ])
        top = index.top_ip_origins(2)
        assert top[0].origin in ("a.x.com", "b.x.com")


class TestCertAttribution:
    def test_issuer_and_domain_tables(self):
        index = _index([
            _record("a.x.com", "10.0.0.1", ["a.x.com"], 1.0, issuer="LE"),
            _record("b.x.com", "10.0.0.1", ["b.x.com"], 2.0, issuer="GTS"),
            _record("c.x.com", "10.0.0.1", ["c.x.com"], 3.0, issuer="GTS"),
        ])
        gts = index.cert_issuers["GTS"]
        assert gts.connections == 2
        assert gts.domains == {"b.x.com", "c.x.com"}
        assert index.cert_domains["b.x.com"].previous["a.x.com"] == 1
        assert index.cert_domain_issuer["b.x.com"] == "GTS"
        assert "LE" not in index.cert_issuers  # first conn not redundant

    def test_all_issuer_market_share(self):
        index = _index([
            _record("a.x.com", "10.0.0.1", ["a.x.com"], 1.0, issuer="LE"),
            _record("z.y.com", "10.0.9.1", ["z.y.com"], 2.0, issuer="DCI"),
        ])
        assert index.all_issuers["LE"].connections == 1
        assert index.all_issuers["DCI"].connections == 1
        assert len(index.top_all_issuers(10)) == 2


class TestAsAttribution:
    def test_ip_cause_mapped_to_as(self):
        asdb = AsDatabase()
        allocator = PrefixAllocator()
        asdb.register(AutonomousSystem(asn=15169, name="GOOGLE",
                                       organization="Google"))
        prefix = allocator.allocate_prefix(asn=15169)
        asdb.add_prefix(prefix)
        ip_a = allocator.allocate_host(prefix)
        ip_b = allocator.allocate_host(prefix)
        records = [
            _record("gtm.x.com", ip_a, ["*.x.com"], 1.0),
            _record("ga.x.com", ip_b, ["*.x.com"], 2.0),
        ]
        classification = classify_site("s", records, model=LifetimeModel.ENDLESS)
        index = AttributionIndex()
        index.add_site(classification)
        index.attribute_ases(asdb, classification)
        assert index.top_ip_ases(5) == [("GOOGLE", 1, 1)]

    def test_unknown_as_bucket(self):
        records = [
            _record("gtm.x.com", "10.0.0.1", ["*.x.com"], 1.0),
            _record("ga.x.com", "10.0.0.2", ["*.x.com"], 2.0),
        ]
        classification = classify_site("s", records, model=LifetimeModel.ENDLESS)
        index = AttributionIndex()
        index.attribute_ases(AsDatabase(), classification)
        assert index.top_ip_ases(5)[0][0] == "UNKNOWN"
