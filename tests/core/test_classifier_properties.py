"""Property-based tests for the §4.1 classifier."""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.causes import Cause
from repro.core.classifier import classify_site
from repro.core.session import LifetimeModel, RequestSummary, SessionRecord

_SAN_SETS = (
    ("*.example.com",),
    ("a.example.com",),
    ("b.example.com", "a.example.com"),
    ("c.other.net",),
)
_DOMAINS = ("a.example.com", "b.example.com", "c.other.net")
_IPS = ("10.0.0.1", "10.0.0.2")

_record_spec = st.tuples(
    st.sampled_from(_DOMAINS),
    st.sampled_from(_IPS),
    st.sampled_from(_SAN_SETS),
    st.floats(min_value=0.0, max_value=10.0),  # request duration
)


def _build_records(specs):
    records = []
    ids = itertools.count(1)
    for index, (domain, ip, sans, duration) in enumerate(specs):
        start = float(index)
        records.append(
            SessionRecord(
                connection_id=next(ids),
                domain=domain,
                ip=ip,
                port=443,
                sans=sans,
                issuer="CA",
                start=start,
                end=None,
                requests=(
                    RequestSummary(domain=domain, status=200,
                                   finished_at=start + duration),
                ),
            )
        )
    return records


class TestClassifierProperties:
    @given(st.lists(_record_spec, min_size=1, max_size=15))
    @settings(max_examples=100, deadline=None)
    def test_structural_invariants(self, specs):
        records = _build_records(specs)
        result = classify_site("s", records, model=LifetimeModel.ENDLESS)
        # The first connection can never be redundant.
        first_id = records[0].connection_id
        assert all(hit.record.connection_id != first_id for hit in result.hits)
        # Redundant count bounded by n-1.
        assert result.redundant_count <= max(0, len(records) - 1)
        # Each (connection, cause) pair appears at most once.
        pairs = [(hit.record.connection_id, hit.cause) for hit in result.hits]
        assert len(pairs) == len(set(pairs))
        # Witnesses always precede their redundant connection.
        for hit in result.hits:
            assert hit.previous.start <= hit.record.start
            assert hit.previous.connection_id != hit.record.connection_id

    @given(st.lists(_record_spec, min_size=1, max_size=15))
    @settings(max_examples=100, deadline=None)
    def test_immediate_hits_subset_of_endless(self, specs):
        """Shorter lifetimes can only remove redundancy, never add it."""
        records = _build_records(specs)
        endless = classify_site("s", records, model=LifetimeModel.ENDLESS)
        immediate = classify_site("s", records, model=LifetimeModel.IMMEDIATE)
        endless_pairs = {(h.record.connection_id, h.cause)
                         for h in endless.hits}
        immediate_pairs = {(h.record.connection_id, h.cause)
                           for h in immediate.hits}
        assert immediate_pairs <= endless_pairs

    @given(st.lists(_record_spec, min_size=1, max_size=15))
    @settings(max_examples=100, deadline=None)
    def test_cause_definitions(self, specs):
        """Each hit's facts must match its cause's definition (§3)."""
        records = _build_records(specs)
        result = classify_site("s", records, model=LifetimeModel.ENDLESS)
        for hit in result.hits:
            same_ip = hit.previous.ip == hit.record.ip
            covers = hit.previous.covers(hit.record.domain)
            same_domain = hit.previous.domain == hit.record.domain
            if hit.cause is Cause.CERT:
                assert same_ip and not covers
            elif hit.cause is Cause.IP:
                assert not same_ip and covers and not same_domain
            elif hit.cause is Cause.CRED:
                assert (same_ip and covers) or (not same_ip and same_domain)

    @given(st.lists(_record_spec, min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, specs):
        records = _build_records(specs)
        first = classify_site("s", records, model=LifetimeModel.ENDLESS)
        second = classify_site("s", records, model=LifetimeModel.ENDLESS)
        assert [(h.record.connection_id, h.cause, h.previous.connection_id)
                for h in first.hits] == [
            (h.record.connection_id, h.cause, h.previous.connection_id)
            for h in second.hits
        ]


class TestClassifierEdgeCases:
    """Degenerate corpus shapes the executor refactor can produce:
    empty site lists, sites with no records, single-site batches and
    chunk sizes exceeding the input."""

    def test_empty_record_list(self):
        result = classify_site("s", [], model=LifetimeModel.ENDLESS)
        assert result.h2_connections == 0
        assert result.redundant_count == 0
        assert result.hits == []

    def test_empty_site_mapping(self):
        from repro.crawl.classify import classify_dataset

        dataset = classify_dataset("empty", {}, model=LifetimeModel.ENDLESS)
        assert dataset.report.total_sites == 0
        assert dataset.classifications == {}

    @given(st.lists(_record_spec, min_size=0, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_dataset_fold_is_executor_invariant(self, specs):
        """classify_dataset must not depend on batching: serial, one-
        site chunks and a chunk larger than the corpus all agree."""
        from repro.crawl.classify import classify_dataset
        from repro.runtime import SerialExecutor, ThreadExecutor

        site_records = {
            f"site{index}": _build_records([spec])
            for index, spec in enumerate(specs)
        }
        baseline = classify_dataset("d", site_records,
                                    model=LifetimeModel.ENDLESS,
                                    executor=SerialExecutor())

        def summary(dataset):
            return (
                sorted(dataset.classifications),
                dataset.report.total_sites,
                dataset.report.redundant_connections,
                {site: c.redundant_count
                 for site, c in dataset.classifications.items()},
            )

        with ThreadExecutor(2, chunk_size=1) as tiny_chunks:
            chunked = classify_dataset("d", site_records,
                                       model=LifetimeModel.ENDLESS,
                                       executor=tiny_chunks)
        assert summary(chunked) == summary(baseline)

        with ThreadExecutor(2, chunk_size=10_000) as one_chunk:
            oversized = classify_dataset("d", site_records,
                                         model=LifetimeModel.ENDLESS,
                                         executor=one_chunk)
        assert summary(oversized) == summary(baseline)

    @given(st.lists(_record_spec, min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_single_site_batch_matches_direct_classification(self, specs):
        """A one-site dataset is exactly classify_site of that site."""
        from repro.crawl.classify import classify_dataset

        records = _build_records(specs)
        dataset = classify_dataset("d", {"only": records},
                                   model=LifetimeModel.ENDLESS)
        direct = classify_site("only", records, model=LifetimeModel.ENDLESS)
        verdict = dataset.classifications["only"]
        assert verdict.redundant_count == direct.redundant_count
        assert [(h.record.connection_id, h.cause) for h in verdict.hits] == (
            [(h.record.connection_id, h.cause) for h in direct.hits]
        )
