"""Tests for session records and lifetime models."""

from __future__ import annotations


from repro.core.session import (
    LifetimeModel,
    RequestSummary,
    SessionRecord,
    records_from_visit,
)


def _record(**kwargs):
    defaults = dict(
        connection_id=1,
        domain="a.example.com",
        ip="10.0.0.1",
        port=443,
        sans=("a.example.com", "*.example.com"),
        issuer="CA",
        start=0.0,
        end=None,
    )
    defaults.update(kwargs)
    return SessionRecord(**defaults)


class TestCovers:
    def test_san_match(self):
        record = _record()
        assert record.covers("a.example.com")
        assert record.covers("b.example.com")
        assert not record.covers("other.com")


class TestAliveAt:
    def test_never_alive_before_start(self):
        record = _record(start=10.0)
        for model in LifetimeModel:
            assert not record.alive_at(9.9, model)

    def test_endless_is_forever(self):
        record = _record(end=5.0)
        assert record.alive_at(1e9, LifetimeModel.ENDLESS)

    def test_immediate_dies_after_last_request(self):
        record = _record(
            requests=(
                RequestSummary(domain="a.example.com", status=200, finished_at=2.0),
                RequestSummary(domain="a.example.com", status=200, finished_at=4.0),
            )
        )
        assert record.alive_at(4.0, LifetimeModel.IMMEDIATE)
        assert not record.alive_at(4.01, LifetimeModel.IMMEDIATE)

    def test_immediate_without_requests_dies_at_start(self):
        record = _record()
        assert record.alive_at(0.0, LifetimeModel.IMMEDIATE)
        assert not record.alive_at(0.1, LifetimeModel.IMMEDIATE)

    def test_actual_uses_recorded_end(self):
        record = _record(end=7.0)
        assert record.alive_at(6.99, LifetimeModel.ACTUAL)
        assert not record.alive_at(7.0, LifetimeModel.ACTUAL)

    def test_actual_open_record_is_alive(self):
        record = _record(end=None)
        assert record.alive_at(1e9, LifetimeModel.ACTUAL)


class TestLifetime:
    def test_known_end(self):
        assert _record(start=1.0, end=5.5).lifetime() == 4.5

    def test_unknown_end(self):
        assert _record().lifetime() is None


class TestRecordsFromVisit:
    def test_matches_browser_connections(self, browser, small_ecosystem):
        visit = browser.visit(small_ecosystem.websites[0].domain)
        records = records_from_visit(visit)
        assert len(records) == len(visit.connections)
        by_id = {record.connection_id: record for record in records}
        for connection in visit.connections:
            record = by_id[connection.connection_id]
            assert record.domain == connection.sni
            assert record.ip == connection.remote_ip
            assert record.sans == connection.certificate.sans
            assert record.privacy_mode == connection.privacy_mode
            assert len(record.requests) == len(connection.requests)
