"""Tests for corpus aggregation."""

from __future__ import annotations

import itertools

from repro.core.causes import Cause
from repro.core.classifier import classify_site
from repro.core.report import CorpusReport
from repro.core.session import LifetimeModel, SessionRecord

_IDS = itertools.count(1)


def _record(domain, ip, sans, start, protocol="h2"):
    return SessionRecord(
        connection_id=next(_IDS), domain=domain, ip=ip, port=443,
        sans=tuple(sans), issuer="CA", start=start, end=None, protocol=protocol,
    )


def _classified(records):
    return classify_site("site", records, model=LifetimeModel.ENDLESS)


class TestCorpusReport:
    def test_empty_site_counts_total_only(self):
        report = CorpusReport(name="r")
        report.add_site(_classified([]))
        assert report.total_sites == 1
        assert report.h2_sites == 0
        assert report.redundant_per_site == []

    def test_clean_h2_site(self):
        report = CorpusReport(name="r")
        report.add_site(_classified([
            _record("a.com", "10.0.0.1", ["a.com"], 1.0),
        ]))
        assert report.h2_sites == 1
        assert report.redundant_sites == 0
        assert report.redundant_per_site == [0]

    def test_redundant_site_aggregation(self):
        report = CorpusReport(name="r")
        report.add_site(_classified([
            _record("a.example.com", "10.0.0.1", ["*.example.com"], 1.0),
            _record("b.example.com", "10.0.0.1", ["*.example.com"], 2.0),
            # Same IP, but the priors' wildcard does not span .other.com:
            # CERT redundancy.
            _record("c.other.com", "10.0.0.1", ["c.other.com"], 3.0),
        ]))
        assert report.redundant_sites == 1
        assert report.redundant_connections == 2
        assert report.by_cause[Cause.CRED].connections == 1
        assert report.by_cause[Cause.CERT].connections == 1
        assert report.by_cause[Cause.CRED].sites == 1

    def test_shares(self):
        report = CorpusReport(name="r")
        report.add_site(_classified([
            _record("a.example.com", "10.0.0.1", ["*.example.com"], 1.0),
            _record("b.example.com", "10.0.0.1", ["*.example.com"], 2.0),
        ]))
        report.add_site(_classified([
            _record("x.com", "10.0.1.1", ["x.com"], 1.0),
        ]))
        assert report.redundant_site_share() == 0.5
        assert report.site_share(Cause.CRED) == 0.5
        assert report.connection_share(Cause.CRED) == 1 / 3

    def test_table_rows_layout(self):
        report = CorpusReport(name="r")
        rows = report.table_rows()
        assert [row[0] for row in rows] == ["CERT", "IP", "CRED", "Redund.", "Total"]
        assert all(len(row) == 5 for row in rows)

    def test_zero_division_safety(self):
        report = CorpusReport(name="r")
        assert report.redundant_site_share() == 0.0
        assert report.site_share(Cause.IP) == 0.0
        assert report.connection_share(Cause.IP) == 0.0
