"""Tests for the RFC 7540 §9.1.1 reuse predicate."""

from __future__ import annotations

from repro.core.reuse import could_reuse, reuse_blockers
from repro.core.session import SessionRecord


def _record(**kwargs):
    defaults = dict(
        connection_id=1,
        domain="a.example.com",
        ip="10.0.0.1",
        port=443,
        sans=("*.example.com",),
        issuer="CA",
        start=0.0,
        end=None,
    )
    defaults.update(kwargs)
    return SessionRecord(**defaults)


class TestCouldReuse:
    def test_ip_and_san_match(self):
        assert could_reuse(_record(), "b.example.com", "10.0.0.1")

    def test_different_ip_blocks(self):
        assert not could_reuse(_record(), "b.example.com", "10.0.0.2")

    def test_missing_san_blocks(self):
        assert not could_reuse(_record(), "other.com", "10.0.0.1")

    def test_port_mismatch_blocks(self):
        assert not could_reuse(_record(), "b.example.com", "10.0.0.1", port=8443)

    def test_http1_blocks(self):
        record = _record(protocol="http/1.1")
        assert not could_reuse(record, "b.example.com", "10.0.0.1")


class TestReuseBlockers:
    def test_empty_when_allowed(self):
        assert reuse_blockers(_record(), "b.example.com", "10.0.0.1") == []

    def test_lists_every_blocker(self):
        record = _record(protocol="http/1.1")
        blockers = reuse_blockers(record, "other.com", "10.0.0.9", port=80)
        assert len(blockers) == 4
        assert any("HTTP/2" in blocker for blocker in blockers)
        assert any("IP differs" in blocker for blocker in blockers)
        assert any("port differs" in blocker for blocker in blockers)
        assert any("SANs" in blocker for blocker in blockers)
