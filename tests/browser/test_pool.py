"""Tests for the Chromium-like session pool — the decision procedure the
paper measures."""

from __future__ import annotations

import random

import pytest

from repro.browser.pool import ConnectionPool
from repro.netlog.events import NetLog, NetLogEventType
from repro.tls.certificate import Certificate
from repro.web.server import OriginServer


def _world():
    """Two hosts: shared-cert service on .1/.2, separate-cert on .3."""
    shared = Certificate(serial=1, subject="a.example.com",
                         sans=("a.example.com", "b.example.com"),
                         issuer_org="CA")
    other = Certificate(serial=2, subject="c.example.com",
                        sans=("c.example.com",), issuer_org="CA")
    servers = {}
    for ip in ("10.0.0.1", "10.0.0.2"):
        servers[ip] = OriginServer(
            ip=ip, name="shared",
            cert_map={"a.example.com": shared, "b.example.com": shared},
            default_certificate=shared,
        )
    servers["10.0.0.3"] = OriginServer(
        ip="10.0.0.3", name="other",
        cert_map={"c.example.com": other, "a.example.com": shared},
        default_certificate=other,
    )
    return servers


def _pool(servers=None, **kwargs):
    servers = servers or _world()
    return ConnectionPool(
        server_lookup=servers.__getitem__, rng=random.Random(1), **kwargs
    )


class TestExactKeyReuse:
    def test_same_key_reuses(self):
        pool = _pool()
        first = pool.get_connection("a.example.com", ("10.0.0.1",),
                                    privacy_mode=False, now=0.0)
        second = pool.get_connection("a.example.com", ("10.0.0.1",),
                                     privacy_mode=False, now=1.0)
        assert first.created and not second.created
        assert second.connection is first.connection

    def test_closed_session_not_reused(self):
        pool = _pool()
        first = pool.get_connection("a.example.com", ("10.0.0.1",),
                                    privacy_mode=False, now=0.0)
        first.connection.close(now=1.0)
        second = pool.get_connection("a.example.com", ("10.0.0.1",),
                                     privacy_mode=False, now=2.0)
        assert second.created


class TestIpPooling:
    def test_coalesces_on_ip_and_san(self):
        pool = _pool()
        pool.get_connection("a.example.com", ("10.0.0.1",),
                            privacy_mode=False, now=0.0)
        decision = pool.get_connection("b.example.com", ("10.0.0.1",),
                                       privacy_mode=False, now=1.0)
        assert decision.coalesced and not decision.created

    def test_no_coalescing_on_different_ip(self):
        """Cause IP: SAN covers, but DNS gave a different address."""
        pool = _pool()
        pool.get_connection("a.example.com", ("10.0.0.1",),
                            privacy_mode=False, now=0.0)
        decision = pool.get_connection("b.example.com", ("10.0.0.2",),
                                       privacy_mode=False, now=1.0)
        assert decision.created

    def test_no_coalescing_without_san(self):
        """Cause CERT: same IP, certificate does not cover the host."""
        pool = _pool()
        pool.get_connection("c.example.com", ("10.0.0.3",),
                            privacy_mode=False, now=0.0)
        decision = pool.get_connection("a.example.com", ("10.0.0.3",),
                                       privacy_mode=False, now=1.0)
        assert decision.created

    def test_coalescing_checks_any_announced_ip(self):
        pool = _pool()
        pool.get_connection("a.example.com", ("10.0.0.1",),
                            privacy_mode=False, now=0.0)
        decision = pool.get_connection(
            "b.example.com", ("10.0.0.2", "10.0.0.1"), privacy_mode=False, now=1.0
        )
        assert decision.coalesced

    def test_misdirected_domain_not_coalesced_again(self):
        pool = _pool()
        first = pool.get_connection("a.example.com", ("10.0.0.1",),
                                    privacy_mode=False, now=0.0)
        first.connection.misdirected_domains.add("b.example.com")
        decision = pool.get_connection("b.example.com", ("10.0.0.1",),
                                       privacy_mode=False, now=1.0)
        assert decision.created


class TestPrivacyModePartition:
    def test_partitions_split_pool(self):
        """Cause CRED: IP and SAN match, credentials partition differs."""
        pool = _pool()
        credentialed = pool.get_connection("a.example.com", ("10.0.0.1",),
                                           privacy_mode=False, now=0.0)
        anonymous = pool.get_connection("a.example.com", ("10.0.0.1",),
                                        privacy_mode=True, now=1.0)
        assert anonymous.created
        assert anonymous.connection is not credentialed.connection
        assert anonymous.connection.privacy_mode

    def test_ignore_privacy_mode_patch_merges_partitions(self):
        """The paper's patched-Chromium run (§5.3.3)."""
        pool = _pool(ignore_privacy_mode=True)
        credentialed = pool.get_connection("a.example.com", ("10.0.0.1",),
                                           privacy_mode=False, now=0.0)
        anonymous = pool.get_connection("a.example.com", ("10.0.0.1",),
                                        privacy_mode=True, now=1.0)
        assert not anonymous.created
        assert anonymous.connection is credentialed.connection

    def test_coalescing_respects_partition(self):
        pool = _pool()
        pool.get_connection("a.example.com", ("10.0.0.1",),
                            privacy_mode=False, now=0.0)
        decision = pool.get_connection("b.example.com", ("10.0.0.1",),
                                       privacy_mode=True, now=1.0)
        assert decision.created


class TestOriginFrame:
    def test_ignored_by_default_like_chromium(self):
        servers = _world()
        servers["10.0.0.1"].origin_frame_origins = ("https://b.example.com",)
        pool = _pool(servers)
        pool.get_connection("a.example.com", ("10.0.0.1",),
                            privacy_mode=False, now=0.0)
        decision = pool.get_connection("b.example.com", ("10.0.0.2",),
                                       privacy_mode=False, now=1.0)
        assert decision.created  # Chromium does not implement RFC 8336

    def test_honored_when_enabled(self):
        servers = _world()
        servers["10.0.0.1"].origin_frame_origins = ("https://b.example.com",)
        pool = _pool(servers, honor_origin_frame=True)
        pool.get_connection("a.example.com", ("10.0.0.1",),
                            privacy_mode=False, now=0.0)
        decision = pool.get_connection("b.example.com", ("10.0.0.2",),
                                       privacy_mode=False, now=1.0)
        assert decision.coalesced
        assert decision.via_origin_frame


class TestPoolMechanics:
    def test_force_new_skips_reuse(self):
        pool = _pool()
        pool.get_connection("a.example.com", ("10.0.0.1",),
                            privacy_mode=False, now=0.0)
        decision = pool.get_connection("a.example.com", ("10.0.0.1",),
                                       privacy_mode=False, now=1.0,
                                       force_new=True)
        assert decision.created

    def test_empty_ips_rejected(self):
        pool = _pool()
        with pytest.raises(ValueError):
            pool.get_connection("a.example.com", (), privacy_mode=False, now=0.0)

    def test_ip_choice_among_answers(self):
        pool = _pool()
        seen = set()
        for i in range(20):
            decision = pool.get_connection(
                "a.example.com", ("10.0.0.1", "10.0.0.2"),
                privacy_mode=False, now=float(i), force_new=True,
            )
            seen.add(decision.connection.remote_ip)
        assert seen == {"10.0.0.1", "10.0.0.2"}

    def test_netlog_events_emitted(self):
        netlog = NetLog()
        servers = _world()
        pool = ConnectionPool(server_lookup=servers.__getitem__,
                              rng=random.Random(1), netlog=netlog)
        pool.get_connection("a.example.com", ("10.0.0.1",),
                            privacy_mode=False, now=0.0)
        pool.get_connection("b.example.com", ("10.0.0.1",),
                            privacy_mode=False, now=1.0)
        assert len(netlog.of_type(NetLogEventType.HTTP2_SESSION)) == 1
        assert len(netlog.of_type(
            NetLogEventType.HTTP2_SESSION_POOL_FOUND_EXISTING_SESSION)) == 1

    def test_close_all(self):
        netlog = NetLog()
        servers = _world()
        pool = ConnectionPool(server_lookup=servers.__getitem__,
                              rng=random.Random(1), netlog=netlog)
        pool.get_connection("a.example.com", ("10.0.0.1",),
                            privacy_mode=False, now=0.0)
        pool.get_connection("c.example.com", ("10.0.0.3",),
                            privacy_mode=False, now=0.5)
        pool.close_all(now=10.0)
        assert all(not session.is_open for session in pool.sessions)
        assert len(netlog.of_type(NetLogEventType.HTTP2_SESSION_CLOSE)) == 2

    def test_counters(self):
        pool = _pool()
        pool.get_connection("a.example.com", ("10.0.0.1",),
                            privacy_mode=False, now=0.0)
        pool.get_connection("b.example.com", ("10.0.0.1",),
                            privacy_mode=False, now=1.0)
        assert pool.created_count == 1
        assert pool.coalesced_count == 1
