"""Property-based tests for the session pool.

Random request sequences over a small world must preserve the pool's
invariants regardless of ordering — the kind of guarantees Chromium's
socket pool gives that the paper's methodology relies on.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.browser.pool import ConnectionPool
from repro.tls.certificate import Certificate
from repro.web.server import OriginServer

_DOMAINS = ("a.example.com", "b.example.com", "c.other.net")
_IPS = ("10.0.0.1", "10.0.0.2", "10.0.0.3")


def _world():
    shared = Certificate(serial=1, subject="a.example.com",
                         sans=("*.example.com",), issuer_org="CA")
    other = Certificate(serial=2, subject="c.other.net",
                        sans=("c.other.net",), issuer_org="CA")
    servers = {}
    for ip in _IPS:
        servers[ip] = OriginServer(
            ip=ip, name="w",
            cert_map={
                "a.example.com": shared,
                "b.example.com": shared,
                "c.other.net": other,
            },
            default_certificate=shared,
        )
    return servers


_request = st.tuples(
    st.sampled_from(_DOMAINS),
    st.lists(st.sampled_from(_IPS), min_size=1, max_size=2, unique=True),
    st.booleans(),  # privacy mode
)


class TestPoolProperties:
    @given(st.lists(_request, min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_invariants_under_random_sequences(self, requests):
        servers = _world()
        pool = ConnectionPool(server_lookup=servers.__getitem__,
                              rng=random.Random(0))
        for step, (host, ips, privacy) in enumerate(requests):
            decision = pool.get_connection(
                host, tuple(ips), privacy_mode=privacy, now=float(step)
            )
            session = decision.connection
            # 1. Every handed-out session is open and partition-correct.
            assert session.is_open
            assert session.privacy_mode == privacy
            # 2. A created session connects to an announced address.
            if decision.created:
                assert session.remote_ip in ips
            # 3. A coalesced session satisfies the RFC 7540 predicate.
            if decision.coalesced:
                assert session.remote_ip in ips
                assert session.certificate.covers(host)
            # 4. A non-created, non-coalesced hit is an exact-key alias:
            #    its certificate must still cover the host.
            if not decision.created:
                assert session.certificate.covers(host)
        # 5. Accounting adds up.
        assert pool.created_count == len(pool.sessions)
        assert pool.created_count + pool.coalesced_count <= len(requests)

    @given(st.lists(_request, min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_repeat_of_same_request_never_creates(self, requests):
        servers = _world()
        pool = ConnectionPool(server_lookup=servers.__getitem__,
                              rng=random.Random(1))
        for step, (host, ips, privacy) in enumerate(requests):
            pool.get_connection(host, tuple(ips), privacy_mode=privacy,
                                now=float(step))
            again = pool.get_connection(host, tuple(ips),
                                        privacy_mode=privacy,
                                        now=float(step) + 0.5)
            assert not again.created

    @given(st.lists(_request, min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_patched_pool_has_single_partition(self, requests):
        servers = _world()
        pool = ConnectionPool(server_lookup=servers.__getitem__,
                              rng=random.Random(2), ignore_privacy_mode=True)
        for step, (host, ips, privacy) in enumerate(requests):
            pool.get_connection(host, tuple(ips), privacy_mode=privacy,
                                now=float(step))
        assert all(not session.privacy_mode for session in pool.sessions)

    @given(st.lists(_request, min_size=2, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_patched_pool_never_more_sessions_than_default(self, requests):
        """The §5.3.3 patch can only reduce the number of connections."""
        counts = []
        for ignore in (False, True):
            servers = _world()
            pool = ConnectionPool(server_lookup=servers.__getitem__,
                                  rng=random.Random(3),
                                  ignore_privacy_mode=ignore)
            for step, (host, ips, privacy) in enumerate(requests):
                pool.get_connection(host, tuple(ips), privacy_mode=privacy,
                                    now=float(step))
            counts.append(len(pool.sessions))
        default_count, patched_count = counts
        assert patched_count <= default_count


class TestPoolEdgeCases:
    """Degenerate inputs the executor refactor's batching can produce:
    empty request sequences (empty site lists), one-request batches and
    per-visit pools that only ever see a single site's traffic."""

    def test_untouched_pool_is_empty(self):
        pool = ConnectionPool(server_lookup=_world().__getitem__,
                              rng=random.Random(4))
        assert pool.sessions == []
        assert pool.created_count == 0
        assert pool.coalesced_count == 0
        assert pool.live_sessions() == []

    def test_close_all_on_empty_pool(self):
        pool = ConnectionPool(server_lookup=_world().__getitem__,
                              rng=random.Random(5))
        pool.close_all(now=1.0, reason="test-end")
        assert pool.sessions == []

    @given(_request)
    @settings(max_examples=30, deadline=None)
    def test_single_request_always_creates(self, request_spec):
        host, ips, privacy = request_spec
        pool = ConnectionPool(server_lookup=_world().__getitem__,
                              rng=random.Random(6))
        decision = pool.get_connection(host, tuple(ips),
                                       privacy_mode=privacy, now=0.0)
        assert decision.created
        assert not decision.coalesced
        assert len(pool.sessions) == 1

    @given(st.lists(_request, min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_fresh_pools_are_independent(self, requests):
        """One pool per visit (the per-site task model) must behave the
        same no matter how many other pools ran before it."""

        def session_count() -> int:
            pool = ConnectionPool(server_lookup=_world().__getitem__,
                                  rng=random.Random(7))
            for step, (host, ips, privacy) in enumerate(requests):
                pool.get_connection(host, tuple(ips), privacy_mode=privacy,
                                    now=float(step))
            return len(pool.sessions)

        first = session_count()
        for _ in range(3):
            assert session_count() == first
