"""Tests for the cookie jar."""

from __future__ import annotations

from repro.browser.cookies import CookieJar


class TestCookieJar:
    def test_set_and_get(self):
        jar = CookieJar()
        jar.set_cookie("www.example.com", "sid", "1")
        assert jar.cookies_for("www.example.com") == {"sid": "1"}

    def test_site_scoped(self):
        jar = CookieJar()
        jar.set_cookie("www.example.com", "sid", "1")
        # Same registrable domain shares the cookie...
        assert jar.cookies_for("img.example.com") == {"sid": "1"}
        # ...other sites do not.
        assert jar.cookies_for("other.com") == {}

    def test_overwrite(self):
        jar = CookieJar()
        jar.set_cookie("example.com", "sid", "1")
        jar.set_cookie("example.com", "sid", "2")
        assert jar.cookies_for("example.com") == {"sid": "2"}

    def test_len_counts_cookies(self):
        jar = CookieJar()
        jar.set_cookie("a.com", "x", "1")
        jar.set_cookie("a.com", "y", "2")
        jar.set_cookie("b.com", "x", "3")
        assert len(jar) == 3

    def test_clear(self):
        jar = CookieJar()
        jar.set_cookie("a.com", "x", "1")
        jar.clear()
        assert len(jar) == 0

    def test_returned_dict_is_copy(self):
        jar = CookieJar()
        jar.set_cookie("a.com", "x", "1")
        jar.cookies_for("a.com")["x"] = "tampered"
        assert jar.cookies_for("a.com") == {"x": "1"}
