"""Tests for the browser facade and page loader behaviour."""

from __future__ import annotations

from repro.browser.browser import BrowserConfig
from repro.core.session import records_from_visit


def _site_with(small_ecosystem, service_key):
    for site in small_ecosystem.websites:
        if service_key in site.embedded_services:
            return site
    return None


class TestVisit:
    def test_visit_produces_connections_and_netlog(self, browser, small_ecosystem):
        visit = browser.visit(small_ecosystem.websites[0].domain)
        assert visit.ok
        assert visit.connections
        assert len(visit.netlog) > 0
        assert visit.load.requests

    def test_unknown_domain_unreachable(self, browser):
        visit = browser.visit("does-not-exist.example")
        assert visit.unreachable
        assert visit.connections == []

    def test_first_connection_is_document(self, browser, small_ecosystem):
        site = small_ecosystem.websites[0]
        visit = browser.visit(site.domain)
        assert visit.connections[0].sni == site.domain

    def test_requests_covered_by_connections(self, browser, small_ecosystem):
        visit = browser.visit(small_ecosystem.websites[1].domain)
        for loaded in visit.load.requests:
            assert loaded.connection in visit.connections

    def test_ga_chain_opens_redundant_connection(self, browser_factory,
                                                 small_ecosystem):
        site = _site_with(small_ecosystem, "google-analytics")
        assert site is not None, "fixture world should embed GA somewhere"
        visit = browser_factory().visit(site.domain)
        snis = [c.sni for c in visit.h2_connections()]
        if "www.google-analytics.com" in snis:
            gtm = [c for c in visit.h2_connections()
                   if c.sni == "www.googletagmanager.com"]
            ga = [c for c in visit.h2_connections()
                  if c.sni == "www.google-analytics.com"]
            if gtm and ga:
                # Disjoint pools: the GA connection never lands on the
                # GTM address even though the certificate would allow
                # reuse — the paper's flagship IP case.
                assert ga[0].remote_ip != gtm[0].remote_ip
                assert gtm[0].certificate.covers("www.google-analytics.com")

    def test_privacy_mode_partition_produces_same_domain_duplicate(
        self, browser_factory, small_ecosystem
    ):
        site = _site_with(small_ecosystem, "google-analytics")
        visit = browser_factory().visit(site.domain)
        ga_conns = [c for c in visit.h2_connections()
                    if c.sni == "www.google-analytics.com"]
        if len(ga_conns) >= 2:
            assert {c.privacy_mode for c in ga_conns} == {True, False}

    def test_patched_browser_merges_partitions(self, browser_factory,
                                               small_ecosystem):
        site = _site_with(small_ecosystem, "google-analytics")
        patched = browser_factory(BrowserConfig(ignore_privacy_mode=True))
        visit = patched.visit(site.domain)
        for conn in visit.h2_connections():
            assert conn.privacy_mode is False

    def test_421_retry_path(self, browser_factory, small_ecosystem):
        site = _site_with(small_ecosystem, "megacdn")
        if site is None:
            return  # not embedded in this small world
        visit = browser_factory().visit(site.domain)
        if "api.megacdn.net" in visit.load.misdirected:
            records = records_from_visit(visit)
            api_conns = [r for r in records if r.domain == "api.megacdn.net"]
            # The retry opened a dedicated connection.
            assert api_conns
            statuses = [
                req.status
                for record in records
                for req in record.requests
                if req.domain == "api.megacdn.net"
            ]
            assert 421 in statuses and 200 in statuses

    def test_observation_closes_everything(self, browser, small_ecosystem):
        visit = browser.visit(small_ecosystem.websites[2].domain)
        assert all(not c.is_open for c in visit.connections)
        assert visit.observed_until >= visit.load.finished_at

    def test_geo_rewrite_applied_from_german_vantage(self, browser_factory,
                                                     small_ecosystem):
        site = _site_with(small_ecosystem, "google-platform")
        if site is None:
            return
        de_visit = browser_factory(BrowserConfig(vantage_country="DE")).visit(
            site.domain
        )
        domains = {r.record.domain for r in de_visit.load.requests}
        assert "www.google.com" not in domains
        us_visit = browser_factory(BrowserConfig(vantage_country="US")).visit(
            site.domain
        )
        us_domains = {r.record.domain for r in us_visit.load.requests}
        assert "www.google.de" not in us_domains


class TestDeterminism:
    def test_same_seed_same_visit(self, browser_factory, small_ecosystem):
        domain = small_ecosystem.websites[3].domain
        a = browser_factory(seed=77).visit(domain)
        b = browser_factory(seed=77).visit(domain)
        assert [(c.sni, c.remote_ip) for c in a.connections] == [
            (c.sni, c.remote_ip) for c in b.connections
        ]
