"""Tests for the Fetch Standard credentials decision."""

from __future__ import annotations

import pytest

from repro.browser.fetch import decide_credentials, is_same_origin, same_site
from repro.web.resources import RequestMode


class TestDecideCredentials:
    @pytest.mark.parametrize(
        "mode",
        [RequestMode.NAVIGATE, RequestMode.NO_CORS, RequestMode.CORS_CREDENTIALED],
    )
    def test_always_credentialed_modes(self, mode):
        decision = decide_credentials(
            mode, request_domain="cdn.other.com", document_domain="example.com"
        )
        assert decision.include_credentials
        assert not decision.privacy_mode

    def test_cors_anon_cross_origin_is_privacy_mode(self):
        decision = decide_credentials(
            RequestMode.CORS_ANON,
            request_domain="fonts.gstatic.com",
            document_domain="example.com",
        )
        assert not decision.include_credentials
        assert decision.privacy_mode

    def test_cors_anon_same_origin_keeps_credentials(self):
        decision = decide_credentials(
            RequestMode.CORS_ANON,
            request_domain="example.com",
            document_domain="example.com",
        )
        assert decision.include_credentials

    def test_same_origin_is_exact_host(self):
        # Subdomains are different origins — the first-party-shard CRED
        # case relies on this.
        decision = decide_credentials(
            RequestMode.CORS_ANON,
            request_domain="img.example.com",
            document_domain="example.com",
        )
        assert decision.privacy_mode


class TestOriginHelpers:
    def test_is_same_origin_case_insensitive(self):
        assert is_same_origin("Example.COM", "example.com")

    def test_same_site_registrable_domain(self):
        assert same_site("img.example.com", "www.example.com")
        assert not same_site("example.com", "other.com")

    def test_same_site_unknown_suffix_falls_back_to_host(self):
        assert same_site("host.weird", "host.weird")
        assert not same_site("a.weird", "b.weird")
