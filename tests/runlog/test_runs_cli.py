"""``repro runs``: listing journals and rendering one run's detail."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.runlog import RunJournal, journal_dir, list_runs


def _write_journal(cache_dir: Path, run: str, *, quarantined=0,
                   finished=2, finish: str | None = "complete") -> None:
    journal = RunJournal.fresh(
        journal_dir(cache_dir) / f"{run}.jsonl", run=run,
        meta={"seed": 7, "n_sites": 120, "shards": 4,
              "fault_profile": "none"},
    )
    for index in range(finished):
        journal.append({"event": "shard-finish", "stage": "alexa-crawl",
                        "key": f"key-{run}-{index}",
                        "artifact": f"key-{run}-{index}"})
    for index in range(quarantined):
        journal.append({"event": "shard-quarantined", "stage": "har-crawl",
                        "key": f"poison-{run}-{index}", "attempts": 3})
    if finish is not None:
        journal.append({"event": "run-finish", "status": finish})
    journal.close()


@pytest.fixture
def populated_cache(tmp_path):
    _write_journal(tmp_path, "aaaa11112222", finish="complete")
    _write_journal(tmp_path, "bbbb33334444", finish=None)  # interrupted
    _write_journal(tmp_path, "cccc55556666", quarantined=2,
                   finish="partial")
    return tmp_path


class TestListing:
    def test_statuses(self, populated_cache):
        by_run = {s.run: s for s in list_runs(populated_cache)}
        assert by_run["aaaa11112222"].status == "complete"
        assert by_run["bbbb33334444"].status == "resumable"
        assert by_run["bbbb33334444"].resumable
        assert by_run["cccc55556666"].status == "quarantined-2"
        assert by_run["cccc55556666"].shards_quarantined == 2
        assert by_run["aaaa11112222"].shards_finished == 2

    def test_cli_lists_every_journal(self, populated_cache, capsys):
        rc = main(["runs", "--cache-dir", str(populated_cache)])
        out = capsys.readouterr().out
        assert rc == 0
        for expected in ("Run", "Status", "aaaa11112222", "complete",
                         "resumable", "quarantined-2"):
            assert expected in out

    def test_cli_empty_cache(self, tmp_path, capsys):
        rc = main(["runs", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "No run journals found." in capsys.readouterr().out

    def test_cli_requires_cache_dir(self, capsys):
        rc = main(["runs"])
        assert rc == 2
        assert "--cache-dir" in capsys.readouterr().err


class TestDetail:
    def test_unique_prefix_renders_records(self, populated_cache, capsys):
        rc = main(["runs", "cccc", "--cache-dir", str(populated_cache)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "run cccc55556666  [quarantined-2]" in out
        assert "run-start" in out and "seed=7" in out
        assert "shard-quarantined" in out and "attempts=3" in out
        assert "status=partial" in out

    def test_no_match_fails(self, populated_cache, capsys):
        rc = main(["runs", "zzzz", "--cache-dir", str(populated_cache)])
        assert rc == 1
        assert "no unique run journal" in capsys.readouterr().err

    def test_ambiguous_prefix_fails(self, tmp_path, capsys):
        _write_journal(tmp_path, "aaaa11112222")
        _write_journal(tmp_path, "aaaa99990000")
        rc = main(["runs", "aaaa", "--cache-dir", str(tmp_path)])
        assert rc == 1
        assert "no unique" in capsys.readouterr().err
