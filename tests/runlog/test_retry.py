"""Failure classification and the chunk-then-single retry loop."""

from __future__ import annotations

import os
import signal
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, replace

import pytest

from repro.dns.errors import DnsError
from repro.h2.errors import H2Error
from repro.runlog import (
    PoisonShardError,
    RetryPolicy,
    WorkerCrashError,
    classify_failure,
    retry_map,
)
from repro.runtime import ProcessExecutor, SerialExecutor
from repro.tls.verify import CertificateError


class TestClassification:
    @pytest.mark.parametrize("error", [
        TypeError("t"), AttributeError("a"), NameError("n"),
        KeyError("k"), IndexError("i"), ValueError("v"),
        AssertionError("a"), ImportError("i"), RecursionError("r"),
        NotImplementedError("n"), ZeroDivisionError("z"),
    ])
    def test_programming_errors_are_fatal(self, error):
        assert classify_failure(error) == "fatal"

    @pytest.mark.parametrize("error", [
        DnsError("servfail"), H2Error("goaway"),
        CertificateError("expired"), OSError("io"),
        ConnectionResetError("reset"), TimeoutError("slow"),
        BrokenExecutor("worker died"), WorkerCrashError("injected"),
        RuntimeError("anything else"),
    ])
    def test_infrastructure_errors_are_transient(self, error):
        assert classify_failure(error) == "transient"

    def test_oserror_wins_over_lookup_ancestry(self):
        # FileNotFoundError is an OSError; the explicit OSError guard
        # must keep it transient even though OSError subclasses appear
        # nowhere in the fatal tuple themselves.
        assert classify_failure(FileNotFoundError("gone")) == "transient"


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)

    def test_backoff_is_linear_and_deterministic(self):
        policy = RetryPolicy(max_attempts=4, backoff_base=0.5)
        assert [policy.backoff_s(n) for n in (1, 2, 3)] == [0.5, 1.0, 1.5]
        assert RetryPolicy().backoff_s(3) == 0.0


@dataclass(frozen=True)
class _Task:
    name: str
    fail_until: int = 0  # attempts [0, fail_until) raise
    attempt: int = 0
    fatal: bool = False


def _work(task: _Task) -> str:
    if task.fatal:
        raise TypeError(f"bug visiting {task.name}")
    if task.attempt < task.fail_until:
        raise DnsError(f"servfail for {task.name} "
                       f"(attempt {task.attempt})")
    return task.name.upper()


def _reattempt(task: _Task, attempt: int) -> _Task:
    return replace(task, attempt=attempt)


class TestRetryMap:
    def test_happy_path_preserves_order(self):
        tasks = [_Task("a"), _Task("b"), _Task("c")]
        results = retry_map(
            SerialExecutor(), _work, tasks,
            policy=RetryPolicy(), stage="s",
        )
        assert results == ["A", "B", "C"]

    def test_empty_items(self):
        assert retry_map(
            SerialExecutor(), _work, [], policy=RetryPolicy(), stage="s"
        ) == []

    def test_transient_failure_recovers_on_single_redispatch(self):
        events = []
        # b fails its chunk attempt (0) and its first re-dispatch (1),
        # then succeeds with one attempt to spare.
        tasks = [_Task("a"), _Task("b", fail_until=2), _Task("c")]
        results = retry_map(
            SerialExecutor(), _work, tasks,
            policy=RetryPolicy(max_attempts=3), stage="s",
            reattempt=_reattempt,
            on_event=lambda kind, detail: events.append((kind, detail)),
        )
        assert results == ["A", "B", "C"]
        kinds = [kind for kind, _ in events]
        assert kinds == ["chunk-failed", "item-failed"]
        assert events[0][1]["classification"] == "transient"
        assert events[1][1]["attempt"] == 1

    def test_poison_after_exhausted_attempts(self):
        tasks = [_Task("a"), _Task("b", fail_until=99)]
        with pytest.raises(PoisonShardError) as info:
            retry_map(
                SerialExecutor(), _work, tasks,
                policy=RetryPolicy(max_attempts=3), stage="alexa-fetch",
                domains=("a.com", "b.com"), reattempt=_reattempt,
            )
        assert info.value.stage == "alexa-fetch"
        assert info.value.domains == ("a.com", "b.com")
        assert info.value.attempts == 3
        assert isinstance(info.value.__cause__, DnsError)

    def test_fatal_chunk_failure_raises_immediately(self):
        events = []
        with pytest.raises(TypeError):
            retry_map(
                SerialExecutor(), _work, [_Task("a", fatal=True)],
                policy=RetryPolicy(max_attempts=5), stage="s",
                reattempt=_reattempt,
                on_event=lambda kind, detail: events.append(kind),
            )
        assert events == ["chunk-failed"]  # no per-item attempts burned

    def test_fatal_during_redispatch_raises_immediately(self):
        calls = []

        def flaky_then_buggy(task: _Task) -> str:
            calls.append(task.attempt)
            if task.attempt == 0:
                raise DnsError("transient first")
            raise TypeError("bug on retry")

        with pytest.raises(TypeError):
            retry_map(
                SerialExecutor(), flaky_then_buggy, [_Task("a")],
                policy=RetryPolicy(max_attempts=4), stage="s",
                reattempt=_reattempt,
            )
        assert calls == [0, 1]

    def test_single_attempt_policy_reraises_the_original(self):
        # Strict mode: no PoisonShardError wrapper, the real error
        # surfaces with its own type and message.
        with pytest.raises(DnsError):
            retry_map(
                SerialExecutor(), _work, [_Task("a", fail_until=9)],
                policy=RetryPolicy(max_attempts=1), stage="s",
                reattempt=_reattempt,
            )

    def test_backoff_sleeps_between_attempts(self, monkeypatch):
        import repro.runlog.retry as retry_module

        naps = []
        monkeypatch.setattr(
            retry_module.time, "sleep", lambda s: naps.append(s)
        )
        retry_map(
            SerialExecutor(), _work, [_Task("a", fail_until=2)],
            policy=RetryPolicy(max_attempts=3, backoff_base=0.25),
            stage="s", reattempt=_reattempt,
        )
        assert naps == [0.25, 0.5]


# --- dead-worker re-dispatch -------------------------------------------------

def _suicidal(task: _Task) -> str:
    """Kill -9 the hosting worker on early attempts (picklable)."""
    if task.name == "bomb" and task.attempt < task.fail_until:
        os.kill(os.getpid(), signal.SIGKILL)
    return task.name.upper()


@pytest.mark.slow
class TestDeadWorkerRedispatch:
    def test_sigkilled_worker_recovers_via_single_redispatch(self):
        """A worker dying mid-chunk (BrokenExecutor) classifies as
        transient; the re-dispatch runs each item singly against a
        fresh pool and the map completes with full results."""
        tasks = [_Task("a"), _Task("bomb", fail_until=1), _Task("c"),
                 _Task("d")]
        events = []
        with ProcessExecutor(max_workers=2) as executor:
            results = retry_map(
                executor, _suicidal, tasks,
                policy=RetryPolicy(max_attempts=3), stage="s",
                reattempt=_reattempt,
                on_event=lambda kind, detail: events.append((kind, detail)),
            )
            # The executor is healthy again after the broken pool was
            # discarded: a follow-up plain map works.
            assert executor.map_sites(
                _suicidal, [_Task("e")]
            ) == ["E"]
        assert results == ["A", "BOMB", "C", "D"]
        chunk_failures = [d for k, d in events if k == "chunk-failed"]
        assert chunk_failures and chunk_failures[0]["classification"] == (
            "transient"
        )

    def test_forever_killing_worker_poisons(self):
        tasks = [_Task("a"), _Task("bomb", fail_until=99)]
        with ProcessExecutor(max_workers=2) as executor:
            with pytest.raises(PoisonShardError):
                retry_map(
                    executor, _suicidal, tasks,
                    policy=RetryPolicy(max_attempts=2), stage="s",
                    reattempt=_reattempt,
                )
