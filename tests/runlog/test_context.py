"""RunContext through the whole pipeline: inertness, recovery,
quarantine, strict mode and cache rot.

Every test here runs the golden-scale study (seed=7, n=120) under the
journalled per-shard path and holds it against the pinned golden
digest: the run layer must change **nothing** unless shards are
actually lost.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest

from repro.analysis.digest import study_digest
from repro.analysis.report import generate_report
from repro.analysis.study import Study, StudyConfig
from repro.runlog import WorkerCrashError, load_records, run_id
from repro.store import StudyCache

GOLDEN_DIGEST = (
    Path(__file__).resolve().parent.parent / "golden" / "digest.txt"
).read_text().strip()


def _config(**overrides) -> StudyConfig:
    base = StudyConfig(seed=7, n_sites=120, dns_study_days=0.25, shards=4)
    return replace(base, **overrides)


def _journal_events(cache: StudyCache, config: StudyConfig) -> list[str]:
    path = Path(cache.directory) / "runs" / f"{run_id(config)}.jsonl"
    return [record["event"] for record in load_records(path)]


@pytest.mark.slow
@pytest.mark.golden
class TestInertness:
    def test_journalled_run_digests_golden(self, tmp_path):
        """The ISSUE's inertness differential: runlog active, zero
        failures => digest byte-identical to the seed golden."""
        config = _config()
        cache = StudyCache(tmp_path)
        study = Study.run(config, cache=cache)
        assert study_digest(study) == GOLDEN_DIGEST
        assert study.coverage is not None and study.coverage.complete
        events = _journal_events(cache, config)
        assert events[0] == "run-start"
        assert events[-1] == "run-finish"
        assert events.count("shard-finish") == 12  # 4 shards x 3 crawls

    def test_warm_rerun_skips_and_digests_golden(self, tmp_path):
        config = _config()
        cache = StudyCache(tmp_path)
        Study.run(config, cache=cache)
        study = Study.run(config, cache=cache)
        assert study_digest(study) == GOLDEN_DIGEST
        events = _journal_events(cache, config)
        assert events.count("shard-skip") == 12
        assert events.count("shard-start") == 0

    def test_cacheless_run_has_no_coverage(self):
        study = Study.run(
            StudyConfig(seed=7, n_sites=60, dns_study_days=0.25)
        )
        assert study.coverage is None

    def test_resume_requires_a_cache(self):
        with pytest.raises(ValueError, match="resume"):
            Study.run(_config(), resume=True)


@pytest.mark.slow
@pytest.mark.golden
class TestWorkerCrashRecovery:
    def test_recovered_crashes_digest_golden(self, tmp_path):
        """worker-crash strikes a quarter of tasks once each; after
        re-dispatch the study output is byte-identical to 'none'."""
        config = _config(fault_profile="worker-crash")
        cache = StudyCache(tmp_path)
        study = Study.run(config, cache=cache)
        assert study_digest(study) == GOLDEN_DIGEST
        assert study.coverage.complete
        events = _journal_events(cache, config)
        assert "chunk-failed" in events  # crashes really happened
        assert "shard-quarantined" not in events

    def test_strict_mode_fails_fast_with_the_original_error(self, tmp_path):
        with pytest.raises(WorkerCrashError):
            Study.run(
                _config(fault_profile="worker-crash"),
                cache=StudyCache(tmp_path), strict=True,
            )


@pytest.mark.slow
class TestPoisonQuarantine:
    def test_poisoned_shards_degrade_gracefully(self, tmp_path):
        config = _config(fault_profile="worker-poison")
        cache = StudyCache(tmp_path)
        study = Study.run(config, cache=cache)
        coverage = study.coverage
        assert not coverage.complete
        assert coverage.shards_quarantined > 0
        assert coverage.excluded_domains
        assert coverage.shards_ok + coverage.shards_quarantined == (
            coverage.shards_total
        )
        # A degraded run must never digest-collide with a complete one.
        assert study_digest(study) != GOLDEN_DIGEST
        events = _journal_events(cache, config)
        assert "shard-quarantined" in events
        assert events[-1] == "run-finish"
        # Quarantine is per-stage: each excluded domain is really
        # missing from at least one dataset (the one its lost shard
        # fed), even if other crawls still observed it.
        assert all(
            any(domain not in dataset.classifications
                for dataset in study.datasets.values())
            for domain in coverage.excluded_domains
        )

    def test_report_carries_the_coverage_block(self, tmp_path):
        study = Study.run(
            _config(fault_profile="worker-poison"),
            cache=StudyCache(tmp_path),
        )
        report = generate_report(study, include_dns_study=False)
        assert "## Run coverage" in report
        assert "PARTIAL" in report
        assert study.coverage.excluded_domains[0] in report

    def test_no_classify_artefact_cached_for_quarantined_shards(
        self, tmp_path
    ):
        """The cache-poisoning hazard: a quarantined crawl shard must
        not leave an (empty) classified dataset under its full shard
        key, or a later healthy run would inherit the hole."""
        config = _config(fault_profile="worker-poison")
        cache = StudyCache(tmp_path)
        first = Study.run(config, cache=cache)
        assert not first.coverage.complete
        # Re-run warm: crawl shards that finished load from cache, the
        # quarantined ones poison again (same deterministic strikes),
        # and the digest is reproduced exactly.
        second = Study.run(config, cache=cache)
        assert study_digest(second) == study_digest(first)
        assert second.coverage.shards_quarantined == (
            first.coverage.shards_quarantined
        )


@pytest.mark.slow
@pytest.mark.golden
class TestCacheRot:
    def test_rotted_artefacts_recover_by_eviction(self, tmp_path):
        config = _config(fault_profile="cache-rot")
        cache = StudyCache(tmp_path)
        cold = Study.run(config, cache=cache)
        assert study_digest(cold) == GOLDEN_DIGEST
        events = _journal_events(cache, config)
        assert "cache-rot" in events  # rot really struck
        # Warm rerun: the rotted entries fail to load, evict, and the
        # shards recompute — still golden, still complete.
        warm = Study.run(config, cache=cache)
        assert study_digest(warm) == GOLDEN_DIGEST
        assert warm.coverage.complete
