"""The ISSUE's kill-and-resume differential.

A real ``repro study`` subprocess is interrupted mid-run — one pool
worker SIGKILLed, then SIGINT to the driver — and the run is resumed
in-process with ``resume=True``.  The resumed study must be
digest-identical to an uninterrupted run of the same config, and the
journal must show the finished shards being skipped, not redone.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.digest import study_digest
from repro.analysis.study import Study, StudyConfig
from repro.runlog import load_records, run_id
from repro.store import StudyCache

# The exact config the CLI below builds (executor/parallelism are
# normalised away by run_id, so the serial in-process resume continues
# the process-pool run's journal).
CONFIG = StudyConfig(seed=7, n_sites=120, shards=8)
CLI = [
    sys.executable, "-m", "repro", "study",
    "--sites", "120", "--shards", "8", "--seed", "7",
    "--executor", "process:2", "--headline",
]

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def _journal_path(cache_dir: Path) -> Path:
    return cache_dir / "runs" / f"{run_id(CONFIG)}.jsonl"


def _events(cache_dir: Path) -> list[str]:
    return [r["event"] for r in load_records(_journal_path(cache_dir))]


def _worker_pids(pid: int) -> list[int]:
    try:
        raw = Path(f"/proc/{pid}/task/{pid}/children").read_text()
    except OSError:
        return []
    return [int(child) for child in raw.split()]


def _interrupt_a_real_run(cache_dir: Path) -> "tuple[int, str] | None":
    """Start the CLI study, SIGKILL a worker once shards are landing,
    SIGINT the driver.  Returns (returncode, stderr), or None if the
    run won the race and completed before the interrupt landed."""
    proc = subprocess.Popen(
        CLI + ["--cache-dir", str(cache_dir)],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        env=_env(), cwd=REPO_ROOT, text=True,
    )
    try:
        deadline = time.monotonic() + 90.0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                proc.communicate()
                return None  # completed before we could interrupt
            if _events(cache_dir).count("shard-finish") >= 2:
                break
            time.sleep(0.02)
        else:
            pytest.fail("study subprocess produced no shard-finish "
                        "records within 90s")
        workers = _worker_pids(proc.pid)
        if workers:
            os.kill(workers[-1], signal.SIGKILL)
            time.sleep(0.2)
        if proc.poll() is not None:
            proc.communicate()
            return None
        proc.send_signal(signal.SIGINT)
        _, stderr = proc.communicate(timeout=90)
        if proc.returncode == 0:
            return None  # SIGINT landed after the run finished
        return proc.returncode, stderr
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()


@pytest.mark.slow
class TestKillAndResume:
    def test_interrupted_run_resumes_to_an_identical_digest(
        self, tmp_path_factory
    ):
        reference_cache = StudyCache(tmp_path_factory.mktemp("reference"))
        reference = study_digest(Study.run(CONFIG, cache=reference_cache))

        for _ in range(3):
            cache_dir = tmp_path_factory.mktemp("interrupted")
            outcome = _interrupt_a_real_run(cache_dir)
            if outcome is not None:
                break
        else:
            pytest.skip("study completed before the interrupt could "
                        "land on three consecutive tries")

        returncode, stderr = outcome
        assert returncode == 130
        assert "--resume" in stderr
        assert "Traceback" not in stderr

        events = _events(cache_dir)
        assert "run-finish" not in events  # genuinely interrupted
        finished_before = events.count("shard-finish")
        assert finished_before >= 2

        resumed = Study.run(
            CONFIG, cache=StudyCache(cache_dir), resume=True
        )
        assert study_digest(resumed) == reference
        assert resumed.coverage is not None and resumed.coverage.complete

        records = load_records(_journal_path(cache_dir))
        events = [r["event"] for r in records]
        assert events[-1] == "run-finish"
        journal_skips = [
            r for r in records
            if r["event"] == "shard-skip" and r.get("reason") == "journal"
        ]
        # Every shard the interrupted run finished was skipped on
        # resume via its journalled cache key, not recomputed.
        assert len(journal_skips) >= finished_before
