"""The durable journal: round-trips, torn tails, replay semantics."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.study import StudyConfig
from repro.runlog import (
    JournalSchemaError,
    ReplayState,
    RunJournal,
    RunJournalError,
    journal_dir,
    load_records,
    run_id,
)


def _fresh(tmp_path, run="r1", n=0):
    journal = RunJournal.fresh(tmp_path / "j.jsonl", run=run)
    for index in range(n):
        journal.append({"event": "shard-finish", "stage": "s",
                        "key": f"k{index}", "artifact": f"a{index}"})
    return journal


class TestRoundTrip:
    def test_append_then_load(self, tmp_path):
        journal = _fresh(tmp_path, n=3)
        journal.close()
        records = load_records(tmp_path / "j.jsonl")
        assert [record["event"] for record in records] == [
            "run-start", "shard-finish", "shard-finish", "shard-finish"
        ]
        assert [record["seq"] for record in records] == [0, 1, 2, 3]

    def test_append_survives_without_close(self, tmp_path):
        # fsync-on-append: the record is durable the moment append
        # returns, no close/flush required (the crash-safety contract).
        journal = _fresh(tmp_path, n=2)
        records = load_records(tmp_path / "j.jsonl")
        journal.close()
        assert len(records) == 3

    def test_closed_journal_refuses_append(self, tmp_path):
        journal = _fresh(tmp_path)
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(RunJournalError):
            journal.append({"event": "shard-finish", "key": "k"})

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_records(tmp_path / "nope.jsonl") == []


class TestTornTail:
    def test_half_written_line_is_dropped(self, tmp_path):
        journal = _fresh(tmp_path, n=2)
        journal.close()
        path = tmp_path / "j.jsonl"
        with path.open("ab") as handle:
            handle.write(b'{"crc": "dead", "record": {"event": "shard-')
        records = load_records(path)
        assert len(records) == 3  # run-start + 2 finishes, tail dropped

    def test_flipped_bits_stop_the_prefix(self, tmp_path):
        journal = _fresh(tmp_path, n=3)
        journal.close()
        path = tmp_path / "j.jsonl"
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = lines[2].replace(b"shard-finish", b"shard-fXnish")
        path.write_bytes(b"".join(lines))
        records = load_records(path)
        # CRC catches the flip; everything after it is untrusted too.
        assert len(records) == 2

    @settings(max_examples=60, deadline=None)
    @given(
        n_records=st.integers(min_value=0, max_value=6),
        cut=st.integers(min_value=0, max_value=2000),
    )
    def test_any_truncation_loads_a_valid_prefix(
        self, tmp_path_factory, n_records, cut
    ):
        """The crash-safety property: however many trailing bytes a
        crash tore off, the journal loads to an exact prefix of what
        was appended."""
        tmp_path = tmp_path_factory.mktemp("journal")
        journal = _fresh(tmp_path, n=n_records)
        journal.close()
        path = tmp_path / "j.jsonl"
        raw = path.read_bytes()
        expected = load_records(path)
        truncated = raw[: min(cut, len(raw))]
        path.write_bytes(truncated)
        records = load_records(path)
        assert records == expected[: len(records)]
        # And every surviving record is bytewise intact, not repaired.
        for record, line in zip(
            records, truncated.splitlines(keepends=True)
        ):
            assert json.loads(line)["record"] == record


class TestResume:
    def test_resume_continues_the_seq(self, tmp_path):
        _fresh(tmp_path, n=2).close()
        journal = RunJournal.resume(tmp_path / "j.jsonl", run="r1")
        appended = journal.append({"event": "shard-finish", "key": "k9"})
        journal.close()
        assert appended["seq"] == 3
        assert len(load_records(tmp_path / "j.jsonl")) == 4

    def test_resume_truncates_a_torn_tail(self, tmp_path):
        _fresh(tmp_path, n=2).close()
        path = tmp_path / "j.jsonl"
        with path.open("ab") as handle:
            handle.write(b"garbage tail without newline")
        journal = RunJournal.resume(path, run="r1")
        journal.append({"event": "run-finish", "status": "complete"})
        journal.close()
        records = load_records(path)
        assert [record["event"] for record in records] == [
            "run-start", "shard-finish", "shard-finish", "run-finish"
        ]
        # The file itself is clean again: full reparse sees every line.
        assert len(path.read_bytes().splitlines()) == 4

    def test_resume_missing_journal_raises(self, tmp_path):
        with pytest.raises(RunJournalError):
            RunJournal.resume(tmp_path / "j.jsonl", run="r1")

    def test_resume_wrong_run_raises(self, tmp_path):
        _fresh(tmp_path, run="r1").close()
        with pytest.raises(JournalSchemaError):
            RunJournal.resume(tmp_path / "j.jsonl", run="r2")

    def test_resume_headless_journal_raises(self, tmp_path):
        journal = RunJournal.fresh(tmp_path / "j.jsonl", run="r1")
        journal.close()
        path = tmp_path / "j.jsonl"
        # Drop the run-start line, leaving a valid non-head record.
        body = RunJournal.fresh(tmp_path / "k.jsonl", run="r1")
        body.append({"event": "shard-finish", "key": "k0"})
        body.close()
        lines = (tmp_path / "k.jsonl").read_bytes().splitlines(keepends=True)
        path.write_bytes(lines[1])
        with pytest.raises(JournalSchemaError):
            RunJournal.resume(path, run="r1")


class TestReplayState:
    def test_finish_and_quarantine_interplay(self):
        state = ReplayState.from_records([
            {"event": "run-start", "run": "r"},
            {"event": "shard-finish", "key": "a", "artifact": "art-a"},
            {"event": "shard-quarantined", "key": "b"},
            {"event": "shard-quarantined", "key": "a"},
            {"event": "shard-finish", "key": "b", "artifact": "art-b"},
        ])
        # Latest verdict wins in both directions.
        assert state.finished == {"b": "art-b"}
        assert state.quarantined == {"a"}
        assert not state.completed

    def test_run_finish_closes(self):
        state = ReplayState.from_records([
            {"event": "run-start", "run": "r"},
            {"event": "run-finish", "status": "partial"},
        ])
        assert state.completed
        assert state.status == "partial"


class TestRunId:
    def test_executor_is_normalised_away(self):
        base = StudyConfig(seed=7, n_sites=120, shards=4)
        pooled = StudyConfig(
            seed=7, n_sites=120, shards=4,
            executor="process:8", parallelism=8,
        )
        assert run_id(base) == run_id(pooled)

    def test_everything_else_matters(self):
        base = StudyConfig(seed=7, n_sites=120, shards=4)
        assert run_id(base) != run_id(StudyConfig(seed=8, n_sites=120,
                                                  shards=4))
        assert run_id(base) != run_id(StudyConfig(seed=7, n_sites=240,
                                                  shards=4))
        assert run_id(base) != run_id(
            StudyConfig(seed=7, n_sites=120, shards=4,
                        fault_profile="worker-crash")
        )

    def test_journal_dir_is_cache_scoped(self, tmp_path):
        assert journal_dir(tmp_path) == tmp_path / "runs"
