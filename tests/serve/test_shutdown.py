"""Graceful shutdown of a real ``repro serve`` subprocess.

The in-process suite covers drain semantics; these tests pin the outer
contract a supervisor sees: SIGTERM drains, prints the resume hint, and
exits 130 — the same rc every interrupted CLI run uses.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

_LISTEN = re.compile(r"listening on http://([\d.]+):(\d+)")


@pytest.fixture()
def serve_process(tmp_path):
    """Boot ``repro serve`` on an ephemeral port; yield (proc, base_url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", str(tmp_path / "cache"), "--jobs", "2"],
        stderr=subprocess.PIPE, text=True, cwd=os.getcwd(), env=env,
    )
    line = proc.stderr.readline()
    match = _LISTEN.search(line)
    assert match, f"no listening line on stderr, got: {line!r}"
    host, port = match.group(1), match.group(2)
    try:
        yield proc, f"http://{host}:{port}"
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stderr.close()
        proc.wait(timeout=10)


def test_sigterm_drains_and_exits_130(serve_process):
    proc, base = serve_process
    with urllib.request.urlopen(base + "/v1/healthz", timeout=30) as resp:
        assert json.load(resp)["status"] == "ok"

    proc.send_signal(signal.SIGTERM)
    remainder = proc.stderr.read()
    rc = proc.wait(timeout=30)
    assert rc == 130
    assert "draining inflight requests" in remainder
    assert '"resume": true' in remainder


@pytest.mark.slow
def test_sigterm_serves_a_study_first_then_drains_cleanly(serve_process):
    proc, base = serve_process
    body = json.dumps({
        "schema": 1, "seed": 7, "n_sites": 60,
        "dns_study_days": 0.25, "shards": 2,
    }).encode()
    request = urllib.request.Request(
        base + "/v1/study", data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as resp:
        payload = json.load(resp)
    assert resp.status == 200
    assert payload["cached"] is False
    assert len(payload["digest"]) == 32

    # An idle-but-warmed server still drains instantly and exits 130.
    proc.send_signal(signal.SIGTERM)
    deadline = time.monotonic() + 30
    while proc.poll() is None and time.monotonic() < deadline:
        time.sleep(0.05)
    assert proc.returncode == 130
