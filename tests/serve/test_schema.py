"""Request-schema validation: every bad field, one round trip."""

from __future__ import annotations

import pytest

from repro.analysis.study import StudyConfig
from repro.serve import SchemaError, parse_study_request, parse_sweep_request


def _fields(error: SchemaError) -> list[str]:
    return [entry["field"] for entry in error.errors]


class TestStudyRequest:
    def test_minimal_valid_body(self):
        request = parse_study_request({"schema": 1})
        assert request.config == StudyConfig()
        assert request.resume is False

    def test_fields_round_trip(self):
        request = parse_study_request({
            "schema": 1, "seed": 11, "n_sites": 80, "shards": 4,
            "har_models": ["endless"], "alexa_variants": ["fetch"],
            "fault_profile": "flaky-dns", "dns_study_days": 0.5,
            "resume": True,
        })
        config = request.config
        assert (config.seed, config.n_sites, config.shards) == (11, 80, 4)
        assert config.har_models == ("endless",)
        assert config.alexa_variants == ("fetch",)
        assert config.fault_profile == "flaky-dns"
        assert request.resume is True

    def test_missing_schema_rejected(self):
        with pytest.raises(SchemaError) as exc:
            parse_study_request({"seed": 7})
        assert _fields(exc.value) == ["schema"]

    def test_unsupported_schema_version_rejected(self):
        with pytest.raises(SchemaError) as exc:
            parse_study_request({"schema": 99, "seed": 7})
        assert _fields(exc.value) == ["schema"]
        assert "99" in exc.value.errors[0]["message"]

    def test_unknown_field_rejected_with_alternatives(self):
        with pytest.raises(SchemaError) as exc:
            parse_study_request({"schema": 1, "sites": 80})
        assert _fields(exc.value) == ["sites"]
        assert "n_sites" in exc.value.errors[0]["message"]

    def test_wrong_type_rejected(self):
        with pytest.raises(SchemaError) as exc:
            parse_study_request({"schema": 1, "n_sites": "many"})
        assert _fields(exc.value) == ["n_sites"]

    def test_bool_is_not_an_integer(self):
        with pytest.raises(SchemaError):
            parse_study_request({"schema": 1, "seed": True})

    @pytest.mark.parametrize(
        "name, value",
        [("executor", "process:8"), ("parallelism", 8),
         ("ecosystem_overrides", {})],
    )
    def test_server_owned_fields_rejected(self, name, value):
        with pytest.raises(SchemaError) as exc:
            parse_study_request({"schema": 1, name: value})
        assert _fields(exc.value) == [name]
        assert "server-owned" in exc.value.errors[0]["message"]

    def test_every_bad_field_reported_at_once(self):
        with pytest.raises(SchemaError) as exc:
            parse_study_request({
                "schema": 2, "bogus": 1, "executor": "thread",
                "n_sites": "x", "resume": "yes",
            })
        assert set(_fields(exc.value)) == {
            "schema", "bogus", "executor", "n_sites", "resume",
        }

    def test_semantically_bad_config_rejected(self):
        with pytest.raises(SchemaError) as exc:
            parse_study_request({
                "schema": 1, "alexa_variants": ["teapot"]
            })
        assert _fields(exc.value) == ["(config)"]

    def test_non_object_body_rejected(self):
        with pytest.raises(SchemaError) as exc:
            parse_study_request([1, 2, 3])
        assert _fields(exc.value) == ["(body)"]


class TestSweepRequest:
    def test_minimal_valid_body(self):
        request = parse_sweep_request({"schema": 1})
        assert request.spec.seeds == (7,)
        assert request.spec.axes == ()

    def test_grid_round_trip(self):
        request = parse_sweep_request({
            "schema": 1,
            "base": {"n_sites": 80, "dns_study_days": 0.25},
            "seeds": [7, 8],
            "axes": {"epochs": [0, 1]},
        })
        assert request.spec.base.n_sites == 80
        assert request.spec.seeds == (7, 8)
        assert request.spec.axes == (("epochs", (0, 1)),)
        assert request.spec.n_cells == 4

    def test_default_seeds_follow_base_seed(self):
        request = parse_sweep_request({"schema": 1, "base": {"seed": 42}})
        assert request.spec.seeds == (42,)

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(SchemaError) as exc:
            parse_sweep_request({"schema": 1, "grid": {}})
        assert _fields(exc.value) == ["grid"]

    def test_base_fields_validated_like_study(self):
        with pytest.raises(SchemaError) as exc:
            parse_sweep_request({
                "schema": 1,
                "base": {"executor": "process", "n_sites": "x"},
            })
        assert set(_fields(exc.value)) == {"base.executor", "base.n_sites"}

    def test_bad_seeds_rejected(self):
        for seeds in ([], ["7"], "7,8", [True]):
            with pytest.raises(SchemaError) as exc:
                parse_sweep_request({"schema": 1, "seeds": seeds})
            assert _fields(exc.value) == ["seeds"]

    def test_server_owned_axis_rejected(self):
        with pytest.raises(SchemaError) as exc:
            parse_sweep_request({
                "schema": 1, "axes": {"executor": ["serial", "thread"]}
            })
        assert _fields(exc.value) == ["axes.executor"]
        assert "server-owned" in exc.value.errors[0]["message"]

    def test_unknown_axis_rejected(self):
        with pytest.raises(SchemaError) as exc:
            parse_sweep_request({"schema": 1, "axes": {"bogus": [1]}})
        assert _fields(exc.value) == ["axes.bogus"]

    def test_axis_value_types_enforced(self):
        with pytest.raises(SchemaError) as exc:
            parse_sweep_request({
                "schema": 1, "axes": {"n_sites": [80, "many"]}
            })
        assert _fields(exc.value) == ["axes.n_sites"]

    def test_tuple_axis_values_are_string_lists(self):
        request = parse_sweep_request({
            "schema": 1,
            "axes": {"alexa_variants": [["fetch", "nofetch"], ["fetch"]]},
        })
        assert request.spec.axes == (
            ("alexa_variants", (("fetch", "nofetch"), ("fetch",))),
        )

    def test_bad_cell_config_rejected_before_running(self):
        with pytest.raises(SchemaError) as exc:
            parse_sweep_request({
                "schema": 1, "axes": {"har_models": [["bogus-model"]]}
            })
        assert _fields(exc.value) == ["(spec)"]
