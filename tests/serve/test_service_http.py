"""End-to-end HTTP contract: digests, caching, SSE, admission, drain."""

from __future__ import annotations

import http.client
import json
import threading
from pathlib import Path

import pytest

from repro.analysis.digest import study_digest
from repro.analysis.study import Study, StudyConfig

_GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"


def _config_of(body: dict) -> StudyConfig:
    fields = {
        name: value for name, value in body.items()
        if name not in ("schema", "resume")
    }
    fields["har_models"] = tuple(fields.get("har_models", ()) or
                                 StudyConfig().har_models)
    return StudyConfig(**{
        name: tuple(value) if isinstance(value, list) else value
        for name, value in fields.items()
    })


class TestStudyEndpoint:
    def test_twice_over_http_matches_cli_digest_and_caches(
        self, serve_handle, small_body
    ):
        # The acceptance criterion: an HTTP study digests byte-identical
        # to `repro study` at the same config (same StudyConfig, no
        # serve-side knob leaks into the cache key or fold)...
        expected = study_digest(Study.run(_config_of(small_body)))
        status, first = serve_handle.post("/v1/study", small_body)
        assert status == 200
        assert first["digest"] == expected
        assert first["cached"] is False
        assert first["schema"] == 1
        assert first["coverage"]["shards_quarantined"] == 0

        # ... and the warm repeat is served from cache, byte-identical.
        status, second = serve_handle.post("/v1/study", small_body)
        assert status == 200
        assert second["digest"] == expected
        assert second["cached"] is True
        assert second["datasets"] == first["datasets"]
        assert second["headline"] == first["headline"]

    def test_sse_stream_orders_events_and_reports_reuse(
        self, serve_handle, small_body
    ):
        cold = serve_handle.post_sse("/v1/study", small_body)
        names = [name for name, _ in cold]
        # Terminal result exactly once, at the end; accounting before it.
        assert names[-1] == "result"
        assert names.count("result") == 1
        assert names[-2] == "coverage"
        assert names[0] == "stage_start"
        # Progress events never precede the opening stage_start and
        # every shard_done carries the journal's stage + a verdict.
        cold_done = [payload for name, payload in cold if name == "shard_done"]
        for payload in cold_done:
            assert payload["stage"]
            assert payload["result"] in ("reused", "recomputed")
        assert any(
            payload["result"] == "recomputed" for payload in cold_done
        )

        warm = serve_handle.post_sse("/v1/study", small_body)
        warm_done = [payload for name, payload in warm if name == "shard_done"]
        # The warm stream reports every shard as reused, none recomputed.
        assert warm_done
        assert all(payload["result"] == "reused" for payload in warm_done)
        assert len(warm_done) == len(cold_done)
        result = warm[-1][1]
        assert result["cached"] is True
        assert result["digest"] == cold[-1][1]["digest"]

    def test_validation_failure_is_a_400_with_field_list(self, serve_handle):
        status, payload = serve_handle.post("/v1/study", {
            "schema": 9, "bogus": True, "n_sites": "x",
        })
        assert status == 400
        assert payload["error"] == "bad-request"
        assert {entry["field"] for entry in payload["fields"]} == {
            "schema", "bogus", "n_sites",
        }

    def test_unknown_path_is_a_404(self, serve_handle):
        status, payload = serve_handle.post("/v1/teapot", {"schema": 1})
        assert status == 404
        assert payload["error"] == "not-found"

    def test_bad_json_is_a_400(self, serve_handle):
        connection = http.client.HTTPConnection(
            *serve_handle.server.server_address[:2], timeout=30
        )
        connection.request("POST", "/v1/study", body=b"{nope")
        response = connection.getresponse()
        payload = json.loads(response.read())
        connection.close()
        assert response.status == 400
        assert payload["error"] == "bad-json"


class TestH3Profile:
    def test_unknown_h3_profile_is_400_config_error(self, serve_handle):
        status, payload = serve_handle.post("/v1/study", {
            "schema": 1, "n_sites": 40, "h3_profile": "warp",
        })
        assert status == 400
        assert payload["error"] == "bad-request"
        fields = {entry["field"]: entry["message"]
                  for entry in payload["fields"]}
        assert "(config)" in fields
        assert "warp" in fields["(config)"]

    def test_h3_profile_sweeps_as_an_axis(self, serve_handle, small_body):
        body = {
            "schema": 1,
            "base": {key: value for key, value in small_body.items()
                     if key != "schema"},
            "axes": {"h3_profile": ["none", "broad"]},
        }
        status, payload = serve_handle.post("/v1/sweep", body)
        assert status == 200
        assert payload["n_cells"] == 2
        digests = [cell["digest"] for cell in payload["cells"]]
        assert len(set(digests)) == 2  # the rollout moves the digest

    @pytest.mark.slow
    def test_sse_h3_broad_returns_pinned_golden_digest(self, serve_handle):
        # The golden-scale config over HTTP must hash to the pinned h3
        # digest, byte for byte — no serve-side knob leaks into the h3
        # code paths any more than the clean ones.
        events = serve_handle.post_sse("/v1/study", {
            "schema": 1,
            "seed": 7,
            "n_sites": 120,
            "dns_study_days": 0.25,
            "h3_profile": "broad",
        })
        names = [name for name, _ in events]
        assert names[-1] == "result"
        pinned = (_GOLDEN_DIR / "h3_digest.txt").read_text().strip()
        assert events[-1][1]["digest"] == pinned


class TestSweepEndpoint:
    def test_sweep_cells_digest_like_studies(self, serve_factory, small_body):
        handle = serve_factory()
        body = {
            "schema": 1,
            "base": {key: value for key, value in small_body.items()
                     if key != "schema"},
            "seeds": [7, 8],
        }
        status, payload = handle.post("/v1/sweep", body)
        assert status == 200
        assert payload["kind"] == "sweep"
        assert payload["n_cells"] == 2
        seeds = [cell["seed"] for cell in payload["cells"]]
        assert seeds == [7, 8]
        seed7 = payload["cells"][0]
        expected = study_digest(Study.run(_config_of(small_body)))
        assert seed7["digest"] == expected
        # Warm repeat: every cell served from cache.
        status, warm = handle.post("/v1/sweep", body)
        assert status == 200
        assert warm["cached"] is True
        assert [cell["digest"] for cell in warm["cells"]] == [
            cell["digest"] for cell in payload["cells"]
        ]


class TestAdmissionControl:
    def test_beyond_max_inflight_is_a_429(self, serve_factory, small_body):
        handle = serve_factory(max_inflight=2)
        # Occupy both slots deterministically, then knock.
        assert handle.service.admit()
        assert handle.service.admit()
        try:
            status, payload = handle.post("/v1/study", small_body)
            assert status == 429
            assert payload["error"] == "busy"
        finally:
            handle.service.release()
            handle.service.release()
        # Slots freed: the same request is admitted and runs.
        status, payload = handle.post("/v1/study", small_body)
        assert status == 200

    def test_draining_refuses_new_requests_with_503(
        self, serve_factory, small_body
    ):
        handle = serve_factory()
        handle.service.drain()
        status, payload = handle.post("/v1/study", small_body)
        assert status == 503
        assert payload["error"] == "draining"


class TestConcurrentClients:
    def test_four_clients_leave_cache_stats_exactly_consistent(
        self, serve_factory, small_body
    ):
        handle = serve_factory()
        seeds = [11, 12, 13, 14]
        bodies = {seed: {**small_body, "seed": seed} for seed in seeds}
        for seed in seeds:  # warm every config serially
            status, _ = handle.post("/v1/study", bodies[seed])
            assert status == 200

        # Measure the per-warm-run lookup footprint once...
        before = handle.service.cache.stats_snapshot()
        status, payload = handle.post("/v1/study", bodies[seeds[0]])
        assert status == 200 and payload["cached"] is True
        after_one = handle.service.cache.stats_snapshot()
        delta_one = {
            kind: {
                field: after_one[kind][field] - before.get(kind, {}).get(
                    field, 0
                )
                for field in ("hits", "misses", "writes", "errors")
            }
            for kind in after_one
        }
        assert any(
            counts["hits"] > 0 for counts in delta_one.values()
        )

        # ... then hit the server with 4 concurrent warm clients: the
        # lock-guarded counters must land on exactly 4x that footprint.
        results: dict[int, dict] = {}
        errors: list[BaseException] = []
        barrier = threading.Barrier(len(seeds))

        def client(seed: int) -> None:
            barrier.wait()
            try:
                status, payload = handle.post("/v1/study", bodies[seed])
                assert status == 200
                results[seed] = payload
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(seed,)) for seed in seeds
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert all(results[seed]["cached"] for seed in seeds)

        after_four = handle.service.cache.stats_snapshot()
        delta_four = {
            kind: {
                field: after_four[kind][field] - after_one[kind][field]
                for field in ("hits", "misses", "writes", "errors")
            }
            for kind in after_four
        }
        assert delta_four == {
            kind: {
                field: 4 * counts[field] for field in counts
            }
            for kind, counts in delta_one.items()
        }


class TestIntrospection:
    def test_healthz_reports_cache_and_inflight(
        self, serve_handle, small_body
    ):
        status, payload = serve_handle.get("/v1/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["inflight"] == 0
        assert payload["max_inflight"] == 4
        serve_handle.post("/v1/study", small_body)
        status, payload = serve_handle.get("/v1/healthz")
        assert payload["runs"] == 1
        assert payload["cache"]  # per-kind counters present
        assert all(
            set(counts) == {"hits", "misses", "writes", "errors"}
            for counts in payload["cache"].values()
        )

    def test_runs_listing_and_detail(self, serve_handle, small_body):
        serve_handle.post("/v1/study", small_body)
        status, listing = serve_handle.get("/v1/runs")
        assert status == 200
        assert len(listing["runs"]) == 1
        run = listing["runs"][0]
        assert run["status"] == "complete"
        assert run["seed"] == small_body["seed"]
        status, detail = serve_handle.get(f"/v1/runs/{run['run'][:10]}")
        assert status == 200
        assert detail["run"] == run["run"]
        assert "run-start" in detail["detail"]
        status, missing = serve_handle.get("/v1/runs/ffffffffffff")
        assert status == 404


class TestDrainMidStream:
    def test_streaming_client_gets_terminal_error_event(
        self, serve_factory, small_body
    ):
        # Drain while a cold study is mid-stream: the client must see a
        # typed terminal `error` event (with the resume hint), not a
        # dropped socket — and the interrupted journal stays resumable.
        handle = serve_factory()
        connection = http.client.HTTPConnection(
            *handle.server.server_address[:2], timeout=60
        )
        connection.request(
            "POST", "/v1/study", body=json.dumps(small_body).encode(),
            headers={"Accept": "text/event-stream"},
        )
        response = connection.getresponse()
        assert response.status == 200
        saw: list[str] = []
        while True:
            line = response.readline()
            if not line:
                break
            line = line.decode().strip()
            if line.startswith("event: "):
                saw.append(line[len("event: "):])
                if len(saw) == 1:
                    handle.service.drain()  # first event: start draining
        connection.close()
        assert saw[-1] == "error"
        assert "result" not in saw

        status, listing = handle.get("/v1/runs")
        assert [run["status"] for run in listing["runs"]] == ["resumable"]
