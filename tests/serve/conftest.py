"""Fixtures and HTTP helpers for the serve-layer suite.

Servers run in-process on an ephemeral port (``port=0``) with a tiny
study configuration, so every test is hermetic and fast; the SIGTERM
suite boots real subprocesses instead (see ``test_shutdown.py``).

Everything is exposed as fixtures (tests are not a package, so helper
imports from conftest are unavailable by design).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import StudyService, make_server


def _parse_sse(raw: str) -> list[tuple[str, dict]]:
    """Parse ``event:``/``data:`` frames into ``(event, payload)`` pairs."""
    events = []
    name = None
    for line in raw.splitlines():
        if line.startswith("event: "):
            name = line[len("event: "):]
        elif line.startswith("data: "):
            assert name is not None, "data frame before any event name"
            events.append((name, json.loads(line[len("data: "):])))
            name = None
    return events


class ServerHandle:
    """One running in-process server plus request helpers."""

    parse_sse = staticmethod(_parse_sse)

    def __init__(self, server, service: StudyService) -> None:
        self.server = server
        self.service = service
        host, port = server.server_address[:2]
        self.base = f"http://{host}:{port}"

    def get(self, path: str) -> tuple[int, dict]:
        try:
            with urllib.request.urlopen(self.base + path, timeout=60) as resp:
                return resp.status, json.load(resp)
        except urllib.error.HTTPError as error:
            return error.code, json.load(error)

    def post(self, path: str, body: dict,
             headers: dict | None = None) -> tuple[int, dict]:
        request = urllib.request.Request(
            self.base + path, data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        try:
            with urllib.request.urlopen(request, timeout=120) as resp:
                return resp.status, json.load(resp)
        except urllib.error.HTTPError as error:
            return error.code, json.load(error)

    def post_sse(self, path: str, body: dict) -> list[tuple[str, dict]]:
        """POST with SSE accept; returns the ``(event, payload)`` list."""
        request = urllib.request.Request(
            self.base + path, data=json.dumps(body).encode(),
            headers={"Accept": "text/event-stream"},
        )
        with urllib.request.urlopen(request, timeout=120) as resp:
            assert resp.headers["Content-Type"] == "text/event-stream"
            raw = resp.read().decode()
        return _parse_sse(raw)


@pytest.fixture()
def small_body() -> dict:
    """The request body every serve test studies: small and sharded,
    so warm reruns have real per-shard reuse to report."""
    return {
        "schema": 1,
        "seed": 7,
        "n_sites": 80,
        "dns_study_days": 0.25,
        "shards": 2,
    }


@pytest.fixture()
def serve_factory(tmp_path):
    """Factory for in-process servers; every handle is torn down."""
    handles: list[ServerHandle] = []

    def make(cache_dir=None, **kwargs) -> ServerHandle:
        defaults = {"executor": "thread", "jobs": 2, "max_inflight": 4}
        defaults.update(kwargs)
        directory = cache_dir if cache_dir is not None else (
            tmp_path / f"cache{len(handles)}"
        )
        service = StudyService(str(directory), **defaults)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        handle = ServerHandle(server, service)
        handles.append(handle)
        return handle

    yield make
    for handle in handles:
        handle.server.shutdown()
        handle.server.server_close()
        handle.service.close()


@pytest.fixture()
def serve_handle(serve_factory) -> ServerHandle:
    return serve_factory()
