"""Regenerate the HTTP/2 frame-codec golden byte-stream corpus.

Like the HPACK corpus, this pins the codec's exact wire output: every
refactor of ``repro.h2.frames`` must keep these bytes identical, and
decoding the pinned bytes must reproduce the same frame structure.  The
stream exercises every registered frame type (including the RFC 8336
ORIGIN frame), the flag bits the reproduction uses, boundary lengths
and an unknown-type frame (must-ignore carriage).

Usage (from the repo root)::

    PYTHONPATH=src python tests/golden/frames_corpus_gen.py

Only regenerate after a *deliberate* wire-format change — which would
be a protocol change, not a refactor.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.h2.frames import (
    DataFrame,
    Flags,
    Frame,
    GoawayFrame,
    HeadersFrame,
    OriginFrame,
    PingFrame,
    RstStreamFrame,
    SettingsFrame,
    UnknownFrame,
    WindowUpdateFrame,
    encode_frames,
)

CORPUS_PATH = Path(__file__).with_name("frames_corpus.json")


def build_frames() -> list[Frame]:
    """The canonical frame sequence (deterministic, hand-picked)."""
    return [
        SettingsFrame(pairs=((0x1, 4096), (0x3, 100), (0x4, 65_535))),
        SettingsFrame(flags=Flags.ACK),
        HeadersFrame(
            stream_id=1,
            flags=Flags.END_HEADERS | Flags.END_STREAM,
            header_block=bytes(range(32)),
        ),
        DataFrame(stream_id=1, data=b""),
        DataFrame(stream_id=3, flags=Flags.END_STREAM, data=b"\x00" * 17),
        WindowUpdateFrame(stream_id=0, increment=(1 << 31) - 1),
        WindowUpdateFrame(stream_id=3, increment=1),
        PingFrame(opaque=b"\x01\x02\x03\x04\x05\x06\x07\x08"),
        PingFrame(flags=Flags.ACK, opaque=b"\xff" * 8),
        RstStreamFrame(stream_id=5, error_code=0x8),  # CANCEL
        OriginFrame(
            origins=(
                "https://site000001.com",
                "https://cdn.site000001.com",
                "",
            )
        ),
        GoawayFrame(
            last_stream_id=5, error_code=0x0, debug_data=b"test-end"
        ),
        UnknownFrame(stream_id=7, raw_type=0xFA, raw_payload=b"\xde\xad"),
    ]


def describe(frame: Frame) -> dict:
    """A JSON-stable structural summary of one frame."""
    summary = {
        "type": type(frame).__name__,
        "stream_id": frame.stream_id,
        "flags": int(frame.flags),
        "payload_hex": frame.payload().hex(),
    }
    if isinstance(frame, UnknownFrame):
        summary["raw_type"] = frame.raw_type
    return summary


def build_corpus() -> dict:
    frames = build_frames()
    return {
        "comment": "pinned HTTP/2 frame codec wire bytes; see "
                   "frames_corpus_gen.py",
        "stream_hex": encode_frames(frames).hex(),
        "frames": [describe(frame) for frame in frames],
    }


def main() -> int:
    CORPUS_PATH.write_text(json.dumps(build_corpus(), indent=1) + "\n")
    print(f"wrote {CORPUS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
