"""Regenerate the HPACK golden byte-stream corpus.

The corpus pins the encoder's exact wire output: every optimization of
``repro.h2.hpack`` must keep these bytes identical (the decoder state
machines of real peers depend on them).  The header lists are built
deterministically from a fixed seed, exercise all three literal
representations, static full/name hits, dynamic-table growth, eviction
pressure (via small table sizes) and the never-index headers.

Usage (from the repo root)::

    PYTHONPATH=src python tests/golden/hpack_corpus_gen.py

The snapshot was captured from the pre-optimization encoder (PR 3) and
should only ever be regenerated if the wire format is *deliberately*
changed — which would be a protocol change, not an optimization.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

from repro.h2.hpack import HpackEncoder, STATIC_TABLE

CORPUS_PATH = Path(__file__).with_name("hpack_corpus.json")

_PSEUDO = [
    [(":method", "GET"), (":scheme", "https"), (":path", "/"),
     (":status", "200")],
    [(":method", "POST"), (":scheme", "https"), (":path", "/index.html"),
     (":status", "404")],
    [(":method", "GET"), (":scheme", "https"), (":path", "/app/main.js"),
     (":status", "304")],
]

_NAMES = [
    "accept", "accept-encoding", "accept-language", "cache-control",
    "content-type", "cookie", "etag", "referer", "user-agent", "x-request-id",
    "x-trace-span", "authorization", "set-cookie",
]

_VALUES = [
    "", "gzip, deflate", "text/html; charset=utf-8", "max-age=3600",
    "session=abc123", "W/\"5e1f\"", "https://site000001.com/",
    "Mozilla/5.0 (X11; Linux x86_64)", "no-store", "de-DE,de;q=0.9",
    "0123456789" * 7,  # long value: forces eviction on small tables
]


def build_corpus() -> list[dict]:
    """Deterministic connections: (max_table_size, header blocks)."""
    rng = random.Random(0xC0FFEE)
    connections: list[dict] = []
    for table_size in (4096, 4096, 512, 128, 0):
        blocks: list[list[tuple[str, str]]] = []
        for _ in range(rng.randint(6, 12)):
            block = list(rng.choice(_PSEUDO))
            block.append((":authority", f"site{rng.randint(1, 40):06d}.com"))
            for _ in range(rng.randint(2, 9)):
                block.append((rng.choice(_NAMES), rng.choice(_VALUES)))
            # Occasionally replay static-table pairs verbatim.
            for _ in range(rng.randint(0, 3)):
                block.append(rng.choice(STATIC_TABLE))
            blocks.append(block)
        connections.append({"max_table_size": table_size, "blocks": blocks})
    return connections


def encode_corpus(connections: list[dict]) -> list[dict]:
    out = []
    for connection in connections:
        encoder = HpackEncoder(max_table_size=connection["max_table_size"])
        encoded = [
            encoder.encode([tuple(pair) for pair in block]).hex()
            for block in connection["blocks"]
        ]
        out.append({
            "max_table_size": connection["max_table_size"],
            "blocks": connection["blocks"],
            "encoded": encoded,
            "bytes_emitted": encoder.bytes_emitted,
            "bytes_uncompressed": encoder.bytes_uncompressed,
        })
    return out


def main() -> None:
    corpus = encode_corpus(build_corpus())
    CORPUS_PATH.write_text(json.dumps(corpus, indent=1) + "\n")
    total = sum(len(block) for conn in corpus for block in conn["blocks"])
    print(f"wrote {CORPUS_PATH} ({len(corpus)} connections, {total} headers)")


if __name__ == "__main__":
    main()
