"""Regenerate the golden snapshots in this directory.

Run from the repository root after any INTENTIONAL change to study
output, then review the diff like any other code change:

    PYTHONPATH=src python tests/golden/regenerate.py

The snapshots pin the rendered headline statistics, every table
(1-12) and the study digest for ``StudyConfig(seed=7, n_sites=120)``.
``tests/analysis/test_golden.py`` diffs live output against them, so an
unintentional behaviour change in any pipeline layer — ecosystem
generation, crawling, classification, aggregation, rendering — fails
the suite with a readable diff instead of passing silently.
"""

from __future__ import annotations

from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent

#: The snapshot scale: big enough that every table has entries, small
#: enough to run inside the tier-1 suite.
GOLDEN_SEED = 7
GOLDEN_N_SITES = 120

#: The canonical fault scenario pinned alongside the clean goldens: the
#: combined profile, so every injection hook contributes to the digest.
FAULTED_PROFILE = "chaos"

#: The canonical evolution scenario: the combined policy, so every
#: churn axis contributes, across enough epochs to show drift while
#: keeping the tier-1 suite fast.
LONGITUDINAL_POLICY = "mixed"
LONGITUDINAL_EPOCHS = 2

#: The canonical HTTP/3 rollout scenario: the widest named adoption
#: profile, so origin fleets *and* third-party providers advertise h3
#: and every discovery/coalescing/attribution hook contributes.
H3_PROFILE = "broad"


def golden_config():
    from repro.analysis.study import StudyConfig

    return StudyConfig(seed=GOLDEN_SEED, n_sites=GOLDEN_N_SITES,
                       dns_study_days=0.25)


def faulted_config():
    """The faulted-golden configuration (seed=7, n=120, chaos)."""
    from dataclasses import replace

    return replace(golden_config(), fault_profile=FAULTED_PROFILE)


def h3_config():
    """The h3-golden configuration (seed=7, n=120, broad rollout)."""
    from dataclasses import replace

    return replace(golden_config(), h3_profile=H3_PROFILE)


def render_longitudinal_artifact(digests) -> str:
    """``longitudinal_digest.txt`` content from (epoch, digest) pairs.

    One ``epoch N <digest>`` line per epoch; line 0 must always equal
    ``digest.txt`` — epoch 0 under any policy is the pristine world.
    """
    return "".join(
        f"epoch {epoch} {digest}\n" for epoch, digest in digests
    )


def render_artifacts(study) -> dict[str, str]:
    """Every clean-study golden artefact name -> rendered text."""
    from repro.analysis import ALL_TABLES, headline, study_digest

    artifacts = {"headline.txt": headline(study).render() + "\n"}
    for name in sorted(ALL_TABLES, key=lambda n: int(n.removeprefix("table"))):
        artifacts[f"{name}.txt"] = ALL_TABLES[name](study).render() + "\n"
    artifacts["digest.txt"] = study_digest(study) + "\n"
    return artifacts


def render_faulted_artifacts(faulted_study) -> dict[str, str]:
    """The faulted-study goldens: the digest that regression-locks the
    resilience numbers the way Table 1 locks the clean ones."""
    from repro.analysis import study_digest

    return {"faulted_digest.txt": study_digest(faulted_study) + "\n"}


def render_h3_artifacts(h3_study) -> dict[str, str]:
    """The h3-study golden: pins the broad-rollout digest the way
    ``faulted_digest.txt`` pins the chaos scenario."""
    from repro.analysis import study_digest

    return {"h3_digest.txt": study_digest(h3_study) + "\n"}


def main() -> int:
    from repro.analysis.study import Study
    from repro.evolve import run_longitudinal

    study = Study.run(golden_config())
    artifacts = render_artifacts(study)
    artifacts.update(render_faulted_artifacts(Study.run(faulted_config())))
    artifacts.update(render_h3_artifacts(Study.run(h3_config())))
    longitudinal = run_longitudinal(
        golden_config(), policy=LONGITUDINAL_POLICY,
        epochs=LONGITUDINAL_EPOCHS,
    )
    artifacts["longitudinal_digest.txt"] = render_longitudinal_artifact(
        longitudinal.digests()
    )
    for name, text in artifacts.items():
        (GOLDEN_DIR / name).write_text(text)
        print(f"wrote {GOLDEN_DIR / name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
