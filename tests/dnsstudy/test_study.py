"""Tests for the DNS load-balancing study (Figure 3 substrate)."""

from __future__ import annotations

import pytest

from repro.dnsstudy.study import (
    DnsLoadBalancingStudy,
    DomainPair,
)


@pytest.fixture(scope="module")
def study_result(small_ecosystem):
    study = DnsLoadBalancingStudy(
        ecosystem=small_ecosystem,
        duration_s=6 * 3600.0,  # six sim-hours: 60 slots
    )
    return study.run()


class TestDnsStudy:
    def test_default_pairs_resolvable(self, small_ecosystem):
        study = DnsLoadBalancingStudy(ecosystem=small_ecosystem)
        assert study.pairs
        for pair in study.pairs:
            assert pair.domain in small_ecosystem.namespace
            assert pair.prev in small_ecosystem.namespace

    def test_uses_fourteen_resolvers(self, study_result):
        assert study_result.resolver_count == 14

    def test_every_slot_recorded(self, study_result):
        slots = int(6 * 3600.0 // study_result.interval_s)
        for timeline in study_result.timelines:
            assert len(timeline.points) == slots

    def test_overlap_counts_bounded(self, study_result):
        for timeline in study_result.timelines:
            for _, count in timeline.points:
                assert 0 <= count <= study_result.resolver_count

    def test_ga_gtm_never_overlap(self, study_result):
        """Disjoint pools: the paper's flagship never-overlapping pair."""
        timeline = next(
            t for t in study_result.timelines
            if t.pair.domain == "www.google-analytics.com"
        )
        assert timeline.classification() == "never"

    def test_gstatic_pair_fluctuates(self, study_result):
        """Shared pool with unsynchronized rotation: overlaps sometimes."""
        timeline = next(
            t for t in study_result.timelines
            if t.pair.domain == "www.gstatic.com"
        )
        assert timeline.classification() == "sometimes"

    def test_classification_buckets_partition(self, study_result):
        buckets = study_result.by_classification()
        total = sum(len(timelines) for timelines in buckets.values())
        assert total == len(study_result.timelines)

    def test_custom_pair(self, small_ecosystem):
        study = DnsLoadBalancingStudy(
            ecosystem=small_ecosystem,
            pairs=[DomainPair(domain="static.klaviyo.com",
                              prev="fast.a.klaviyo.com")],
            duration_s=3600.0,
        )
        result = study.run()
        # Single static IP shared by both: always overlapping.
        assert result.timelines[0].classification() == "always"
