"""The docs-check guarantees: no dead links, paths or flags in the docs.

Wraps ``tools/check_docs.py`` (which CI's ``docs-check`` job also runs
standalone) so documentation rot fails the tier-1 suite with the exact
file:line findings.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

_TOOLS_DIR = Path(__file__).resolve().parents[2] / "tools"


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", _TOOLS_DIR / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


def test_docs_cover_the_expected_files(check_docs):
    names = [path.name for path in check_docs.doc_files()]
    assert "README.md" in names
    assert "ARCHITECTURE.md" in names
    assert "SCENARIOS.md" in names


def test_cli_flag_harvest_sees_subcommands(check_docs):
    flags = check_docs.registered_cli_flags()
    # One flag per layer of the parser tree: root, study, evolve, bench.
    assert {"--seed", "--fault-profile", "--evolution-policy", "--policy",
            "--epochs", "--check-scale"} <= flags


def test_checker_flags_planted_rot(check_docs, tmp_path):
    planted = tmp_path / "planted.md"
    planted.write_text(
        "A [dead](no/such/file.md) link, a dead path "
        "`src/repro/never/was.py`, and a flag `--frobnicate-sites`.\n"
        "But `--seed` and [real](%s) are fine.\n"
        "```console\n"
        "$ python -m repro study --sites 60 --renamed-flag 3\n"
        "```\n"
        % (check_docs.REPO_ROOT / "README.md")
    )
    findings = check_docs.check_file(
        planted, check_docs.registered_cli_flags()
    )
    kinds = sorted(finding.split(": ")[1].split(" (")[0] for finding in findings)
    assert kinds == [
        "dead link", "dead path", "unknown CLI flag", "unknown CLI flag",
    ], findings
    assert any("--renamed-flag" in finding for finding in findings)


def test_repo_docs_are_clean(check_docs):
    findings = check_docs.check_all()
    assert not findings, "\n".join(findings)
