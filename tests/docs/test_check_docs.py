"""Fixture-driven tests for ``tools/check_docs.py`` itself.

``tests/docs/test_docs.py`` proves the *real* docs are clean; these
tests prove the checker would actually catch each class of rot — a
dead Markdown link, a dead backtick path, a dead CLI flag — against a
planted fixture docs tree, and that the healthy forms pass.
"""

from __future__ import annotations

import importlib.util
import sys
import textwrap
from pathlib import Path

import pytest

_TOOLS_DIR = Path(__file__).resolve().parents[2] / "tools"

_FLAGS = {"--seed", "--executor"}


@pytest.fixture()
def check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs_under_test", _TOOLS_DIR / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_docs_under_test"] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop("check_docs_under_test", None)


@pytest.fixture()
def fake_repo(tmp_path, check_docs, monkeypatch):
    """A throwaway repo root the checker is pointed at."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "src" / "repro").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "real.py").write_text("x = 1\n")
    (tmp_path / "docs" / "REAL.md").write_text("# real\n")
    monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
    return tmp_path


def _write(root: Path, rel: str, body: str) -> Path:
    path = root / rel
    path.write_text(textwrap.dedent(body))
    return path


class TestEachRotClassIsCaught:
    def test_dead_link(self, fake_repo, check_docs):
        path = _write(fake_repo, "README.md", """\
            See [the design](docs/GONE.md) for details.
        """)
        (finding,) = check_docs.check_file(path, _FLAGS)
        assert "dead link" in finding
        assert "docs/GONE.md" in finding
        assert "README.md:1" in finding

    def test_dead_path(self, fake_repo, check_docs):
        path = _write(fake_repo, "README.md", """\
            The classifier lives in `src/repro/vanished.py`.
        """)
        (finding,) = check_docs.check_file(path, _FLAGS)
        assert "dead path" in finding
        assert "src/repro/vanished.py" in finding

    def test_dead_cli_flag_in_console_block(self, fake_repo, check_docs):
        path = _write(fake_repo, "README.md", """\
            Run it:

            ```console
            $ repro study --retired-flag 7
            ```
        """)
        (finding,) = check_docs.check_file(path, _FLAGS)
        assert "unknown CLI flag" in finding
        assert "--retired-flag" in finding

    def test_dead_cli_flag_in_backticks(self, fake_repo, check_docs):
        path = _write(fake_repo, "README.md", """\
            Tune it with `--retired-flag`.
        """)
        (finding,) = check_docs.check_file(path, _FLAGS)
        assert "--retired-flag" in finding


class TestHealthyFormsPass:
    def test_clean_doc_has_no_findings(self, fake_repo, check_docs):
        path = _write(fake_repo, "README.md", """\
            See [the design](docs/REAL.md); code in `src/repro/real.py`.

            ```console
            $ repro study --seed 7 --executor thread
            ```

            External [link](https://example.org/x) is never fetched.
        """)
        assert check_docs.check_file(path, _FLAGS) == []

    def test_allowlisted_foreign_flags_pass(self, fake_repo, check_docs):
        path = _write(fake_repo, "README.md", """\
            ```console
            $ pytest benchmarks/ --benchmark-only
            ```
        """)
        assert check_docs.check_file(path, _FLAGS) == []

    def test_placeholder_paths_are_not_flagged(self, fake_repo, check_docs):
        path = _write(fake_repo, "README.md", """\
            Artefacts land in `src/repro/<stage>/outputs` and
            `tests/golden/*.txt`.
        """)
        assert check_docs.check_file(path, _FLAGS) == []


class TestDriver:
    def test_doc_globs_drive_discovery(self, fake_repo, check_docs,
                                       monkeypatch):
        _write(fake_repo, "README.md", "ok\n")
        _write(fake_repo, "docs/NOTES.md", "see `src/repro/vanished.py`\n")
        monkeypatch.setattr(
            check_docs, "DOC_GLOBS", ("README.md", "docs/*.md")
        )
        files = check_docs.doc_files()
        assert [f.name for f in files] == ["README.md", "NOTES.md", "REAL.md"]

    def test_registered_cli_flags_sees_subcommands(self, check_docs):
        flags = check_docs.registered_cli_flags()
        # One shared runtime flag, one lint-only flag: harvesting
        # recursed into subparsers.
        assert "--seed" in flags
        assert "--write-baseline" in flags
