"""Tests for resources and page trees."""

from __future__ import annotations

import pytest

from repro.web.resources import RequestMode, Resource, ResourceType


class TestResource:
    def test_url(self):
        resource = Resource(domain="Example.COM", path="/a.js",
                            rtype=ResourceType.SCRIPT)
        assert resource.url == "https://example.com/a.js"

    def test_default_modes(self):
        assert Resource(domain="x.com", path="/", rtype=ResourceType.SCRIPT).mode \
            is RequestMode.NO_CORS
        assert Resource(domain="x.com", path="/", rtype=ResourceType.FONT).mode \
            is RequestMode.CORS_ANON
        assert Resource(domain="x.com", path="/", rtype=ResourceType.DOCUMENT).mode \
            is RequestMode.NAVIGATE
        assert Resource(domain="x.com", path="/", rtype=ResourceType.XHR).mode \
            is RequestMode.CORS_ANON

    def test_explicit_mode_kept(self):
        resource = Resource(domain="x.com", path="/", rtype=ResourceType.XHR,
                            mode=RequestMode.CORS_CREDENTIALED)
        assert resource.mode is RequestMode.CORS_CREDENTIALED

    def test_invalid_domain_rejected(self):
        with pytest.raises(ValueError):
            Resource(domain="bad_host.com", path="/", rtype=ResourceType.IMAGE)

    def test_path_must_be_absolute(self):
        with pytest.raises(ValueError):
            Resource(domain="x.com", path="a.js", rtype=ResourceType.SCRIPT)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Resource(domain="x.com", path="/", rtype=ResourceType.IMAGE, size=-1)

    def test_walk_depth_first(self):
        leaf = Resource(domain="c.com", path="/3", rtype=ResourceType.BEACON)
        mid = Resource(domain="b.com", path="/2", rtype=ResourceType.SCRIPT,
                       children=[leaf])
        root = Resource(domain="a.com", path="/1", rtype=ResourceType.DOCUMENT,
                        children=[mid])
        assert [r.path for r in root.walk()] == ["/1", "/2", "/3"]
        assert root.count() == 3
        assert root.domains() == {"a.com", "b.com", "c.com"}
