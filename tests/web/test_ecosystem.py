"""Tests for the ecosystem generator."""

from __future__ import annotations

from repro.web.ecosystem import Ecosystem, EcosystemConfig


class TestGenerate:
    def test_deterministic(self):
        a = Ecosystem.generate(EcosystemConfig(seed=3, n_sites=30))
        b = Ecosystem.generate(EcosystemConfig(seed=3, n_sites=30))
        assert [s.domain for s in a.websites] == [s.domain for s in b.websites]
        assert [s.embedded_services for s in a.websites] == [
            s.embedded_services for s in b.websites
        ]
        assert a.namespace.names() == b.namespace.names()

    def test_seed_changes_world(self):
        a = Ecosystem.generate(EcosystemConfig(seed=3, n_sites=30))
        b = Ecosystem.generate(EcosystemConfig(seed=4, n_sites=30))
        assert [s.embedded_services for s in a.websites] != [
            s.embedded_services for s in b.websites
        ]

    def test_every_resource_domain_resolvable_and_served(self, small_ecosystem):
        resolver = small_ecosystem.make_resolver("check")
        for site in small_ecosystem.websites[:30]:
            for resource in site.document.walk():
                answer = resolver.resolve(resource.domain, now=0.0)
                for ip in answer.ips:
                    assert ip in small_ecosystem.servers

    def test_geo_rewrite_targets_exist(self, small_ecosystem):
        rewrites = small_ecosystem.geo_rewrites("DE")
        assert rewrites["www.google.com"] == "www.google.de"
        resolver = small_ecosystem.make_resolver("geo")
        for target in rewrites.values():
            answer = resolver.resolve(target, now=0.0)
            server = small_ecosystem.server_for_ip(answer.primary_ip)
            assert server.serves(target)

    def test_unknown_country_no_rewrites(self, small_ecosystem):
        assert small_ecosystem.geo_rewrites("US") == {}

    def test_alexa_list_ordered_by_rank(self, small_ecosystem):
        top = small_ecosystem.alexa_list(10)
        assert len(top) == 10
        ranks = [small_ecosystem.website(d).rank for d in top]
        assert ranks == sorted(ranks)

    def test_httparchive_sample_deterministic_subset(self, small_ecosystem):
        sample = small_ecosystem.httparchive_sample(0.5, seed=1)
        again = small_ecosystem.httparchive_sample(0.5, seed=1)
        assert sample == again
        assert 0 < len(sample) < len(small_ecosystem.websites)

    def test_popular_sites_embed_more(self):
        eco = Ecosystem.generate(EcosystemConfig(seed=9, n_sites=400))
        top = eco.websites[:100]
        bottom = eco.websites[-100:]
        top_mean = sum(len(s.embedded_services) for s in top) / len(top)
        bottom_mean = sum(len(s.embedded_services) for s in bottom) / len(bottom)
        assert top_mean > bottom_mean
