"""Tests for origin servers."""

from __future__ import annotations

import pytest

from repro.h2.connection import HTTP_MISDIRECTED_REQUEST
from repro.tls.certificate import Certificate
from repro.web.server import OriginServer, build_fleet


def _cert(serial, sans):
    return Certificate(serial=serial, subject=sans[0].lstrip("*."),
                       sans=tuple(sans), issuer_org="CA")


@pytest.fixture()
def sni_server():
    cert_a = _cert(1, ["static.example.com"])
    cert_b = _cert(2, ["fast.example.com"])
    return OriginServer(
        ip="10.0.0.1",
        name="sni-host",
        cert_map={"static.example.com": cert_a, "fast.example.com": cert_b},
        default_certificate=cert_a,
    )


class TestSniSelection:
    def test_exact_match(self, sni_server):
        assert sni_server.certificate_for("fast.example.com").serial == 2

    def test_wildcard_match(self):
        cert = _cert(1, ["*.example.com"])
        server = OriginServer(ip="10.0.0.1", name="w",
                              cert_map={"www.example.com": cert},
                              default_certificate=cert)
        assert server.certificate_for("img.example.com") is cert

    def test_unknown_sni_gets_default(self, sni_server):
        assert sni_server.certificate_for("unknown.example.org").serial == 1


class TestServes:
    def test_serves_configured_domains(self, sni_server):
        assert sni_server.serves("static.example.com")
        assert sni_server.serves("fast.example.com")
        assert not sni_server.serves("other.example.com")

    def test_excluded_domain_not_served(self):
        cert = _cert(1, ["*.example.com"])
        server = OriginServer(
            ip="10.0.0.1", name="x",
            cert_map={"a.example.com": cert},
            default_certificate=cert,
            excluded_domains={"b.example.com"},
        )
        # Certificate covers b., but the operator has not configured it.
        assert server.serves("a.example.com")
        assert not server.serves("b.example.com")


class TestHandleRequest:
    def test_success(self, sni_server):
        status, headers, size = sni_server.handle_request(
            "static.example.com", "/x", method="GET", credentials=False
        )
        assert status == 200
        assert size > 0
        assert dict(headers)["content-length"] == str(size)

    def test_misdirected(self, sni_server):
        status, _, size = sni_server.handle_request(
            "other.example.org", "/x", method="GET", credentials=False
        )
        assert status == HTTP_MISDIRECTED_REQUEST
        assert size == 0
        assert sni_server.misdirected_responses == 1

    def test_deterministic_body_size(self, sni_server):
        sizes = {
            sni_server.handle_request("static.example.com", "/same",
                                      method="GET", credentials=False)[2]
            for _ in range(3)
        }
        assert len(sizes) == 1

    def test_credentialed_get_sets_cookie(self, sni_server):
        _, headers, _ = sni_server.handle_request(
            "static.example.com", "/", method="GET", credentials=True
        )
        assert "set-cookie" in dict(headers)


class TestBuildFleet:
    def test_one_server_per_ip(self):
        cert = _cert(1, ["*.example.com"])
        fleet = build_fleet(["10.0.0.1", "10.0.0.2"], name="f",
                            cert_map={"www.example.com": cert})
        assert [server.ip for server in fleet] == ["10.0.0.1", "10.0.0.2"]
        assert all(server.serves("www.example.com") for server in fleet)

    def test_requires_certificates(self):
        with pytest.raises(ValueError):
            build_fleet(["10.0.0.1"], name="f", cert_map={})

    def test_fleet_servers_independent(self):
        cert = _cert(1, ["x.example.com"])
        fleet = build_fleet(["10.0.0.1", "10.0.0.2"], name="f",
                            cert_map={"x.example.com": cert},
                            excluded_domains={"y.example.com"})
        fleet[0].excluded_domains.add("z.example.com")
        assert "z.example.com" not in fleet[1].excluded_domains


class TestSharedResponseCacheUnderThreads:
    """The response memo survived `repro lint`'s shared-state rule by
    becoming a module-level ``lru_cache``; hammer it the way the thread
    executor does — many tasks, one shared endpoint — and require the
    answers to be byte-identical to serial ones."""

    def test_concurrent_requests_match_serial(self, sni_server):
        import threading

        from repro.web.server import _response

        _response.cache_clear()
        requests = [
            ("static.example.com", f"/asset/{i % 37}", i % 3 == 0)
            for i in range(600)
        ]
        serial = [
            sni_server.handle_request(
                domain, path, method="GET", credentials=credentialed
            )
            for domain, path, credentialed in requests
        ]

        _response.cache_clear()
        results: list = [None] * len(requests)
        start = threading.Barrier(8)

        def worker(worker_id: int) -> None:
            start.wait()
            for index in range(worker_id, len(requests), 8):
                domain, path, credentialed = requests[index]
                results[index] = sni_server.handle_request(
                    domain, path, method="GET", credentials=credentialed
                )

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert results == serial

    def test_cache_shares_one_response_object_per_shape(self, sni_server):
        first = sni_server.handle_request(
            "static.example.com", "/shared", method="GET", credentials=False
        )
        again = sni_server.handle_request(
            "static.example.com", "/shared", method="GET", credentials=False
        )
        assert again is first
