"""Tests for first-party site generation."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.dns.zone import DnsNamespace
from repro.net.address_space import PrefixAllocator
from repro.net.asdb import AsDatabase
from repro.tls.issuers import IssuerRegistry
from repro.web.hosting import ProviderDirectory
from repro.web.website import ShardingStyle, WebsiteFactory


@pytest.fixture()
def factory():
    allocator = PrefixAllocator()
    asdb = AsDatabase()
    providers = ProviderDirectory.with_well_known(allocator, asdb)
    return WebsiteFactory(
        providers=providers,
        namespace=DnsNamespace(),
        issuers=IssuerRegistry(),
        servers={},
        rng=random.Random(5),
    )


class TestBuildSite:
    def test_document_is_first(self, factory):
        site = factory.build_site(rank=1)
        assert site.document.path == "/"
        assert site.document.domain == site.domain
        assert site.resource_count() >= 4

    def test_site_resolvable_and_served(self, factory):
        site = factory.build_site(rank=1)
        answer = factory.namespace.authoritative_answer(
            site.domain, now=0, resolver_id="r"
        )
        server = factory.servers[answer.primary_ip]
        assert server.serves(site.domain)

    def test_shards_resolvable(self, factory):
        for rank in range(1, 40):
            site = factory.build_site(rank)
            for resource in site.document.walk():
                assert resource.domain in factory.namespace

    def test_separate_cert_shards_get_disjoint_certs(self, factory):
        for rank in range(1, 200):
            site = factory.build_site(rank)
            if site.sharding is not ShardingStyle.SEPARATE_CERTS:
                continue
            shard_domains = sorted(site.document.domains() - {site.domain})
            shard = next(
                (d for d in shard_domains if d.endswith(site.domain)), None
            )
            if shard is None:
                continue
            answer = factory.namespace.authoritative_answer(
                site.domain, now=0, resolver_id="r"
            )
            server = factory.servers[answer.primary_ip]
            root_cert = server.certificate_for(site.domain)
            shard_cert = server.certificate_for(shard)
            assert root_cert is not shard_cert
            assert not root_cert.covers(shard)
            return
        pytest.fail("no SEPARATE_CERTS site with shard resources generated")

    def test_diff_ip_shards_get_distinct_ips(self, factory):
        for rank in range(1, 200):
            site = factory.build_site(rank)
            if site.sharding is not ShardingStyle.SAME_CERT_DIFF_IP:
                continue
            own = [d for d in site.document.domains() if d.endswith(site.domain)]
            ips = {
                factory.namespace.authoritative_answer(
                    d, now=0, resolver_id="r"
                ).primary_ip
                for d in own
            }
            if len(own) > 1:
                assert len(ips) == len(own)
                return
        pytest.fail("no SAME_CERT_DIFF_IP site generated")

    def test_h1_share_roughly_respected(self, factory):
        sites = [factory.build_site(rank) for rank in range(1, 301)]
        h1 = sum(1 for site in sites if not site.supports_h2)
        assert 4 <= h1 <= 40  # ~6 % of 300, generous bounds

    def test_style_distribution(self, factory):
        sites = [factory.build_site(rank) for rank in range(1, 501)]
        styles = Counter(site.sharding for site in sites)
        assert styles[ShardingStyle.NONE] > styles[ShardingStyle.SEPARATE_CERTS]
        assert styles[ShardingStyle.SAME_CERT_SAME_IP] > 0
        assert styles[ShardingStyle.SAME_CERT_DIFF_IP] > 0

    def test_merged_certificates_ablation(self):
        allocator = PrefixAllocator()
        asdb = AsDatabase()
        providers = ProviderDirectory.with_well_known(allocator, asdb)
        factory = WebsiteFactory(
            providers=providers,
            namespace=DnsNamespace(),
            issuers=IssuerRegistry(),
            servers={},
            rng=random.Random(5),
            merged_certificates=True,
        )
        for rank in range(1, 200):
            site = factory.build_site(rank)
            if site.sharding is not ShardingStyle.SEPARATE_CERTS:
                continue
            answer = factory.namespace.authoritative_answer(
                site.domain, now=0, resolver_id="r"
            )
            server = factory.servers[answer.primary_ip]
            root_cert = server.certificate_for(site.domain)
            for domain in site.document.domains():
                if domain.endswith(site.domain):
                    assert root_cert.covers(domain)
            return
        pytest.fail("no SEPARATE_CERTS site generated")
