"""Tests for hosting providers."""

from __future__ import annotations

from repro.net.address_space import PrefixAllocator, same_slash24
from repro.net.asdb import AsDatabase
from repro.web.hosting import ProviderDirectory, WELL_KNOWN_PROVIDERS


def _directory():
    allocator = PrefixAllocator()
    asdb = AsDatabase()
    return ProviderDirectory.with_well_known(allocator, asdb), asdb


class TestProviderDirectory:
    def test_well_known_registered(self):
        directory, asdb = _directory()
        assert len(directory.providers) == len(WELL_KNOWN_PROVIDERS)
        assert asdb.get(15169).name == "GOOGLE"
        assert asdb.get(32934).name == "FACEBOOK"

    def test_paper_table6_ases_present(self):
        directory, _ = _directory()
        for name in ("GOOGLE", "AMAZON-02", "FACEBOOK", "AUTOMATTIC",
                     "CLOUDFLARENET", "FASTLY", "AMAZON-AES", "EDGECAST",
                     "AKAMAI-ASN1", "AKAMAI-AS"):
            assert name in directory.providers

    def test_addresses_share_slash24(self):
        directory, _ = _directory()
        ips = directory["GOOGLE"].addresses(8)
        assert len(set(ips)) == 8
        assert all(same_slash24(ips[0], ip) for ip in ips)

    def test_addresses_attributed_to_as(self):
        directory, asdb = _directory()
        ips = directory["FACEBOOK"].addresses(3)
        for ip in ips:
            assert asdb.lookup(ip).name == "FACEBOOK"

    def test_separate_calls_get_separate_slash24(self):
        directory, _ = _directory()
        first = directory["AMAZON-02"].addresses(2)
        second = directory["AMAZON-02"].addresses(2)
        assert not same_slash24(first[0], second[0])

    def test_generic_hosters_nonempty(self):
        directory, _ = _directory()
        hosters = directory.generic_hosters()
        assert len(hosters) >= 5
        assert all(h.system.asn for h in hosters)
