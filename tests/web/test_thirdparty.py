"""Tests for the third-party catalogue (against the shared ecosystem)."""

from __future__ import annotations

import random

import pytest

from repro.web.ecosystem import Ecosystem
from repro.web.resources import RequestMode
from repro.web.thirdparty import ThirdPartyService


def _service(eco: Ecosystem, key: str) -> ThirdPartyService:
    for service in eco.services:
        if service.key == key:
            return service
    raise KeyError(key)


class TestGoogleAnalytics:
    def test_pools_disjoint_but_interchangeable(self, small_ecosystem):
        resolver = small_ecosystem.make_resolver("t")
        ga = resolver.resolve("www.google-analytics.com", now=0.0)
        gtm = resolver.resolve("www.googletagmanager.com", now=0.0)
        assert not set(ga.ips) & set(gtm.ips)
        # Any GTM endpoint can serve GA content: the connection was
        # avoidable, which is exactly the paper's IP-cause finding.
        server = small_ecosystem.server_for_ip(gtm.primary_ip)
        assert server.serves("www.google-analytics.com")

    def test_certificates_cover_both_domains(self, small_ecosystem):
        resolver = small_ecosystem.make_resolver("t")
        gtm_ip = resolver.resolve("www.googletagmanager.com", now=0.0).primary_ip
        cert = small_ecosystem.server_for_ip(gtm_ip).certificate_for(
            "www.googletagmanager.com"
        )
        assert cert.covers("www.google-analytics.com")

    def test_embed_chain(self, small_ecosystem):
        service = _service(small_ecosystem, "google-analytics")
        resources = service.embed(random.Random(1))
        domains = {r.domain for root in resources for r in root.walk()}
        assert "www.google-analytics.com" in domains

    def test_beacon_is_anonymous(self, small_ecosystem):
        service = _service(small_ecosystem, "google-analytics")
        for seed in range(10):
            for root in service.embed(random.Random(seed)):
                for resource in root.walk():
                    if resource.path == "/j/collect":
                        assert resource.mode is RequestMode.CORS_ANON
                        return
        pytest.fail("no beacon generated in 10 seeds")


class TestKlaviyo:
    def test_same_ip_disjoint_lets_encrypt_certs(self, small_ecosystem):
        resolver = small_ecosystem.make_resolver("t")
        static = resolver.resolve("static.klaviyo.com", now=0.0)
        fast = resolver.resolve("fast.a.klaviyo.com", now=0.0)
        assert static.ips == fast.ips  # single shared endpoint
        server = small_ecosystem.server_for_ip(static.primary_ip)
        static_cert = server.certificate_for("static.klaviyo.com")
        fast_cert = server.certificate_for("fast.a.klaviyo.com")
        assert static_cert.issuer_org == "Let's Encrypt"
        assert fast_cert.issuer_org == "Let's Encrypt"
        assert not static_cert.covers("fast.a.klaviyo.com")
        assert not fast_cert.covers("static.klaviyo.com")


class TestGoogleAds:
    def test_adservice_cert_disjoint_from_big_cert(self, small_ecosystem):
        resolver = small_ecosystem.make_resolver("t")
        ip = resolver.resolve("pagead2.googlesyndication.com", now=0.0).primary_ip
        server = small_ecosystem.server_for_ip(ip)
        big = server.certificate_for("pagead2.googlesyndication.com")
        adservice = server.certificate_for("adservice.google.com")
        assert big.covers("googleads.g.doubleclick.net")
        assert big.covers("partner.googleadservices.com")
        assert not big.covers("adservice.google.com")
        assert not adservice.covers("pagead2.googlesyndication.com")

    def test_shared_pool(self, small_ecosystem):
        resolver = small_ecosystem.make_resolver("t")
        pools = set()
        for domain in ("pagead2.googlesyndication.com",
                       "googleads.g.doubleclick.net",
                       "adservice.google.com"):
            pools.update(resolver.resolve(domain, now=0.0).ips)
        # All in Google's ads /24.
        assert len({ip.rsplit(".", 1)[0] for ip in pools}) == 1


class TestFacebook:
    def test_asymmetric_serving(self, small_ecosystem):
        resolver = small_ecosystem.make_resolver("t")
        cfb_ip = resolver.resolve("connect.facebook.net", now=0.0).primary_ip
        wfb_ip = resolver.resolve("www.facebook.com", now=0.0).primary_ip
        cfb_server = small_ecosystem.server_for_ip(cfb_ip)
        wfb_server = small_ecosystem.server_for_ip(wfb_ip)
        # "The script from CFB can also be requested on WFB's IP,
        # however not vice-versa."
        assert wfb_server.serves("connect.facebook.net")
        assert not cfb_server.serves("www.facebook.com")


class TestMegaCdn:
    def test_api_domain_answers_421_when_coalesced(self, small_ecosystem):
        resolver = small_ecosystem.make_resolver("t")
        ip = resolver.resolve("assets.megacdn.net", now=0.0).primary_ip
        server = small_ecosystem.server_for_ip(ip)
        assert server.certificate_for("assets.megacdn.net").covers(
            "api.megacdn.net"
        )
        status, _, _ = server.handle_request(
            "api.megacdn.net", "/v1/config", method="GET", credentials=True
        )
        assert status == 421


class TestAdoptionModel:
    def test_rank_boost_monotonic(self):
        service = ThirdPartyService(
            key="t", adoption=0.4, embed=lambda rng: [], domains=("x.com",),
            rank_boost=2.0, tail_factor=0.5,
        )
        values = [service.effective_adoption(p / 10) for p in range(11)]
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert values[0] == pytest.approx(0.8)
        assert values[-1] == pytest.approx(0.2)

    def test_probability_clamped(self):
        service = ThirdPartyService(
            key="t", adoption=0.9, embed=lambda rng: [], domains=("x.com",),
            rank_boost=5.0,
        )
        assert service.effective_adoption(0.0) == 1.0

    def test_catalog_has_all_named_services(self, small_ecosystem):
        keys = {service.key for service in small_ecosystem.services}
        for expected in ("google-analytics", "facebook", "google-ads",
                         "google-platform", "google-fonts", "hotjar",
                         "wordpress", "klaviyo", "squarespace", "unruly",
                         "reddit-pixel", "megacdn", "youtube"):
            assert expected in keys

    def test_tail_services_generated(self, small_ecosystem):
        tail = [s for s in small_ecosystem.services if s.key.startswith("tail-")]
        assert len(tail) == small_ecosystem.config.tail_services
