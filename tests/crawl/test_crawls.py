"""Tests for the crawl harnesses."""

from __future__ import annotations

import pytest

from repro.core.session import LifetimeModel
from repro.crawl.alexa import AlexaCrawler
from repro.crawl.classify import classify_dataset
from repro.crawl.httparchive import HttpArchiveCrawler
from repro.crawl.overlap import overlap_datasets, overlap_sites
from repro.har.writer import HarNoiseConfig


@pytest.fixture(scope="module")
def ha_corpus(small_ecosystem):
    crawler = HttpArchiveCrawler(ecosystem=small_ecosystem, seed=11)
    domains = small_ecosystem.httparchive_sample(0.6, seed=1)[:40]
    return crawler.crawl(domains)


@pytest.fixture(scope="module")
def alexa_runs(small_ecosystem):
    crawler = AlexaCrawler(ecosystem=small_ecosystem, seed=23)
    domains = small_ecosystem.alexa_list(40)
    run = crawler.run(domains, run_name="t-fetch")
    patched = crawler.run(domains, run_name="t-nofetch",
                          ignore_privacy_mode=True, run_offset=100_000.0)
    return run, patched


class TestHttpArchiveCrawler:
    def test_one_har_per_reachable_site(self, ha_corpus):
        assert len(ha_corpus.hars) + len(ha_corpus.unreachable) == 40
        assert len(ha_corpus.hars) > 30

    def test_har_titles_match_domains(self, ha_corpus):
        for domain, har in ha_corpus.hars.items():
            assert domain in har.page.title

    def test_classification_models_ordered(self, ha_corpus, small_ecosystem):
        endless = ha_corpus.classify(model=LifetimeModel.ENDLESS,
                                     asdb=small_ecosystem.asdb)
        immediate = ha_corpus.classify(model=LifetimeModel.IMMEDIATE,
                                       asdb=small_ecosystem.asdb)
        assert endless.report.redundant_connections >= (
            immediate.report.redundant_connections
        )
        assert endless.report.h2_connections == immediate.report.h2_connections

    def test_noise_is_filtered_and_counted(self, small_ecosystem):
        crawler = HttpArchiveCrawler(
            ecosystem=small_ecosystem, seed=12,
            noise=HarNoiseConfig(h3_socket_zero=0.2),
        )
        corpus = crawler.crawl(small_ecosystem.alexa_list(10))
        dataset = corpus.classify(model=LifetimeModel.ENDLESS)
        assert dataset.filter_stats.socket_id_zero > 0

    def test_deterministic(self, small_ecosystem):
        domains = small_ecosystem.alexa_list(8)
        a = HttpArchiveCrawler(ecosystem=small_ecosystem, seed=5).crawl(domains)
        b = HttpArchiveCrawler(ecosystem=small_ecosystem, seed=5).crawl(domains)
        for domain in a.hars:
            assert a.hars[domain].to_dict() == b.hars[domain].to_dict()


class TestAlexaCrawler:
    def test_netlog_records_have_actual_lifetimes(self, alexa_runs):
        run, _ = alexa_runs
        some_records = [
            record
            for measurement in run.measurements.values()
            for record in measurement.records
        ]
        assert some_records
        assert all(record.end is not None for record in some_records)

    def test_runs_share_unreachable_sites_mostly(self, alexa_runs):
        run, patched = alexa_runs
        down_a = {d for d, m in run.measurements.items() if m.unreachable}
        down_b = {d for d, m in patched.measurements.items() if m.unreachable}
        # Permanent failures dominate, so the sets overlap heavily.
        assert down_a & down_b == down_a or down_a & down_b == down_b or (
            len(down_a & down_b) >= max(0, min(len(down_a), len(down_b)) - 2)
        )

    def test_patched_run_has_no_privacy_mode_sessions(self, alexa_runs):
        _, patched = alexa_runs
        for measurement in patched.measurements.values():
            for record in measurement.records:
                assert record.privacy_mode is not True

    def test_patched_run_removes_cred(self, alexa_runs, small_ecosystem):
        from repro.core.causes import Cause

        run, patched = alexa_runs
        common = sorted(set(run.reachable_sites) & set(patched.reachable_sites))
        with_fetch = run.classify(model=LifetimeModel.ACTUAL, sites=common)
        without = patched.classify(model=LifetimeModel.ACTUAL, sites=common)
        assert without.report.by_cause[Cause.CRED].connections == 0
        assert (
            without.report.redundant_connections
            <= with_fetch.report.redundant_connections
        )

    def test_classify_respects_site_subset(self, alexa_runs):
        run, _ = alexa_runs
        subset = run.reachable_sites[:5]
        dataset = run.classify(model=LifetimeModel.ACTUAL, sites=subset)
        assert set(dataset.classifications) == set(subset)


class TestOverlap:
    def test_overlap_sites_intersection(self, alexa_runs):
        run, patched = alexa_runs
        a = run.classify(model=LifetimeModel.ACTUAL, name="a")
        b = patched.classify(model=LifetimeModel.ACTUAL, name="b",
                             sites=run.reachable_sites[:10])
        sites = overlap_sites(a, b)
        assert sites == set(b.classifications) & set(a.classifications)

    def test_overlap_datasets_reaggregates(self, alexa_runs):
        run, patched = alexa_runs
        a = run.classify(model=LifetimeModel.ACTUAL, name="a")
        b = patched.classify(model=LifetimeModel.ACTUAL, name="b")
        oa, ob = overlap_datasets(a, b)
        assert set(oa.classifications) == set(ob.classifications)
        assert oa.report.h2_sites == len(oa.classifications)
        assert oa.name == "a-overlap"

    def test_empty_overlap(self):
        assert overlap_sites() == set()


class TestClassifyDataset:
    def test_aggregates_all_sites(self, alexa_runs, small_ecosystem):
        run, _ = alexa_runs
        site_records = {
            domain: measurement.records
            for domain, measurement in run.measurements.items()
            if not measurement.unreachable
        }
        dataset = classify_dataset("x", site_records,
                                   model=LifetimeModel.ACTUAL,
                                   asdb=small_ecosystem.asdb)
        assert dataset.report.total_sites == len(site_records)
        assert dataset.attribution.ip_as_connections  # AS attribution ran
