"""Properties of the per-shard :class:`DatasetSummary` fold."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.causes import Cause
from repro.sweep import DatasetSummary, summarize_dataset

_CAUSES = tuple(cause.value for cause in Cause)


def _summary(name, h2_sites, h2_connections, redundant_sites,
             redundant_connections, cause_counts) -> DatasetSummary:
    return DatasetSummary(
        name=name,
        h2_sites=h2_sites,
        h2_connections=h2_connections,
        redundant_sites=redundant_sites,
        redundant_connections=redundant_connections,
        redundant_site_share=(
            redundant_sites / h2_sites if h2_sites else 0.0
        ),
        cause_sites=dict(zip(_CAUSES, cause_counts)),
        cause_connections=dict(zip(_CAUSES, cause_counts)),
    )


_summaries = st.builds(
    _summary,
    st.just("alexa"),
    st.integers(0, 50),
    st.integers(0, 500),
    st.integers(0, 50),
    st.integers(0, 500),
    st.tuples(*(st.integers(0, 20) for _ in _CAUSES)),
)


class TestMergeLaws:
    @given(parts=st.lists(_summaries, min_size=1, max_size=6),
           shuffle_seed=st.integers())
    @settings(max_examples=60, deadline=None)
    def test_merge_is_order_insensitive(self, parts, shuffle_seed):
        import random

        shuffled = list(parts)
        random.Random(shuffle_seed).shuffle(shuffled)
        assert DatasetSummary.merge(shuffled) == DatasetSummary.merge(parts)

    @given(parts=st.lists(_summaries, min_size=3, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, parts):
        a, b, c = parts
        left = DatasetSummary.merge([DatasetSummary.merge([a, b]), c])
        right = DatasetSummary.merge([a, DatasetSummary.merge([b, c])])
        assert left == right

    @given(part=_summaries)
    @settings(max_examples=30, deadline=None)
    def test_single_part_is_identity(self, part):
        assert DatasetSummary.merge([part]) == part

    @given(parts=st.lists(_summaries, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_counts_add_and_share_recomputes(self, parts):
        merged = DatasetSummary.merge(parts)
        h2_sites = sum(part.h2_sites for part in parts)
        redundant = sum(part.redundant_sites for part in parts)
        assert merged.h2_sites == h2_sites
        assert merged.redundant_sites == redundant
        expected_share = redundant / h2_sites if h2_sites else 0.0
        assert merged.redundant_site_share == pytest.approx(expected_share)
        for cause in _CAUSES:
            assert merged.cause_sites[cause] == sum(
                part.cause_sites.get(cause, 0) for part in parts
            )


class TestMergeErrors:
    def test_zero_parts_raise(self):
        with pytest.raises(ValueError, match="zero"):
            DatasetSummary.merge([])

    def test_mixed_datasets_raise(self):
        a = _summary("alexa", 1, 1, 0, 0, (0,) * len(_CAUSES))
        b = DatasetSummary(
            name="har-actual", h2_sites=1, h2_connections=1,
            redundant_sites=0, redundant_connections=0,
            redundant_site_share=0.0, cause_sites={}, cause_connections={},
        )
        with pytest.raises(ValueError, match="different datasets"):
            DatasetSummary.merge([a, b])


class TestAgainstRealStudy:
    def test_shard_partials_fold_to_the_whole(self, small_study):
        """Summaries of per-shard sub-datasets fold to the study's own."""
        from repro.crawl import plan_crawl_shards

        dataset = small_study.dataset("har-endless")
        whole = summarize_dataset("har-endless", dataset)
        sites = sorted(dataset.classifications)
        plan = plan_crawl_shards(sites, 4)
        partials = [
            summarize_dataset(
                "har-endless",
                dataset.subset(shard.domains, name="har-endless"),
            )
            for shard in plan
        ]
        assert DatasetSummary.merge(partials) == whole
