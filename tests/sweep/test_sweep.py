"""Tests for the scenario sweep engine and its cache integration."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.robustness import robustness_report
from repro.analysis.study import StudyConfig
from repro.cli import main
from repro.store import StudyCache
from repro.sweep import SweepSpec, run_sweep

GOLDEN_DIGEST = (
    Path(__file__).resolve().parents[1] / "golden" / "digest.txt"
).read_text().strip()


class TestSweepSpec:
    def test_cells_are_variant_major(self):
        spec = SweepSpec(
            base=StudyConfig(n_sites=50),
            seeds=(7, 8),
            axes=(("alexa_share", (0.3, 0.5)),),
        )
        cells = spec.cells()
        assert spec.n_cells == len(cells) == 4
        assert [cell.config.alexa_share for cell in cells] == [0.3, 0.3, 0.5, 0.5]
        assert [cell.seed for cell in cells] == [7, 8, 7, 8]
        assert cells[0].variant_label() == "alexa_share=0.3"
        assert cells[0].label() == "seed=7 alexa_share=0.3"

    def test_pure_seed_sweep_has_base_variant(self):
        cells = SweepSpec(base=StudyConfig(n_sites=50), seeds=(7, 9)).cells()
        assert [cell.seed for cell in cells] == [7, 9]
        assert cells[0].variant_label() == "base"

    def test_parse_axes_types(self):
        axes = SweepSpec.parse_axes(
            ["n_sites=120,240", "alexa_share=0.3",
             "har_models=endless+immediate,endless"]
        )
        assert axes == (
            ("n_sites", (120, 240)),
            ("alexa_share", (0.3,)),
            ("har_models", (("endless", "immediate"), ("endless",))),
        )

    @pytest.mark.parametrize(
        "spec",
        ["n_sites", "n_sites=", "n_sites=x", "bogus_field=1", "seed=1,2"],
    )
    def test_parse_axes_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            SweepSpec.parse_axes([spec])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"seeds": ()},
            {"seeds": (7, 7)},
            {"axes": (("seed", (1, 2)),)},
            {"axes": (("no_such_field", (1,)),)},
            {"axes": (("n_sites", ()),)},
            {"axes": (("n_sites", (10,)), ("n_sites", (20,)))},
        ],
    )
    def test_spec_validation(self, kwargs):
        with pytest.raises(ValueError):
            SweepSpec(base=StudyConfig(), **{"seeds": (7,), **kwargs})

    def test_bad_axis_value_fails_before_running(self):
        spec = SweepSpec(
            base=StudyConfig(n_sites=50),
            seeds=(7,),
            axes=(("alexa_variants", (("bogus",),)),),
        )
        with pytest.raises(ValueError):
            spec.cells()

    @pytest.mark.parametrize(
        "axis",
        [
            ("har_models", (("endless", "endless"),)),
            ("alexa_variants", (("fetch", "fetch"),)),
        ],
    )
    def test_duplicate_variant_entries_rejected(self, axis):
        spec = SweepSpec(
            base=StudyConfig(n_sites=50), seeds=(7,), axes=(axis,)
        )
        with pytest.raises(ValueError, match="duplicate"):
            spec.cells()


@pytest.mark.slow
class TestRunSweep:
    def test_seed7_cell_matches_golden_digest(self):
        # The acceptance anchor: a sweep cell configured exactly like
        # the golden snapshot must reproduce the golden study digest.
        spec = SweepSpec(
            base=StudyConfig(n_sites=120, dns_study_days=0.25),
            seeds=(7, 8, 9),
        )
        result = run_sweep(spec)
        by_seed = {cell.cell.seed: cell for cell in result.cells}
        assert by_seed[7].digest == GOLDEN_DIGEST
        # Different seeds must diverge (otherwise the sweep proves nothing).
        assert len({cell.digest for cell in result.cells}) == 3
        report = robustness_report(result)
        assert "Robustness report — 3 cells" in report
        assert GOLDEN_DIGEST in report
        assert "HAR endless redundant share" in report

    def test_warm_cache_second_run_does_zero_crawl_work(self, tmp_path):
        spec = SweepSpec(
            base=StudyConfig(n_sites=60, dns_study_days=0.25),
            seeds=(7, 8),
            axes=(("har_models", (("endless", "immediate"), ("endless",))),),
        )
        cold_cache = StudyCache(tmp_path / "cache")
        cold = run_sweep(spec, cache=cold_cache)

        warm_cache = StudyCache(tmp_path / "cache")
        warm = run_sweep(spec, cache=warm_cache)

        # Identical results either way.
        assert [cell.digest for cell in warm.cells] == [
            cell.digest for cell in cold.cells
        ]
        # The warm run performed zero crawl and classification work:
        # every such stage records zero items in every cell...
        for cell in warm.cells:
            for stage in cell.timings.stages:
                if stage.name.startswith("crawl-") or stage.name == "classify-datasets":
                    assert stage.items == 0, (cell.cell.label(), stage)
        # ...and the cache saw only hits.
        for kind in ("har-crawl", "alexa-crawl", "classify"):
            assert warm_cache.counters[kind].misses == 0
            assert warm_cache.counters[kind].hits > 0
            assert warm_cache.counters[kind].writes == 0

    def test_cold_sweep_shares_stages_between_cells(self, tmp_path):
        # Cells that differ only in lifetime models share the same
        # crawls, so even the *cold* sweep hits the cache across cells.
        spec = SweepSpec(
            base=StudyConfig(n_sites=60, dns_study_days=0.25),
            seeds=(7,),
            axes=(("har_models", (("endless", "immediate"), ("endless",))),),
        )
        cache = StudyCache(tmp_path / "cache")
        run_sweep(spec, cache=cache)
        assert cache.counters["har-crawl"].hits >= 1
        assert cache.counters["alexa-crawl"].hits >= 2
        assert cache.counters["classify"].hits >= 3

    def test_variant_without_required_datasets_reports_no_headline(self):
        spec = SweepSpec(
            base=StudyConfig(n_sites=40, dns_study_days=0.25),
            seeds=(7,),
            axes=(("alexa_variants", (("fetch",),)),),
        )
        result = run_sweep(spec)
        (cell,) = result.cells
        assert cell.headline is None
        assert "alexa-nofetch" not in cell.datasets
        assert "alexa" in cell.datasets
        report = robustness_report(result)
        assert "no cell produced headline statistics" in report

    def test_aggregated_timings_sum_items(self):
        spec = SweepSpec(
            base=StudyConfig(n_sites=40, dns_study_days=0.25), seeds=(7, 8)
        )
        result = run_sweep(spec)
        merged = result.timings()
        per_cell = [
            cell.timings.seconds_for("crawl-httparchive")
            for cell in result.cells
        ]
        assert merged.seconds_for("crawl-httparchive") == pytest.approx(
            sum(per_cell)
        )
        stage_names = [stage.name for stage in merged.stages]
        assert stage_names.count("crawl-httparchive") == 1


@pytest.mark.slow
class TestSweepCli:
    def test_sweep_command_renders_report(self, capsys, tmp_path):
        code = main([
            "sweep", "--sites", "40", "--seeds", "7,8",
            "--cache-dir", str(tmp_path / "cache"), "--profile",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Robustness report — 2 cells" in out
        assert "Stage timings" in out
        assert "har-crawl" in out  # cache stats table

    def test_sweep_with_grid(self, capsys, tmp_path):
        code = main([
            "sweep", "--sites", "40", "--seeds", "7",
            "--grid", "alexa_share=0.3,0.5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Variant: alexa_share=0.3" in out
        assert "Variant: alexa_share=0.5" in out

    def test_bad_grid_is_reported(self, capsys):
        assert main(["sweep", "--grid", "bogus=1"]) == 2
        assert "not sweepable" in capsys.readouterr().err

    def test_bad_axis_value_is_reported(self, capsys):
        # Bad tuple-axis *values* surface as a clean error too, not a
        # traceback from inside run_sweep.
        assert main(["sweep", "--grid", "alexa_variants=bogus"]) == 2
        assert "alexa_variants" in capsys.readouterr().err

    def test_bad_seeds_are_reported(self, capsys):
        assert main(["sweep", "--seeds", "7,x"]) == 2
        assert "bad --seeds" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [
            ["sweep", "--executor", "bogus"],
            ["sweep", "--grid", "executor=bogus"],
            ["sweep", "--grid", "parallelism=0"],
        ],
    )
    def test_bad_executor_specs_are_reported(self, capsys, argv):
        # Executor specs validate with the other cell fields, so they
        # exit cleanly instead of raising inside run_sweep.
        assert main(argv) == 2
        assert "error:" in capsys.readouterr().err
