"""Unit tests for the longitudinal analysis and runner."""

from __future__ import annotations

import pytest

from repro.analysis.longitudinal import (
    DatasetDrift,
    EpochSnapshot,
    LongitudinalResult,
    half_life,
    longitudinal_report,
)
from repro.analysis.study import StudyConfig


class TestHalfLife:
    def test_exact_halving(self):
        assert half_life([100.0, 50.0]) == pytest.approx(1.0)

    def test_interpolates_between_epochs(self):
        # 100 -> 80 -> 40: crosses 50 between epochs 1 and 2.
        assert half_life([100.0, 80.0, 40.0]) == pytest.approx(1.75)

    def test_never_halves(self):
        assert half_life([100.0, 90.0, 95.0]) is None

    def test_growth_has_no_half_life(self):
        assert half_life([100.0, 150.0, 200.0]) is None

    def test_empty_and_zero_start(self):
        assert half_life([]) is None
        assert half_life([0.0, 0.0]) is None

    def test_flat_plateau_at_half(self):
        assert half_life([100.0, 50.0, 50.0]) == pytest.approx(1.0)


def _snapshot(epoch: int, redundant: int, churn=()) -> EpochSnapshot:
    drift = DatasetDrift(
        h2_connections=200,
        redundant_connections=redundant,
        cause_connections={"CERT": redundant // 2, "IP": redundant // 2,
                           "CRED": 0},
    )
    return EpochSnapshot(
        epoch=epoch, digest=f"d{epoch}", datasets={"alexa": drift},
        churn=tuple(churn),
    )


class TestResultRendering:
    def make_result(self) -> LongitudinalResult:
        return LongitudinalResult(
            policy="shard-consolidation",
            config=StudyConfig(seed=7, n_sites=40),
            snapshots=(
                _snapshot(0, 120),
                _snapshot(1, 80, (("shard-drop", 5),)),
                _snapshot(2, 50, (("shard-drop", 3),)),
            ),
        )

    def test_render_contains_every_section(self):
        text = self.make_result().render()
        assert "Reuse trajectory per dataset" in text
        assert "Attribution drift" in text
        assert "half-life" in text
        assert "Churn ledger" in text
        assert "shard-drop=5" in text

    def test_half_life_row_reports_decay(self):
        rows = self.make_result().half_life_rows()
        assert rows == [["alexa", "120", "50", "1.7 epochs"]]

    def test_reuse_rows_delta_against_epoch_zero(self):
        rows = self.make_result().reuse_rows()
        assert rows[0][-1] == "+0.0 pp"  # epoch 0 vs itself
        assert rows[-1][-1] == "-35.0 pp"  # 25% vs 60%

    def test_digests_in_epoch_order(self):
        assert self.make_result().digests() == [
            (0, "d0"), (1, "d1"), (2, "d2")
        ]

    def test_report_rejects_epoch_gaps(self):
        broken = LongitudinalResult(
            policy="mixed",
            config=StudyConfig(),
            snapshots=(_snapshot(0, 10), _snapshot(2, 5)),
        )
        with pytest.raises(ValueError, match="without gaps"):
            longitudinal_report(broken)


@pytest.mark.slow
class TestRunner:
    def test_runner_snapshots_every_epoch(self):
        from repro.evolve import run_longitudinal

        result = run_longitudinal(
            StudyConfig(seed=7, n_sites=30, dns_study_days=0.25),
            policy="shard-consolidation",
            epochs=1,
        )
        assert result.epochs == [0, 1]
        assert result.snapshots[0].churn == ()
        assert result.snapshots[1].churn  # consolidation fired
        assert result.snapshots[0].digest != result.snapshots[1].digest
        assert "shard-consolidation" in result.render()

    def test_runner_rejects_unknown_policy(self):
        from repro.evolve import run_longitudinal

        with pytest.raises(ValueError, match="unknown evolution policy"):
            run_longitudinal(StudyConfig(), policy="bogus", epochs=1)

    def test_runner_rejects_negative_epochs(self):
        from repro.evolve import run_longitudinal

        with pytest.raises(ValueError, match="epochs"):
            run_longitudinal(StudyConfig(), policy="mixed", epochs=-1)
