"""World-level tests of the evolution engine and the ecosystem hooks.

These tests generate their own small worlds (the session-scoped
fixtures are shared read-only state and must never be mutated).
"""

from __future__ import annotations

import pytest

from repro.dns.zone import AddressEntry
from repro.evolve.engine import advance_epoch
from repro.evolve.policy import ChurnKind
from repro.web.ecosystem import Ecosystem, EcosystemConfig
from repro.web.resources import RequestMode
from repro.web.website import ShardingStyle


def make_world(epoch: int = 0, policy: str = "none", n_sites: int = 30):
    return Ecosystem.generate(
        EcosystemConfig(
            seed=7, n_sites=n_sites, evolution_policy=policy, epoch=epoch
        )
    )


def world_state(ecosystem: Ecosystem) -> dict:
    """A comparable snapshot of everything evolution can mutate."""
    dns = {}
    for name in ecosystem.namespace.names():
        entry = ecosystem.namespace.entry(name)
        if isinstance(entry, AddressEntry):
            dns[name] = (entry.pool, entry.salt)
    servers = {
        ip: (
            sorted(
                (sni, cert.fingerprint, cert.sans)
                for sni, cert in server.cert_map.items()
            ),
            server.origin_frame_origins,
        )
        for ip, server in ecosystem.servers.items()
    }
    pages = {
        site.domain: [
            (resource.domain, resource.path, resource.mode.value)
            for document in site.all_documents()
            for resource in document.walk()
        ]
        for site in ecosystem.websites
    }
    return {"dns": dns, "servers": servers, "pages": pages}


def site_with_style(ecosystem, style):
    for site in ecosystem.websites:
        if site.sharding is style and site.shard_domains():
            return site
    raise AssertionError(f"no site with style {style} in the test world")


class TestHooks:
    def test_drop_shards_rehomes_resources_and_dns(self):
        from repro.evolve.engine import _drop_shards

        world = make_world()
        site = site_with_style(ecosystem=world, style=ShardingStyle.SAME_CERT_SAME_IP)
        shards = site.shard_domains()
        _drop_shards(world, site)
        assert site.shard_domains() == []
        assert site.sharding is ShardingStyle.NONE
        for shard in shards:
            assert world.namespace.entry(shard) is None
        for document in site.all_documents():
            for resource in document.walk():
                assert resource.domain not in shards

    def test_drop_shards_deregisters_resource_less_shards(self):
        from repro.evolve.engine import _drop_shards

        world = make_world(n_sites=60)
        # Find a site with a shard in DNS that no resource references.
        for site in world.websites:
            referenced = {
                resource.domain
                for document in site.all_documents()
                for resource in document.walk()
            }
            orphans = [
                shard for shard in site.shard_domains()
                if shard not in referenced
            ]
            if orphans:
                break
        else:
            pytest.skip("no resource-less shard in the test world")
        assert world.namespace.entry(orphans[0]) is not None
        _drop_shards(world, site)
        assert world.namespace.entry(orphans[0]) is None

    def test_rotation_preserves_sans_and_issuer(self):
        world = make_world()
        site = site_with_style(world, ShardingStyle.SAME_CERT_SAME_IP)
        domains = [site.domain] + site.shard_domains()
        servers = world.fleet_for(domains)
        before = {
            ip_cert.fingerprint: ip_cert
            for server in servers for ip_cert in server.cert_map.values()
        }
        from repro.evolve.engine import _rotate_certificates

        _rotate_certificates(world, domains)
        for server in servers:
            for sni, cert in server.cert_map.items():
                assert cert.fingerprint not in before
                olds = [
                    old for old in before.values() if old.sans == cert.sans
                ]
                assert olds and olds[0].issuer_org == cert.issuer_org

    def test_merge_collapses_separate_certs(self):
        world = make_world()
        site = site_with_style(world, ShardingStyle.SEPARATE_CERTS)
        domains = [site.domain] + site.shard_domains()
        from repro.evolve.engine import _merge_certificates

        _merge_certificates(world, site, domains)
        assert site.sharding is ShardingStyle.SAME_CERT_SAME_IP
        for server in world.fleet_for(domains):
            fingerprints = {
                server.certificate_for(domain).fingerprint
                for domain in domains
            }
            assert len(fingerprints) == 1
            assert set(server.certificate_for(site.domain).sans) >= set(domains)

    def test_split_issues_per_name_certs(self):
        world = make_world()
        site = site_with_style(world, ShardingStyle.SAME_CERT_SAME_IP)
        domains = [site.domain] + site.shard_domains()
        from repro.evolve.engine import _split_certificates

        _split_certificates(world, site, domains)
        assert site.sharding is ShardingStyle.SEPARATE_CERTS
        for server in world.fleet_for(domains):
            fingerprints = {
                server.certificate_for(domain).fingerprint
                for domain in domains
            }
            assert len(fingerprints) == len(domains)
            for domain in domains:
                assert server.certificate_for(domain).sans == (domain,)

    def test_migrate_fleet_moves_endpoints(self):
        world = make_world()
        site = site_with_style(world, ShardingStyle.SAME_CERT_SAME_IP)
        domains = [site.domain] + site.shard_domains()
        old_pool = world.dns_pool(site.domain)
        old_servers = {server.ip: server for server in world.fleet_for(domains)}
        provider = world.providers.generic_hosters()[0]
        moves = world.migrate_fleet(domains, provider)
        assert set(moves) == set(old_servers)
        for old_ip, new_ip in moves.items():
            assert old_ip not in world.servers
            migrated = world.servers[new_ip]
            assert migrated.cert_map == old_servers[old_ip].cert_map
        assert world.dns_pool(site.domain) == tuple(
            moves[ip] for ip in old_pool
        )
        # The new addresses attribute to the target provider's AS.
        for new_ip in moves.values():
            system = world.asdb.lookup(new_ip)
            assert system is not None
            assert system.asn == provider.system.asn

    def test_origin_frame_flip_toggles(self):
        world = make_world()
        site = site_with_style(world, ShardingStyle.SAME_CERT_SAME_IP)
        servers = world.fleet_for([site.domain])
        assert not servers[0].origin_frame_origins
        world.set_origin_frames(servers, True)
        assert all(server.origin_frame_origins for server in servers)
        assert any(
            origin == f"https://{site.domain}"
            for origin in servers[0].origin_frame_origins
        )
        world.set_origin_frames(servers, False)
        assert not servers[0].origin_frame_origins

    def test_repoint_dns_preserves_policy_and_ttl(self):
        world = make_world()
        site = world.websites[0]
        entry = world.namespace.entry(site.domain)
        reversed_pool = tuple(reversed(entry.pool))
        assert world.repoint_dns(site.domain, pool=reversed_pool, salt="x")
        after = world.namespace.entry(site.domain)
        assert after.pool == reversed_pool
        assert after.salt == "x"
        assert after.policy is entry.policy
        assert after.ttl == entry.ttl

    def test_repoint_unknown_name_is_noop(self):
        world = make_world()
        assert not world.repoint_dns("never-registered.invalid", salt="x")


class TestAdvanceEpoch:
    def test_deterministic_across_identical_worlds(self):
        first, second = make_world(), make_world()
        counts_a = advance_epoch(first, "mixed", epoch=1)
        counts_b = advance_epoch(second, "mixed", epoch=1)
        assert counts_a == counts_b
        assert counts_a, "mixed should fire something on 30 sites"
        assert world_state(first) == world_state(second)

    def test_epochs_compound(self):
        world = make_world()
        advance_epoch(world, "dns-churn", epoch=1)
        state_one = world_state(world)
        advance_epoch(world, "dns-churn", epoch=2)
        assert world_state(world) != state_one

    def test_none_policy_is_inert(self):
        world = make_world()
        pristine = world_state(world)
        assert advance_epoch(world, "none", epoch=1) == {}
        assert world_state(world) == pristine

    def test_cred_rekey_flips_modes_only(self):
        world = make_world()
        before = world_state(world)
        counts = advance_epoch(world, "cert-rotation", epoch=1)
        assert counts.get(ChurnKind.CRED_REKEY.value, 0) > 0
        flipped = 0
        for domain, page in world_state(world)["pages"].items():
            for (d0, p0, m0), (d1, p1, m1) in zip(before["pages"][domain], page):
                assert (d0, p0) == (d1, p1)  # structure never changes
                if m0 != m1:
                    flipped += 1
                    assert {m0, m1} == {
                        RequestMode.CORS_ANON.value, RequestMode.NO_CORS.value
                    }
        assert flipped == counts[ChurnKind.CRED_REKEY.value]


class TestGenerateIntegration:
    def test_generate_applies_epochs_and_ledger(self):
        world = make_world(epoch=2, policy="shard-consolidation")
        assert [epoch for epoch, _ in world.evolution_ledger] == [1, 2]
        assert any(counts for _, counts in world.evolution_ledger)

    def test_generate_is_pure_in_config(self):
        first = make_world(epoch=2, policy="mixed")
        second = make_world(epoch=2, policy="mixed")
        assert world_state(first) == world_state(second)
        assert first.evolution_ledger == second.evolution_ledger

    def test_epoch_zero_matches_pristine_for_every_policy(self):
        pristine = world_state(make_world())
        for policy in ("cert-rotation", "dns-churn", "cdn-migration",
                       "shard-consolidation", "mixed"):
            assert world_state(make_world(policy=policy)) == pristine, policy

    def test_site_list_is_epoch_invariant(self):
        pristine = make_world()
        evolved = make_world(epoch=3, policy="mixed")
        assert [site.domain for site in pristine.websites] == [
            site.domain for site in evolved.websites
        ]
        assert pristine.alexa_list(10) == evolved.alexa_list(10)

    def test_unknown_policy_fails_at_generate(self):
        with pytest.raises(ValueError, match="unknown evolution policy"):
            make_world(epoch=1, policy="tectonic-drift")

    @pytest.mark.parametrize("policy", ["cdn-migration", "mixed"])
    def test_world_stays_internally_consistent(self, policy):
        # Migration decommissions endpoints; no DNS entry may keep
        # answering with a deleted IP (resource-less shards included).
        world = make_world(epoch=3, policy=policy, n_sites=60)
        for name in world.namespace.names():
            entry = world.namespace.entry(name)
            if isinstance(entry, AddressEntry):
                for ip in entry.pool:
                    assert ip in world.servers, (policy, name, ip)
