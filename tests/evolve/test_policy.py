"""Unit tests for the churn-policy registry and epoch plans."""

from __future__ import annotations

import pytest

from repro.evolve.plan import EpochPlan, merge_churn
from repro.evolve.policy import (
    ChurnKind,
    ChurnSpec,
    DNS_KINDS,
    SITE_KINDS,
    EvolutionPolicy,
    evolution_policy,
    policy_names,
)


class TestRegistry:
    def test_expected_policies_registered(self):
        assert policy_names() == [
            "cdn-migration", "cert-rotation", "dns-churn", "h3-rollout",
            "mixed", "none", "shard-consolidation",
        ]

    def test_none_is_empty(self):
        assert evolution_policy("none").empty

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown evolution policy"):
            evolution_policy("cert-rotation-weekly")

    def test_mixed_covers_every_axis_at_half_rate(self):
        mixed = evolution_policy("mixed")
        # Every kind of every pre-h3 single-axis policy appears in
        # mixed; h3-rollout stays out so the pinned longitudinal
        # golden remains h2-only.
        single_axis_kinds = set()
        for name in ("cert-rotation", "dns-churn", "cdn-migration",
                     "shard-consolidation"):
            single_axis_kinds |= evolution_policy(name).kinds
        assert mixed.kinds == single_axis_kinds
        assert ChurnKind.H3_ROLLOUT not in mixed.kinds
        # And the rate of each is half its primary policy's rate.
        rotate = evolution_policy("cert-rotation").spec_for(
            ChurnKind.CERT_ROTATE
        )
        assert mixed.spec_for(ChurnKind.CERT_ROTATE).rate == pytest.approx(
            rotate.rate / 2
        )

    def test_every_kind_is_site_or_dns_scoped(self):
        assert SITE_KINDS | DNS_KINDS == set(ChurnKind)
        assert not SITE_KINDS & DNS_KINDS

    def test_duplicate_kinds_rejected(self):
        spec = ChurnSpec(ChurnKind.CERT_ROTATE, rate=0.1)
        with pytest.raises(ValueError, match="duplicate churn kinds"):
            EvolutionPolicy("dup", "bad", (spec, spec))

    def test_rate_bounds_enforced(self):
        with pytest.raises(ValueError, match="churn rate"):
            ChurnSpec(ChurnKind.DNS_NARROW, rate=1.5)


class TestEpochPlan:
    def test_none_compiles_to_no_plan(self):
        assert EpochPlan.compile(
            "none", seed=7, epoch=1, domain="a.com"
        ) is None

    def test_same_triple_same_draws(self):
        kwargs = dict(seed=7, epoch=3, domain="site000004.com")
        first = EpochPlan.compile("mixed", **kwargs)
        second = EpochPlan.compile("mixed", **kwargs)
        for kind in sorted(first.policy.kinds, key=lambda k: k.value):
            assert [first.fires(kind) for _ in range(32)] == [
                second.fires(kind) for _ in range(32)
            ], kind

    @pytest.mark.parametrize("vary", ["seed", "epoch", "domain"])
    def test_each_coordinate_decorrelates(self, vary):
        base = dict(seed=7, epoch=1, domain="site000004.com")
        other = dict(base)
        other[vary] = 8 if vary != "domain" else "site000005.com"
        kind = ChurnKind.CRED_REKEY
        draws = lambda kw: [
            EpochPlan.compile("mixed", **kw).rng(kind).random()
            for _ in range(4)
        ]
        assert draws(base) != draws(other)

    def test_kind_streams_independent(self):
        plan = EpochPlan.compile("mixed", seed=7, epoch=1, domain="a.com")
        probe = EpochPlan.compile("mixed", seed=7, epoch=1, domain="a.com")
        # Draining one kind's stream must not shift another's draws.
        for _ in range(100):
            plan.fires(ChurnKind.DNS_RESHUFFLE)
        assert plan.rng(ChurnKind.CERT_ROTATE).random() == probe.rng(
            ChurnKind.CERT_ROTATE
        ).random()

    def test_counts_and_merge(self):
        plan = EpochPlan.compile(
            "shard-consolidation", seed=7, epoch=1, domain="a.com"
        )
        fired = sum(
            plan.fires(ChurnKind.SHARD_DROP) for _ in range(400)
        )
        counts = plan.counts()
        assert dict(counts).get(ChurnKind.SHARD_DROP.value, 0) == fired
        totals: dict[str, int] = {}
        merge_churn(totals, counts)
        merge_churn(totals, counts)
        assert totals[ChurnKind.SHARD_DROP.value] == 2 * fired
