"""Incremental recompute across evolution epochs.

The per-site-set cache keys promise: epoch N+1 of a longitudinal run
reuses every shard the evolution ledger never touched, and recomputes
exactly the rest.  The expected reuse counts are *derived from the
worlds themselves* — by diffing per-shard keys between the pristine
and evolved ecosystems — never hardcoded, so the assertions track the
policy's real blast radius.

The scale (60 sites, 24 shards, ``cert-rotation``) is the smallest
probe where the policy's per-resource churn leaves at least one shard
untouched; anything coarser goes fully dirty and the differential has
no teeth.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.digest import study_digest
from repro.analysis.study import Study, StudyConfig
from repro.crawl import HttpArchiveCrawler
from repro.crawl.alexa import AlexaCrawler
from repro.store import CacheStats, StudyCache
from repro.web.ecosystem import Ecosystem

pytestmark = pytest.mark.slow

_N_SHARDS = 24

_BASE = StudyConfig(
    seed=7, n_sites=60, dns_study_days=0.25, shards=_N_SHARDS,
    evolution_policy="cert-rotation",
)


def _config(epochs: int) -> StudyConfig:
    return replace(_BASE, epochs=epochs)


def _crawl_keys(config: StudyConfig) -> dict[tuple[str, int], str]:
    """Every crawl shard's cache key at ``config``'s epoch, by
    ``(stage, bucket index)`` — the ground truth the study must hit."""
    ecosystem = Ecosystem.generate(config.ecosystem_config())
    keys: dict[tuple[str, int], str] = {}
    ha = HttpArchiveCrawler(
        ecosystem=ecosystem, seed=config.seed + 100,
        fault_profile=config.fault_profile,
    )
    ha_domains = ecosystem.httparchive_sample(
        config.ha_sample_share, seed=config.seed + 1
    )
    for shard in ha.plan_shards(ha_domains, shards=_N_SHARDS):
        keys[("ha", shard.index)] = ha.shard_key(
            shard.domains, shard.offsets
        )
    alexa = AlexaCrawler(
        ecosystem=ecosystem, seed=config.seed + 200,
        fault_profile=config.fault_profile,
    )
    alexa_domains = ecosystem.alexa_list(
        max(1, int(config.n_sites * config.alexa_share))
    )
    runs = {
        "fetch": dict(run_name="alexa-fetch"),
        "nofetch": dict(
            run_name="alexa-nofetch", ignore_privacy_mode=True,
            run_offset=500_000.0,
        ),
    }
    for stage, kwargs in runs.items():
        plan = alexa.plan_shards(alexa_domains, shards=_N_SHARDS, **kwargs)
        for shard in plan:
            keys[(stage, shard.index)] = alexa.shard_key(
                shard.domains, shard.offsets, **kwargs
            )
    return keys


@pytest.fixture(scope="module")
def shard_keys() -> tuple[dict, dict]:
    return _crawl_keys(_config(0)), _crawl_keys(_config(1))


@pytest.fixture(scope="module")
def warm_cache(tmp_path_factory) -> tuple[StudyCache, str, CacheStats]:
    """A cache warmed by the epoch-0 study, plus its digest and the
    counter snapshot taken right after warming."""
    cache = StudyCache(tmp_path_factory.mktemp("epoch-cache"))
    study = Study.run(_config(0), cache=cache)
    return cache, study_digest(study), cache.total_stats()


class TestEpochIncrementality:
    def test_some_but_not_all_shards_stay_clean(self, shard_keys):
        """The scenario has teeth: the key diff is a strict partial."""
        pristine, evolved = shard_keys
        assert pristine.keys() == evolved.keys()
        clean = [slot for slot in pristine if pristine[slot] == evolved[slot]]
        assert 0 < len(clean) < len(pristine)

    def test_epoch_one_reuses_exactly_the_untouched_shards(
        self, warm_cache, shard_keys
    ):
        cache, _, before = warm_cache
        Study.run(_config(1), cache=cache)
        after = cache.total_stats()
        pristine, evolved = shard_keys
        clean_ha = sum(
            1 for (stage, index), key in pristine.items()
            if stage == "ha" and evolved[(stage, index)] == key
        )
        clean_alexa = sum(
            1 for (stage, index), key in pristine.items()
            if stage != "ha" and evolved[(stage, index)] == key
        )
        counters = cache.counters
        assert counters["har-crawl"].hits == clean_ha
        assert counters["alexa-crawl"].hits == clean_alexa
        # A clean crawl shard's classifications are clean too: HAR
        # shards feed every lifetime model, fetch-run shards feed two
        # datasets, nofetch-run shards one.
        clean_fetch = sum(
            1 for (stage, index), key in pristine.items()
            if stage == "fetch" and evolved[(stage, index)] == key
        )
        clean_nofetch = clean_alexa - clean_fetch
        expected_classify = (
            clean_ha * len(_BASE.har_models)
            + clean_fetch * 2 + clean_nofetch
        )
        assert counters["classify"].hits == expected_classify
        # Everything else was recomputed, not silently skipped.
        assert after.misses > before.misses
        assert after.errors == 0

    def test_warm_epoch_digest_matches_cold(self, warm_cache):
        cache, _, _ = warm_cache
        warm = Study.run(_config(1), cache=cache)
        cold = Study.run(_config(1))
        assert study_digest(warm) == study_digest(cold)


class TestWarmRerun:
    def test_full_rerun_is_all_hits(self, warm_cache):
        cache, digest, _ = warm_cache
        before = cache.total_stats()
        study = Study.run(_config(0), cache=cache)
        after = cache.total_stats()
        assert study_digest(study) == digest
        assert after.misses == before.misses
        assert after.hits > before.hits

    def test_corrupt_shard_entry_degrades_to_recorded_miss(
        self, warm_cache
    ):
        """One truncated shard artefact costs one recompute, not the
        study; the digest is unchanged and the entry heals on disk."""
        cache, digest, _ = warm_cache
        kind, key = next(
            entry for entry in cache.entries() if entry[0] == "har-crawl"
        )
        path = cache.directory / kind / f"{key}.pkl"
        path.write_bytes(path.read_bytes()[:16])
        before = cache.total_stats()
        study = Study.run(_config(0), cache=cache)
        after = cache.total_stats()
        assert study_digest(study) == digest
        assert after.errors == before.errors + 1
        assert after.misses == before.misses + 1
        # The healed entry round-trips again.
        assert cache.get(kind, key) is not None
