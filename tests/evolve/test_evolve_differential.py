"""The longitudinal determinism invariants.

Three families of guarantees, mirroring the fault engine's suite:

1. **Epoch-0 identity** — under *every* policy, epoch 0 measures the
   pristine world: its study digest equals the fault-free baseline
   (and, at golden scale, the pinned clean golden digest).
2. **Determinism under churn** — evolved-world studies are
   executor-independent: process workers rebuild the evolved world from
   its config alone and must digest identically to serial runs.
3. **Perturbation** — every policy actually moves the digest by
   epoch 2, epochs compound (digests are pairwise distinct along the
   sequence), and the ``none`` policy is inert at any epoch.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.digest import study_digest
from repro.analysis.study import Study, StudyConfig
from repro.runtime import ProcessExecutor, ThreadExecutor

pytestmark = pytest.mark.slow

_GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"

#: Every named (non-empty) policy.
POLICIES = (
    "cert-rotation", "dns-churn", "cdn-migration", "shard-consolidation",
    "mixed",
)

#: Differential scale: small enough to afford a study per policy and
#: executor, large enough that every churn kind strikes.
_SCALE = dict(n_sites=40, dns_study_days=0.25)


def _config(policy: str, epochs: int) -> StudyConfig:
    return StudyConfig(
        seed=7, evolution_policy=policy, epochs=epochs, **_SCALE
    )


@pytest.fixture(scope="module")
def baseline() -> Study:
    return Study.run(_config("none", 0))


@pytest.fixture(scope="module")
def evolved_studies() -> dict[str, Study]:
    """One serial epoch-2 study per policy."""
    return {policy: Study.run(_config(policy, 2)) for policy in POLICIES}


class TestEpochZeroIdentity:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_epoch_zero_matches_baseline(self, baseline, policy):
        study = Study.run(_config(policy, 0))
        assert study_digest(study) == study_digest(baseline), policy

    def test_none_policy_inert_at_any_epoch(self, baseline):
        study = Study.run(_config("none", 3))
        assert study_digest(study) == study_digest(baseline)


class TestExecutorIndependence:
    # The acceptance scenario (`repro evolve --policy cert-rotation`)
    # plus the all-axes policy; per-study independence extends to every
    # epoch of a longitudinal sequence, since each epoch is one study.
    _POLICIES = ("cert-rotation", "mixed")

    @pytest.mark.parametrize("policy", _POLICIES)
    def test_thread_executor_matches_serial(self, evolved_studies, policy):
        with ThreadExecutor(4) as executor:
            threaded = Study.run(_config(policy, 2), executor=executor)
        assert study_digest(threaded) == study_digest(
            evolved_studies[policy]
        ), policy

    @pytest.mark.parametrize("policy", _POLICIES)
    def test_process_executor_matches_serial(self, evolved_studies, policy):
        # The strongest rebuild guarantee: spawned workers regenerate
        # the evolved world from the config alone.
        with ProcessExecutor(2) as executor:
            processed = Study.run(_config(policy, 2), executor=executor)
        assert study_digest(processed) == study_digest(
            evolved_studies[policy]
        ), policy

    def test_ledger_executor_independent(self, evolved_studies):
        with ProcessExecutor(2) as executor:
            processed = Study.run(_config("mixed", 2), executor=executor)
        assert processed.ecosystem.evolution_ledger == (
            evolved_studies["mixed"].ecosystem.evolution_ledger
        )


class TestPoliciesPerturb:
    def test_every_policy_diverges_by_epoch_two(self, baseline,
                                                evolved_studies):
        base = study_digest(baseline)
        for policy, study in evolved_studies.items():
            assert study_digest(study) != base, policy

    def test_policies_pairwise_distinct(self, evolved_studies):
        digests = {
            policy: study_digest(study)
            for policy, study in evolved_studies.items()
        }
        assert len(set(digests.values())) == len(digests), digests

    def test_epochs_compound(self, baseline, evolved_studies):
        one = Study.run(_config("dns-churn", 1))
        sequence = {
            study_digest(baseline),
            study_digest(one),
            study_digest(evolved_studies["dns-churn"]),
        }
        assert len(sequence) == 3

    def test_ledger_names_stay_within_policy(self, evolved_studies):
        from repro.evolve import evolution_policy

        for policy, study in evolved_studies.items():
            allowed = {kind.value for kind in evolution_policy(policy).kinds}
            for _, counts in study.ecosystem.evolution_ledger:
                assert set(dict(counts)) <= allowed, (policy, counts)


class TestLongitudinalGolden:
    @pytest.fixture(scope="class")
    def pinned(self) -> list[tuple[int, str]]:
        lines = (
            (_GOLDEN_DIR / "longitudinal_digest.txt").read_text().splitlines()
        )
        parsed = []
        for line in lines:
            _, epoch, digest = line.split()
            parsed.append((int(epoch), digest))
        return parsed

    @pytest.mark.golden
    def test_epoch_zero_line_is_the_clean_golden(self, pinned):
        clean = (_GOLDEN_DIR / "digest.txt").read_text().strip()
        assert pinned[0] == (0, clean)

    @pytest.mark.golden
    def test_longitudinal_sequence_reproduces(
        self, golden_regen, longitudinal_golden_result
    ):
        rendered = golden_regen.render_longitudinal_artifact(
            longitudinal_golden_result.digests()
        )
        pinned_text = (_GOLDEN_DIR / "longitudinal_digest.txt").read_text()
        assert rendered == pinned_text
