"""Tests for the HAR object model."""

from __future__ import annotations

import json

import pytest

from repro.har.model import HarEntry, HarFile, HarPage, HarSecurityDetails


def _entry(**kwargs):
    defaults = dict(
        pageref="page_1",
        started_date_time=1.0,
        time_ms=50.0,
        method="GET",
        url="https://www.example.com/a.js",
        http_version="HTTP/2",
        status=200,
        body_size=1000,
        server_ip_address="10.0.0.1",
        connection="3",
        request_id="req_1",
        security=HarSecurityDetails(
            subject_name="example.com",
            san_list=("example.com", "*.example.com"),
            issuer="CA",
        ),
    )
    defaults.update(kwargs)
    return HarEntry(**defaults)


class TestHarEntry:
    def test_domain_extraction(self):
        assert _entry().domain == "www.example.com"

    def test_domain_lowercased(self):
        assert _entry(url="https://WWW.Example.COM/x").domain == "www.example.com"


class TestHarFileSerialization:
    def test_roundtrip(self):
        har = HarFile(
            page=HarPage(page_id="page_1", started_date_time=0.5,
                         title="https://example.com/", on_load_ms=1234.0),
            entries=[_entry(), _entry(connection="4", security=None)],
        )
        rebuilt = HarFile.from_dict(har.to_dict())
        assert rebuilt.page == har.page
        assert rebuilt.entries == har.entries

    def test_json_serializable(self):
        har = HarFile(
            page=HarPage(page_id="page_1", started_date_time=0.0,
                         title="t", on_load_ms=1.0),
            entries=[_entry()],
        )
        text = json.dumps(har.to_dict())
        assert HarFile.from_dict(json.loads(text)).entries == har.entries

    def test_standard_layout_keys(self):
        har = HarFile(
            page=HarPage(page_id="p", started_date_time=0.0, title="t",
                         on_load_ms=0.0),
            entries=[_entry()],
        )
        data = har.to_dict()
        assert data["log"]["version"] == "1.2"
        entry = data["log"]["entries"][0]
        assert entry["request"]["method"] == "GET"
        assert entry["response"]["status"] == 200
        assert entry["serverIPAddress"] == "10.0.0.1"
        assert entry["_securityDetails"]["sanList"] == [
            "example.com", "*.example.com"
        ]

    def test_pageless_file_rejected(self):
        with pytest.raises(ValueError):
            HarFile.from_dict({"log": {"version": "1.2", "pages": [],
                                       "entries": []}})
