"""Tests for HAR writing (with noise) and the §4.3 sanitising reader."""

from __future__ import annotations

import random

import pytest

from repro.har.model import HarEntry, HarFile, HarPage, HarSecurityDetails
from repro.har.reader import read_sessions
from repro.har.writer import HarNoiseConfig, write_har


@pytest.fixture()
def visit(browser, small_ecosystem):
    return browser.visit(small_ecosystem.websites[1].domain)


class TestWriter:
    def test_noise_free_har_matches_visit(self, visit):
        har = write_har(visit, noise=HarNoiseConfig.none())
        assert len(har.entries) == sum(
            len(c.requests) for c in visit.connections
        )
        assert har.page.title == visit.url
        sockets = {entry.connection for entry in har.entries}
        assert sockets == {
            str(c.connection_id) for c in visit.connections if c.requests
        }

    def test_unreachable_visit_rejected(self, browser):
        failed = browser.visit("missing.example")
        with pytest.raises(ValueError):
            write_har(failed)

    def test_noise_injects_h3_sockets(self, visit):
        noise = HarNoiseConfig.none()
        noise = HarNoiseConfig(
            **{**noise.__dict__, "h3_socket_zero": 1.0}
        )
        har = write_har(visit, noise=noise, rng=random.Random(1))
        assert all(entry.connection == "0" for entry in har.entries)

    def test_http_version_mapping(self, visit):
        har = write_har(visit, noise=HarNoiseConfig.none())
        versions = {entry.http_version for entry in har.entries}
        assert versions <= {"HTTP/2", "HTTP/1.1"}


class TestReaderRoundtrip:
    def test_sessions_match_browser_truth(self, visit):
        har = write_har(visit, noise=HarNoiseConfig.none())
        result = read_sessions(har)
        truth = {
            c.connection_id: c
            for c in visit.connections
            if c.protocol == "h2" and c.requests
        }
        assert {r.connection_id for r in result.records} == set(truth)
        for record in result.records:
            connection = truth[record.connection_id]
            assert record.domain == connection.requests[0].domain
            assert record.ip == connection.remote_ip
            assert record.sans == connection.certificate.sans
            assert record.end is None  # HARs carry no end times

    def test_filter_stats_zero_without_noise(self, visit):
        har = write_har(visit, noise=HarNoiseConfig.none())
        stats = read_sessions(har).stats
        http1 = sum(1 for c in visit.connections if c.protocol != "h2")
        assert stats.socket_id_zero == 0
        assert stats.missing_certificate == 0
        assert stats.dropped == stats.http1_or_h3
        assert stats.accepted == sum(
            len(c.requests) for c in visit.connections if c.protocol == "h2"
        )
        assert (stats.http1_or_h3 > 0) == (http1 > 0)


def _entry(**kwargs):
    defaults = dict(
        pageref="page_1",
        started_date_time=1.0,
        time_ms=10.0,
        method="GET",
        url="https://a.example.com/x",
        http_version="HTTP/2",
        status=200,
        body_size=1000,
        server_ip_address="10.0.0.1",
        connection="1",
        request_id="req_1",
        security=HarSecurityDetails(subject_name="a.example.com",
                                    san_list=("a.example.com",), issuer="CA"),
    )
    defaults.update(kwargs)
    return HarEntry(**defaults)


def _har(entries):
    return HarFile(
        page=HarPage(page_id="page_1", started_date_time=0.0,
                     title="https://a.example.com/", on_load_ms=100.0),
        entries=entries,
    )


class TestFilterCascade:
    def test_socket_zero_dropped(self):
        result = read_sessions(_har([_entry(connection="0")]))
        assert result.stats.socket_id_zero == 1
        assert result.records == []

    def test_missing_connection_dropped(self):
        result = read_sessions(_har([_entry(connection=None)]))
        assert result.stats.socket_id_zero == 1

    def test_missing_ip_dropped(self):
        result = read_sessions(_har([_entry(server_ip_address=None)]))
        assert result.stats.missing_ip == 1

    def test_invalid_method_dropped(self):
        result = read_sessions(_har([_entry(method="INVALID")]))
        assert result.stats.invalid_method == 1

    def test_invalid_version_dropped(self):
        result = read_sessions(_har([_entry(http_version="unknown")]))
        assert result.stats.invalid_version == 1

    def test_invalid_status_dropped(self):
        result = read_sessions(_har([_entry(status=0)]))
        assert result.stats.invalid_status == 1

    def test_http1_and_h3_counted_not_sessions(self):
        result = read_sessions(_har([
            _entry(http_version="HTTP/1.1"),
            _entry(http_version="h3", connection="2"),
        ]))
        assert result.stats.http1_or_h3 == 2
        assert result.records == []

    def test_bad_pageref_dropped(self):
        result = read_sessions(_har([_entry(pageref="page_404")]))
        assert result.stats.bad_pageref == 1

    def test_missing_request_id_dropped(self):
        result = read_sessions(_har([_entry(request_id=None)]))
        assert result.stats.missing_request_id == 1

    def test_missing_certificate_dropped(self):
        result = read_sessions(_har([_entry(security=None)]))
        assert result.stats.missing_certificate == 1

    def test_inconsistent_ip_conservatively_excluded(self):
        """The paper's 653 requests with IPs inconsistent per socket."""
        result = read_sessions(_har([
            _entry(started_date_time=1.0),
            _entry(started_date_time=2.0, server_ip_address="10.0.0.99",
                   request_id="req_2"),
        ]))
        assert result.stats.inconsistent_ip == 1
        assert result.stats.accepted == 1
        assert len(result.records) == 1
        assert result.records[0].ip == "10.0.0.1"

    def test_session_reconstruction_groups_by_socket(self):
        result = read_sessions(_har([
            _entry(connection="1", started_date_time=1.0),
            _entry(connection="2", started_date_time=2.0, request_id="req_2",
                   url="https://b.example.com/y",
                   security=HarSecurityDetails(subject_name="b.example.com",
                                               san_list=("b.example.com",),
                                               issuer="CA")),
            _entry(connection="1", started_date_time=3.0, request_id="req_3"),
        ]))
        assert len(result.records) == 2
        first = next(r for r in result.records if r.connection_id == 1)
        assert len(first.requests) == 2
        assert first.domain == "a.example.com"

    def test_initial_domain_is_earliest_request(self):
        result = read_sessions(_har([
            _entry(started_date_time=5.0, url="https://late.example.com/x"),
            _entry(started_date_time=1.0, request_id="req_2"),
        ]))
        assert result.records[0].domain == "a.example.com"
