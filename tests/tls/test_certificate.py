"""Tests for the certificate model."""

from __future__ import annotations

import pytest

from repro.tls.certificate import Certificate


def _cert(sans, **kwargs):
    return Certificate(serial=1, subject=sans[0].lstrip("*."),
                       sans=tuple(sans), issuer_org="Test CA", **kwargs)


class TestCertificate:
    def test_covers_plain_and_wildcard(self):
        cert = _cert(["example.com", "*.example.com"])
        assert cert.covers("example.com")
        assert cert.covers("img.example.com")
        assert not cert.covers("other.com")
        assert not cert.covers("a.b.example.com")

    def test_sans_normalized_and_deduplicated(self):
        cert = _cert(["Example.COM", "example.com", "*.Example.com"])
        assert cert.sans == ("example.com", "*.example.com")

    def test_requires_sans(self):
        with pytest.raises(ValueError):
            Certificate(serial=1, subject="x", sans=(), issuer_org="Test CA")

    def test_rejects_invalid_san(self):
        with pytest.raises(ValueError):
            _cert(["bad_host.com"])

    def test_validity_window(self):
        cert = _cert(["example.com"], not_before=100.0, not_after=200.0)
        assert not cert.is_valid_at(99.9)
        assert cert.is_valid_at(100.0)
        assert cert.is_valid_at(199.9)
        assert not cert.is_valid_at(200.0)

    def test_empty_validity_window_rejected(self):
        with pytest.raises(ValueError):
            _cert(["example.com"], not_before=200.0, not_after=200.0)

    def test_covered_hostnames_filter(self):
        cert = _cert(["*.example.com"])
        assert cert.covered_hostnames(
            ["a.example.com", "example.com", "b.example.com"]
        ) == ["a.example.com", "b.example.com"]

    def test_fingerprint_stable(self):
        cert = _cert(["example.com"])
        assert cert.fingerprint == "Test CA#1"

    def test_frozen(self):
        cert = _cert(["example.com"])
        with pytest.raises(AttributeError):
            cert.serial = 2
