"""Tests for RFC 6125-subset hostname verification."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tls.verify import hostname_matches, is_valid_san_pattern


class TestHostnameMatches:
    @pytest.mark.parametrize(
        "pattern, host, expected",
        [
            ("example.com", "example.com", True),
            ("Example.COM", "example.com", True),
            ("example.com", "www.example.com", False),
            ("*.example.com", "img.example.com", True),
            ("*.example.com", "example.com", False),
            ("*.example.com", "a.b.example.com", False),
            ("*.b.example.com", "a.b.example.com", True),
            ("*.google-analytics.com", "www.google-analytics.com", True),
            ("*.com", "example.com", False),  # wildcard over a public suffix
            ("*.co.uk", "example.co.uk", False),
            ("example.com", "exampleXcom", False),
        ],
    )
    def test_cases(self, pattern, host, expected):
        assert hostname_matches(pattern, host) is expected

    def test_invalid_hostname_never_matches(self):
        assert not hostname_matches("*.example.com", "bad_host.example.com")

    @given(
        st.lists(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=6),
            min_size=2,
            max_size=4,
        )
    )
    def test_wildcard_matches_exactly_one_extra_label(self, parts):
        base = ".".join(parts) + ".com"
        pattern = f"*.{base}"
        assert hostname_matches(pattern, f"x.{base}")
        assert not hostname_matches(pattern, base)
        assert not hostname_matches(pattern, f"x.y.{base}")


class TestSanPatternValidity:
    @pytest.mark.parametrize(
        "pattern", ["example.com", "*.example.com", "a.b.c.example.io"]
    )
    def test_valid(self, pattern):
        assert is_valid_san_pattern(pattern)

    @pytest.mark.parametrize("pattern", ["", "bad_host.com", "*.-x.com"])
    def test_invalid(self, pattern):
        assert not is_valid_san_pattern(pattern)
