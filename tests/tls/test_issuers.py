"""Tests for certificate authorities and the issuer registry."""

from __future__ import annotations

import pytest

from repro.tls.issuers import (
    GOOGLE_TRUST_SERVICES,
    LETS_ENCRYPT,
    WELL_KNOWN_ISSUERS,
    CertificateAuthority,
    IssuerRegistry,
)


class TestCertificateAuthority:
    def test_serials_increment(self):
        ca = CertificateAuthority(org=LETS_ENCRYPT)
        a = ca.issue(["a.example.com"])
        b = ca.issue(["b.example.com"])
        assert (a.serial, b.serial) == (1, 2)
        assert ca.issued == 2

    def test_issuer_org_stamped(self):
        ca = CertificateAuthority(org=GOOGLE_TRUST_SERVICES)
        assert ca.issue(["x.example.com"]).issuer_org == GOOGLE_TRUST_SERVICES

    def test_subject_defaults_to_first_san(self):
        ca = CertificateAuthority(org=LETS_ENCRYPT)
        cert = ca.issue(["*.example.com", "example.com"])
        assert cert.subject == "example.com"

    def test_lifetime(self):
        ca = CertificateAuthority(org=LETS_ENCRYPT, default_lifetime_s=100.0)
        cert = ca.issue(["a.example.com"], not_before=10.0)
        assert cert.not_after == 110.0
        custom = ca.issue(["b.example.com"], not_before=0.0, lifetime_s=5.0)
        assert custom.not_after == 5.0

    def test_empty_sans_rejected(self):
        ca = CertificateAuthority(org=LETS_ENCRYPT)
        with pytest.raises(ValueError):
            ca.issue([])


class TestIssuerRegistry:
    def test_authority_is_singleton_per_org(self):
        registry = IssuerRegistry()
        assert registry.authority("X") is registry.authority("X")

    def test_issue_convenience(self):
        registry = IssuerRegistry()
        cert = registry.issue(LETS_ENCRYPT, ["a.example.com"])
        assert cert.issuer_org == LETS_ENCRYPT
        assert registry.organizations == [LETS_ENCRYPT]

    def test_serials_independent_across_orgs(self):
        registry = IssuerRegistry()
        a = registry.issue("Org A", ["a.example.com"])
        b = registry.issue("Org B", ["b.example.com"])
        assert a.serial == 1 and b.serial == 1

    def test_well_known_list_matches_paper_tables(self):
        assert LETS_ENCRYPT in WELL_KNOWN_ISSUERS
        assert GOOGLE_TRUST_SERVICES in WELL_KNOWN_ISSUERS
        assert len(WELL_KNOWN_ISSUERS) == 11
