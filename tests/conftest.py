"""Shared fixtures.

Expensive artefacts (the ecosystem, a full small study) are
session-scoped: they are deterministic, read-only for tests, and take a
few seconds to build.
"""

from __future__ import annotations

import importlib.util
import random
import sys
from pathlib import Path

import pytest

from repro.analysis.study import Study, StudyConfig
from repro.browser.browser import BrowserConfig, ChromiumBrowser
from repro.util.clock import SimClock
from repro.web.ecosystem import Ecosystem, EcosystemConfig

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


@pytest.fixture(scope="session")
def small_ecosystem() -> Ecosystem:
    """A compact but fully wired world (120 sites)."""
    return Ecosystem.generate(EcosystemConfig(seed=7, n_sites=120))


@pytest.fixture(scope="session")
def small_study() -> Study:
    """A complete study over a 200-site universe."""
    return Study.run(StudyConfig(seed=7, n_sites=200, dns_study_days=0.25))


@pytest.fixture(scope="session")
def golden_regen():
    """The tests/golden/regenerate.py module (tests are not a package)."""
    spec = importlib.util.spec_from_file_location(
        "golden_regenerate", GOLDEN_DIR / "regenerate.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("golden_regenerate", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="session")
def golden_study(golden_regen) -> Study:
    """The pinned-config study (seed=7, n=120), shared by every golden
    assertion so the suite builds it exactly once."""
    return Study.run(golden_regen.golden_config())


@pytest.fixture(scope="session")
def faulted_golden_study(golden_regen) -> Study:
    """The canonical faulted study (same scale, chaos profile)."""
    return Study.run(golden_regen.faulted_config())


@pytest.fixture(scope="session")
def h3_golden_study(golden_regen) -> Study:
    """The canonical h3-rollout study (same scale, broad profile)."""
    return Study.run(golden_regen.h3_config())


@pytest.fixture(scope="session")
def longitudinal_golden_result(golden_regen):
    """The pinned longitudinal sequence (mixed policy, epochs 0..2).

    Session-scoped for the same reason as the golden studies: the
    golden diff and the evolve differential suite both consume it, and
    it costs three n=120 pipelines.
    """
    from repro.evolve import run_longitudinal

    return run_longitudinal(
        golden_regen.golden_config(),
        policy=golden_regen.LONGITUDINAL_POLICY,
        epochs=golden_regen.LONGITUDINAL_EPOCHS,
    )


@pytest.fixture()
def browser(small_ecosystem: Ecosystem) -> ChromiumBrowser:
    """A fresh browser over the shared world (own clock/resolver)."""
    return ChromiumBrowser(
        ecosystem=small_ecosystem,
        resolver=small_ecosystem.make_resolver(),
        clock=SimClock(),
        rng=random.Random(1234),
    )


@pytest.fixture()
def browser_factory(small_ecosystem: Ecosystem):
    """Factory for browsers with custom configs over the shared world."""

    def make(config: BrowserConfig | None = None, seed: int = 1234) -> ChromiumBrowser:
        return ChromiumBrowser(
            ecosystem=small_ecosystem,
            resolver=small_ecosystem.make_resolver(),
            clock=SimClock(),
            rng=random.Random(seed),
            config=config or BrowserConfig(),
        )

    return make
