"""Shared fixtures.

Expensive artefacts (the ecosystem, a full small study) are
session-scoped: they are deterministic, read-only for tests, and take a
few seconds to build.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.study import Study, StudyConfig
from repro.browser.browser import BrowserConfig, ChromiumBrowser
from repro.util.clock import SimClock
from repro.web.ecosystem import Ecosystem, EcosystemConfig


@pytest.fixture(scope="session")
def small_ecosystem() -> Ecosystem:
    """A compact but fully wired world (120 sites)."""
    return Ecosystem.generate(EcosystemConfig(seed=7, n_sites=120))


@pytest.fixture(scope="session")
def small_study() -> Study:
    """A complete study over a 200-site universe."""
    return Study.run(StudyConfig(seed=7, n_sites=200, dns_study_days=0.25))


@pytest.fixture()
def browser(small_ecosystem: Ecosystem) -> ChromiumBrowser:
    """A fresh browser over the shared world (own clock/resolver)."""
    return ChromiumBrowser(
        ecosystem=small_ecosystem,
        resolver=small_ecosystem.make_resolver(),
        clock=SimClock(),
        rng=random.Random(1234),
    )


@pytest.fixture()
def browser_factory(small_ecosystem: Ecosystem):
    """Factory for browsers with custom configs over the shared world."""

    def make(config: BrowserConfig | None = None, seed: int = 1234) -> ChromiumBrowser:
        return ChromiumBrowser(
            ecosystem=small_ecosystem,
            resolver=small_ecosystem.make_resolver(),
            clock=SimClock(),
            rng=random.Random(seed),
            config=config or BrowserConfig(),
        )

    return make
