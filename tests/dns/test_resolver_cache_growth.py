"""Regression tests for resolver cache growth (PR 3).

Before the fix, expired entries were only overwritten on re-query and
never deleted, so any name queried once stayed cached forever — on a
long ``dns_study_days`` horizon the cache grew without bound.  Lazy
deletion on lookup plus the periodic sweep keep it bounded by the
*live* entries.
"""

from __future__ import annotations

import pytest

from repro.dns.loadbalancer import RotationPolicy
from repro.dns.resolver import RecursiveResolver, ResolverInfo
from repro.dns.zone import AddressEntry, DnsNamespace
from repro.dnsstudy.study import DnsLoadBalancingStudy
from repro.web.ecosystem import Ecosystem, EcosystemConfig


def _namespace(names: int, ttl: int = 60) -> DnsNamespace:
    namespace = DnsNamespace()
    for index in range(names):
        namespace.add_address(
            f"name{index:03d}.example.com",
            AddressEntry(
                pool=(f"10.9.{index}.1", f"10.9.{index}.2"),
                policy=RotationPolicy(answer_count=1, period_s=360),
                ttl=ttl,
            ),
        )
    return namespace


def _resolver(namespace, sweep_interval: int = 4096) -> RecursiveResolver:
    return RecursiveResolver(
        namespace=namespace,
        info=ResolverInfo(resolver_id="growth", ip="0.0.0.0",
                          country="X", operator="t"),
        sweep_interval=sweep_interval,
    )


class TestLazyDeletion:
    def test_expired_entry_is_deleted_on_lookup(self):
        resolver = _resolver(_namespace(1))
        resolver.resolve("name000.example.com", now=0.0)
        assert resolver.cache_size == 1
        resolver.resolve("name000.example.com", now=61.0)  # past TTL
        # The expired entry was deleted and replaced by the fresh one.
        assert resolver.cache_size == 1
        assert resolver.expired_evictions == 1

    def test_periodic_sweep_drops_never_requeried_names(self):
        # 50 names queried once at t=0; afterwards only name000 is ever
        # asked again.  Without the sweep the 49 dead entries would
        # linger forever.
        resolver = _resolver(_namespace(50), sweep_interval=10)
        for index in range(50):
            resolver.resolve(f"name{index:03d}.example.com", now=0.0)
        assert resolver.cache_size == 50
        for step in range(1, 12):
            resolver.resolve("name000.example.com", now=100.0 + step)
        # All TTLs expired at t=60; the sweep fired within 10 queries.
        assert resolver.cache_size == 1
        assert resolver.expired_evictions >= 49

    def test_sweep_keeps_live_entries(self):
        resolver = _resolver(_namespace(5, ttl=10_000))
        for index in range(5):
            resolver.resolve(f"name{index:03d}.example.com", now=0.0)
        assert resolver.sweep(now=5_000.0) == 0
        assert resolver.cache_size == 5
        # Every later lookup is still a hit: sweeping never changed
        # observable resolution behaviour.
        for index in range(5):
            resolver.resolve(f"name{index:03d}.example.com", now=5_001.0)
        assert resolver.cache_hits == 5


@pytest.mark.slow
class TestLongDnsStudyRun:
    def test_cache_stays_bounded_over_long_horizon(self):
        """A multi-day DNS study must not accumulate dead cache entries.

        The study queries a fixed pair set every 6 simulated minutes
        through the 14-resolver fleet; TTLs are far shorter than the
        horizon, so without eviction every resolver's cache would hold
        one dead entry per name ever asked.  Bounded means: never more
        entries than distinct queried names, and by the end almost all
        of the churn has been evicted.
        """
        ecosystem = Ecosystem.generate(EcosystemConfig(seed=7, n_sites=50))
        study = DnsLoadBalancingStudy(
            ecosystem=ecosystem, duration_s=5 * 24 * 3600.0
        )
        result = study.run()
        assert result.timelines  # the study actually measured something
        distinct_names = {
            name
            for timeline in result.timelines
            for name in (timeline.pair.domain, timeline.pair.prev)
        }
        for resolver in study.resolvers:
            assert resolver.queries > 0
            assert resolver.cache_size <= len(distinct_names)
            # The long horizon forces many expiries; the sweep/lazy
            # deletion must have reclaimed them.
            assert resolver.expired_evictions > 0
