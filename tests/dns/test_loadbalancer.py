"""Tests for load-balancing policies."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns.loadbalancer import AnycastPolicy, RotationPolicy, StaticPolicy

POOL = tuple(f"10.0.0.{i}" for i in range(1, 9))


class TestStaticPolicy:
    def test_returns_full_pool_in_order(self):
        policy = StaticPolicy()
        assert policy.select(POOL, salt="x", now=0, resolver_id="r") == POOL

    def test_time_invariant(self):
        policy = StaticPolicy()
        assert policy.select(POOL, salt="x", now=0, resolver_id="r") == policy.select(
            POOL, salt="x", now=99999, resolver_id="other"
        )


class TestAnycastPolicy:
    def test_single_stable_answer(self):
        policy = AnycastPolicy()
        answers = {
            policy.select(POOL, salt=s, now=t, resolver_id=r)
            for s in ("a", "b")
            for t in (0, 5000)
            for r in ("r1", "r2")
        }
        assert answers == {(POOL[0],)}

    def test_empty_pool(self):
        assert AnycastPolicy().select((), salt="x", now=0, resolver_id="r") == ()


class TestRotationPolicy:
    def test_answer_count(self):
        policy = RotationPolicy(answer_count=3)
        answers = policy.select(POOL, salt="a", now=0, resolver_id="r")
        assert len(answers) == 3
        assert len(set(answers)) == 3

    def test_answers_subset_of_pool(self):
        policy = RotationPolicy(answer_count=2)
        answers = policy.select(POOL, salt="a", now=123, resolver_id="r")
        assert set(answers) <= set(POOL)

    def test_stable_within_period(self):
        policy = RotationPolicy(answer_count=2, period_s=360)
        a = policy.select(POOL, salt="s", now=0, resolver_id="r")
        b = policy.select(POOL, salt="s", now=359.9, resolver_id="r")
        assert a == b

    def test_rotates_across_periods(self):
        policy = RotationPolicy(answer_count=1, period_s=360)
        answers = {
            policy.select(POOL, salt="s", now=360 * slot, resolver_id="r")
            for slot in range(30)
        }
        assert len(answers) > 1

    def test_unsynchronized_salts_differ(self):
        """Two domains over the same pool usually get different answers."""
        policy = RotationPolicy(answer_count=1)
        differing = sum(
            policy.select(POOL, salt="domain-a", now=360 * slot, resolver_id="r")
            != policy.select(POOL, salt="domain-b", now=360 * slot, resolver_id="r")
            for slot in range(50)
        )
        assert differing > 25

    def test_shared_salt_synchronizes(self):
        """The mitigation: same salt → identical answers, always."""
        policy = RotationPolicy(answer_count=2)
        for slot in range(50):
            assert policy.select(
                POOL, salt="shared", now=360 * slot, resolver_id="r"
            ) == policy.select(POOL, salt="shared", now=360 * slot, resolver_id="r")

    def test_per_resolver_variation(self):
        policy = RotationPolicy(answer_count=1)
        answers = {
            policy.select(POOL, salt="s", now=0, resolver_id=f"r{i}")
            for i in range(10)
        }
        assert len(answers) > 1

    def test_global_rotation_ignores_resolver(self):
        policy = RotationPolicy(answer_count=1, per_resolver=False)
        answers = {
            policy.select(POOL, salt="s", now=0, resolver_id=f"r{i}")
            for i in range(10)
        }
        assert len(answers) == 1

    def test_answer_count_capped_at_pool(self):
        policy = RotationPolicy(answer_count=20)
        answers = policy.select(POOL, salt="s", now=0, resolver_id="r")
        assert len(answers) == len(POOL)

    def test_empty_pool(self):
        policy = RotationPolicy()
        assert policy.select((), salt="s", now=0, resolver_id="r") == ()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RotationPolicy(answer_count=0)
        with pytest.raises(ValueError):
            RotationPolicy(period_s=0)

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.text(min_size=1, max_size=8),
    )
    def test_deterministic(self, now, salt):
        policy = RotationPolicy(answer_count=2)
        assert policy.select(POOL, salt=salt, now=now, resolver_id="r") == (
            policy.select(POOL, salt=salt, now=now, resolver_id="r")
        )
