"""Tests for caching recursive resolvers."""

from __future__ import annotations

import pytest

from repro.dns.loadbalancer import RotationPolicy
from repro.dns.resolver import RecursiveResolver, ResolverInfo, default_fleet
from repro.dns.zone import AddressEntry, DnsNamespace


@pytest.fixture()
def namespace():
    ns = DnsNamespace()
    ns.add_address(
        "rot.example.com",
        AddressEntry(
            pool=tuple(f"10.0.0.{i}" for i in range(1, 9)),
            policy=RotationPolicy(answer_count=1, period_s=100),
            ttl=120,
        ),
    )
    return ns


def _resolver(ns, rid="r1"):
    return RecursiveResolver(
        namespace=ns,
        info=ResolverInfo(resolver_id=rid, ip="0.0.0.0", country="X", operator="t"),
    )


class TestRecursiveResolver:
    def test_cache_hit_within_ttl(self, namespace):
        resolver = _resolver(namespace)
        first = resolver.resolve("rot.example.com", now=0.0)
        # The rotation would give a different answer at t=110 (period
        # 100), but the cache (TTL 120) still serves the old one.
        second = resolver.resolve("rot.example.com", now=110.0)
        assert first.ips == second.ips
        assert resolver.cache_hits == 1

    def test_cache_expires_after_ttl(self, namespace):
        resolver = _resolver(namespace)
        resolver.resolve("rot.example.com", now=0.0)
        resolver.resolve("rot.example.com", now=121.0)
        assert resolver.cache_hits == 0
        assert resolver.queries == 2

    def test_flush_clears_cache(self, namespace):
        resolver = _resolver(namespace)
        resolver.resolve("rot.example.com", now=0.0)
        resolver.flush()
        resolver.resolve("rot.example.com", now=1.0)
        assert resolver.cache_hits == 0

    def test_vantage_points_can_disagree(self, namespace):
        answers = {
            _resolver(namespace, rid=f"r{i}").resolve("rot.example.com", now=0.0).ips
            for i in range(10)
        }
        assert len(answers) > 1


class TestDefaultFleet:
    def test_fourteen_resolvers(self, namespace):
        fleet = default_fleet(namespace)
        assert len(fleet) == 14

    def test_contains_papers_vantage_points(self, namespace):
        fleet = default_fleet(namespace)
        operators = {resolver.info.operator for resolver in fleet}
        assert "RWTH Aachen University" in operators
        assert "KT Corporation" in operators
        countries = [resolver.info.country for resolver in fleet]
        assert countries.count("Germany") == 3

    def test_no_ecs_support(self, namespace):
        # The paper "checked that ECS is not supported" for its fleet.
        assert not any(r.info.supports_ecs for r in default_fleet(namespace))

    def test_unique_ids(self, namespace):
        fleet = default_fleet(namespace)
        ids = [resolver.resolver_id for resolver in fleet]
        assert len(set(ids)) == len(ids)
