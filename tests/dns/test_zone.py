"""Tests for the authoritative namespace."""

from __future__ import annotations

import pytest

from repro.dns.loadbalancer import RotationPolicy
from repro.dns.records import Answer
from repro.dns.zone import AddressEntry, AliasEntry, DnsNamespace, NxDomain


@pytest.fixture()
def namespace():
    ns = DnsNamespace()
    ns.add_address("a.example.com", AddressEntry(pool=("10.0.0.1", "10.0.0.2")))
    ns.add_alias("www.example.com", AliasEntry(target="a.example.com"))
    return ns


class TestDnsNamespace:
    def test_direct_resolution(self, namespace):
        answer = namespace.authoritative_answer(
            "a.example.com", now=0, resolver_id="r"
        )
        assert answer.ips == ("10.0.0.1", "10.0.0.2")
        assert answer.cname_chain == ()

    def test_cname_chain(self, namespace):
        answer = namespace.authoritative_answer(
            "www.example.com", now=0, resolver_id="r"
        )
        assert answer.name == "www.example.com"
        assert answer.cname_chain == ("a.example.com",)
        assert answer.canonical_name == "a.example.com"
        assert answer.primary_ip == "10.0.0.1"

    def test_nxdomain(self, namespace):
        with pytest.raises(NxDomain):
            namespace.authoritative_answer("missing.example.com", now=0,
                                           resolver_id="r")

    def test_dangling_cname_raises_nxdomain(self):
        ns = DnsNamespace()
        ns.add_alias("x.example.com", AliasEntry(target="gone.example.com"))
        with pytest.raises(NxDomain):
            ns.authoritative_answer("x.example.com", now=0, resolver_id="r")

    def test_cname_loop_detected(self):
        ns = DnsNamespace()
        ns.add_alias("a.example.com", AliasEntry(target="b.example.com"))
        ns.add_alias("b.example.com", AliasEntry(target="a.example.com"))
        with pytest.raises(ValueError, match="chain too long"):
            ns.authoritative_answer("a.example.com", now=0, resolver_id="r")

    def test_cname_to_self_rejected(self):
        ns = DnsNamespace()
        with pytest.raises(ValueError):
            ns.add_alias("a.example.com", AliasEntry(target="a.example.com"))

    def test_ttl_is_minimum_along_chain(self):
        ns = DnsNamespace()
        ns.add_address("a.example.com", AddressEntry(pool=("10.0.0.1",), ttl=300))
        ns.add_alias("b.example.com", AliasEntry(target="a.example.com", ttl=60))
        answer = ns.authoritative_answer("b.example.com", now=0, resolver_id="r")
        assert answer.ttl == 60

    def test_removal_makes_unreachable(self, namespace):
        namespace.remove("a.example.com")
        with pytest.raises(NxDomain):
            namespace.authoritative_answer("a.example.com", now=0, resolver_id="r")

    def test_contains_and_len(self, namespace):
        assert "a.example.com" in namespace
        assert "A.EXAMPLE.COM" in namespace
        assert "nope.example.com" not in namespace
        assert len(namespace) == 2

    def test_invalid_hostname_rejected(self):
        ns = DnsNamespace()
        with pytest.raises(ValueError):
            ns.add_address("bad_host.com", AddressEntry(pool=("10.0.0.1",)))

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            AddressEntry(pool=())

    def test_policy_applied(self):
        ns = DnsNamespace()
        pool = tuple(f"10.0.0.{i}" for i in range(1, 9))
        ns.add_address(
            "lb.example.com",
            AddressEntry(pool=pool, policy=RotationPolicy(answer_count=1)),
        )
        answers = {
            ns.authoritative_answer(
                "lb.example.com", now=slot * 400.0, resolver_id="r"
            ).ips
            for slot in range(20)
        }
        assert len(answers) > 1


class TestAnswer:
    def test_normalizes_name(self):
        answer = Answer(name="WWW.Example.COM", ips=("10.0.0.1",))
        assert answer.name == "www.example.com"

    def test_rejects_negative_ttl(self):
        with pytest.raises(ValueError):
            Answer(name="a.example.com", ips=("10.0.0.1",), ttl=-1)

    def test_primary_ip_requires_addresses(self):
        answer = Answer(name="a.example.com", ips=())
        with pytest.raises(ValueError):
            answer.primary_ip
