"""Tests for EDNS Client Subnet handling (RFC 7871)."""

from __future__ import annotations

import pytest

from repro.dns.loadbalancer import RotationPolicy
from repro.dns.resolver import RecursiveResolver, ResolverInfo
from repro.dns.zone import AddressEntry, DnsNamespace


@pytest.fixture()
def namespace():
    ns = DnsNamespace()
    ns.add_address(
        "lb.example.com",
        AddressEntry(
            pool=tuple(f"10.0.0.{i}" for i in range(1, 17)),
            policy=RotationPolicy(answer_count=1),
            ttl=120,
        ),
    )
    return ns


def _resolver(ns, *, ecs: bool):
    return RecursiveResolver(
        namespace=ns,
        info=ResolverInfo(resolver_id="r-ecs" if ecs else "r-plain",
                          ip="0.0.0.0", country="X", operator="t",
                          supports_ecs=ecs),
    )


class TestEcs:
    def test_non_ecs_resolver_ignores_client_subnet(self, namespace):
        resolver = _resolver(namespace, ecs=False)
        answers = {
            resolver.resolve("lb.example.com", now=0.0,
                             client_subnet=f"192.0.{i}.0/24").ips
            for i in range(10)
        }
        # All clients share one cached answer — the paper's fleet.
        assert len(answers) == 1
        assert resolver.cache_hits == 9

    def test_ecs_resolver_varies_per_subnet(self, namespace):
        resolver = _resolver(namespace, ecs=True)
        answers = {
            resolver.resolve("lb.example.com", now=0.0,
                             client_subnet=f"192.0.{i}.0/24").ips
            for i in range(10)
        }
        assert len(answers) > 1

    def test_ecs_caches_per_subnet(self, namespace):
        resolver = _resolver(namespace, ecs=True)
        first = resolver.resolve("lb.example.com", now=0.0,
                                 client_subnet="192.0.2.0/24")
        again = resolver.resolve("lb.example.com", now=1.0,
                                 client_subnet="192.0.2.0/24")
        assert first.ips == again.ips
        assert resolver.cache_hits == 1

    def test_ecs_without_subnet_falls_back(self, namespace):
        resolver = _resolver(namespace, ecs=True)
        plain = resolver.resolve("lb.example.com", now=0.0)
        cached = resolver.resolve("lb.example.com", now=1.0)
        assert plain.ips == cached.ips
