"""Tests for the performance-impact models."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.classifier import classify_site
from repro.core.session import LifetimeModel, RequestSummary, SessionRecord
from repro.perf.congestion import SlowStartModel
from repro.perf.corpus import corpus_impact
from repro.perf.estimator import estimate_records
from repro.perf.latency import PathModel
from repro.perf.whatif import coalesce_records, whatif_site

_IDS = itertools.count(1)


def _record(domain, ip, sans, start, requests=()):
    return SessionRecord(
        connection_id=next(_IDS), domain=domain, ip=ip, port=443,
        sans=tuple(sans), issuer="CA", start=start, end=None,
        requests=tuple(requests),
    )


def _request(domain, size=10_000, finished=1.0):
    return RequestSummary(domain=domain, status=200, finished_at=finished,
                          body_size=size)


class TestPathModel:
    def test_rtt_deterministic_and_bounded(self):
        path = PathModel()
        for ip in ("10.0.0.1", "10.1.2.3", "10.200.9.9"):
            rtt = path.rtt_for(ip)
            assert path.min_rtt_s <= rtt <= path.max_rtt_s
            assert rtt == path.rtt_for(ip)

    def test_same_slash24_same_path(self):
        path = PathModel()
        assert path.rtt_for("10.0.0.1") == path.rtt_for("10.0.0.250")

    def test_vantage_changes_rtts(self):
        de = PathModel(vantage="DE")
        us = PathModel(vantage="US")
        ips = [f"10.{i}.0.1" for i in range(20)]
        assert any(de.rtt_for(ip) != us.rtt_for(ip) for ip in ips)


class TestSlowStart:
    def test_small_transfer_one_round(self):
        model = SlowStartModel()
        outcome = model.transfer(1_000, rtt_s=0.05)
        assert outcome.rounds == 1
        assert outcome.time_s == pytest.approx(0.05)

    def test_window_doubles(self):
        model = SlowStartModel()
        # 10 + 20 + 40 segments of 1460 B > 100 kB → 3 rounds.
        outcome = model.transfer(100_000, rtt_s=0.05, bandwidth_bps=1e9)
        assert outcome.rounds == 3
        assert outcome.final_cwnd_segments == 40

    def test_warm_window_saves_rounds(self):
        model = SlowStartModel()
        cold = model.transfer(100_000, rtt_s=0.05, bandwidth_bps=1e9)
        warm = model.transfer(
            100_000, rtt_s=0.05, bandwidth_bps=1e9,
            current_cwnd_segments=cold.final_cwnd_segments,
        )
        assert warm.rounds < cold.rounds

    def test_bandwidth_caps_window(self):
        model = SlowStartModel()
        # 1 Mbit/s, 50 ms → BDP ≈ 6.25 kB ≈ 4 segments < initial window.
        outcome = model.transfer(50_000, rtt_s=0.05, bandwidth_bps=1e6)
        assert outcome.final_cwnd_segments == SlowStartModel().initial_cwnd_segments

    def test_zero_bytes(self):
        assert SlowStartModel().transfer(0, rtt_s=0.05).rounds == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SlowStartModel().transfer(-1, rtt_s=0.05)

    @given(st.integers(min_value=0, max_value=5_000_000))
    def test_time_monotone_in_size(self, size):
        model = SlowStartModel()
        smaller = model.transfer(size, rtt_s=0.05)
        larger = model.transfer(size + 50_000, rtt_s=0.05)
        assert larger.time_s >= smaller.time_s


class TestEstimator:
    def test_counts_components(self):
        records = [
            _record("a.com", "10.0.0.1", ["a.com"], 0.0,
                    requests=[_request("a.com"), _request("a.com")]),
            _record("b.com", "10.0.1.1", ["b.com"], 1.0,
                    requests=[_request("b.com")]),
        ]
        estimate = estimate_records(records)
        assert estimate.connections == 2
        assert estimate.requests == 3
        assert estimate.dns_lookups == 2
        assert estimate.setup_time_s > 0
        assert estimate.transfer_time_s > 0
        assert 0 < estimate.header_compression_ratio <= 1.0

    def test_dns_cache_shared_across_connections(self):
        records = [
            _record("a.com", "10.0.0.1", ["a.com"], 0.0),
            _record("a.com", "10.0.0.2", ["a.com"], 1.0),
        ]
        estimate = estimate_records(records)
        assert estimate.dns_lookups == 1

    def test_http1_records_ignored(self):
        record = SessionRecord(
            connection_id=next(_IDS), domain="a.com", ip="10.0.0.1", port=443,
            sans=("a.com",), issuer="CA", start=0.0, end=None,
            protocol="http/1.1",
        )
        assert estimate_records([record]).connections == 0


class TestCoalesce:
    def _redundant_site(self):
        return [
            _record("gtm.x.com", "10.0.0.1", ["*.x.com"], 0.0,
                    requests=[_request("gtm.x.com", 90_000, 0.5)]),
            _record("ga.x.com", "10.0.1.1", ["*.x.com"], 1.0,
                    requests=[_request("ga.x.com", 45_000, 1.5)]),
            _record("beacon.x.com", "10.0.1.1", ["*.x.com"], 2.0,
                    requests=[_request("beacon.x.com", 100, 2.5)]),
        ]

    def test_merges_redundant_connections(self):
        records = self._redundant_site()
        classification = classify_site("s", records,
                                       model=LifetimeModel.ENDLESS)
        survivors = coalesce_records(records, classification)
        assert len(survivors) < len(records)
        total_requests = sum(len(record.requests) for record in survivors)
        assert total_requests == 3  # no request lost

    def test_transitive_merging_terminates(self):
        records = self._redundant_site()
        classification = classify_site("s", records,
                                       model=LifetimeModel.ENDLESS)
        # ga merges into gtm; beacon merges into ga (CRED) → must land
        # on gtm transitively without infinite loops.
        survivors = coalesce_records(records, classification)
        assert len(survivors) >= 1

    def test_clean_site_unchanged(self):
        records = [
            _record("a.com", "10.0.0.1", ["a.com"], 0.0,
                    requests=[_request("a.com")]),
            _record("z.net", "10.0.9.1", ["z.net"], 1.0,
                    requests=[_request("z.net")]),
        ]
        classification = classify_site("s", records,
                                       model=LifetimeModel.ENDLESS)
        survivors = coalesce_records(records, classification)
        assert len(survivors) == 2


class TestWhatIf:
    def test_savings_non_negative(self):
        records = TestCoalesce()._redundant_site()
        classification = classify_site("s", records,
                                       model=LifetimeModel.ENDLESS)
        result = whatif_site("s", records, classification)
        assert result.connections_saved == classification.redundant_count
        assert result.setup_time_saved_s > 0
        assert result.header_bytes_saved >= 0
        assert result.total_time_saved_s > 0
        assert 0 < result.relative_saving < 1

    def test_clean_site_no_savings(self):
        records = [_record("a.com", "10.0.0.1", ["a.com"], 0.0,
                           requests=[_request("a.com")])]
        classification = classify_site("s", records,
                                       model=LifetimeModel.ENDLESS)
        result = whatif_site("s", records, classification)
        assert result.connections_saved == 0
        assert result.total_time_saved_s == pytest.approx(0.0)


class TestCorpusImpact:
    def test_over_real_dataset(self, small_study):
        dataset = small_study.dataset("alexa")
        impact = corpus_impact(dataset, {})
        assert len(impact.results) == len(dataset.classifications)
        assert impact.total_connections_saved == (
            dataset.report.redundant_connections
        )
        assert impact.total_setup_time_saved_s > 0
        assert 0 <= impact.median_relative_saving() < 1
        assert "avoidable connections" in impact.render()
