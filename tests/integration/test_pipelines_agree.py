"""Integration: the three record sources must agree.

The browser's in-memory truth, the HAR pipeline (written without noise,
then sanitised) and the NetLog pipeline all describe the same visit; the
classifier must reach identical verdicts from each.
"""

from __future__ import annotations

import pytest

from repro.core.causes import Cause
from repro.core.classifier import classify_site
from repro.core.session import LifetimeModel, records_from_visit
from repro.har.reader import read_sessions
from repro.har.writer import HarNoiseConfig, write_har
from repro.netlog.parser import parse_sessions

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def visits(small_ecosystem):
    import random

    from repro.browser.browser import ChromiumBrowser
    from repro.util.clock import SimClock

    browser = ChromiumBrowser(
        ecosystem=small_ecosystem,
        resolver=small_ecosystem.make_resolver(),
        clock=SimClock(),
        rng=random.Random(99),
    )
    return [browser.visit(site.domain) for site in small_ecosystem.websites[:25]]


def _summary(classification):
    return (
        classification.redundant_count,
        {cause: classification.count(cause) for cause in Cause},
    )


class TestPipelineAgreement:
    def test_netlog_matches_browser_truth(self, visits):
        for visit in visits:
            truth = classify_site(visit.domain, records_from_visit(visit),
                                  model=LifetimeModel.ACTUAL)
            netlog = classify_site(visit.domain,
                                   parse_sessions(visit.netlog).records,
                                   model=LifetimeModel.ACTUAL)
            assert _summary(netlog) == _summary(truth), visit.domain

    def test_har_matches_browser_truth_under_endless(self, visits):
        for visit in visits:
            truth = classify_site(visit.domain, records_from_visit(visit),
                                  model=LifetimeModel.ENDLESS)
            har = write_har(visit, noise=HarNoiseConfig.none())
            har_cls = classify_site(visit.domain, read_sessions(har).records,
                                    model=LifetimeModel.ENDLESS)
            assert _summary(har_cls) == _summary(truth), visit.domain

    def test_har_and_netlog_agree_under_endless(self, visits):
        for visit in visits:
            har = write_har(visit, noise=HarNoiseConfig.none())
            har_cls = classify_site(visit.domain, read_sessions(har).records,
                                    model=LifetimeModel.ENDLESS)
            netlog_cls = classify_site(visit.domain,
                                       parse_sessions(visit.netlog).records,
                                       model=LifetimeModel.ENDLESS)
            assert _summary(har_cls) == _summary(netlog_cls), visit.domain
