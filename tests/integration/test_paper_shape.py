"""Integration: the reproduction must match the paper's *shape*.

Absolute counts differ (synthetic corpus, thousands of sites instead of
millions), but the qualitative findings — who wins, orderings, what
vanishes under the patch — must hold.  Every assertion cites the paper
statement it checks.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import figure2
from repro.analysis.headline import headline
from repro.core.causes import Cause

pytestmark = pytest.mark.slow


class TestTable1Shape:
    def test_most_sites_open_redundant_connections(self, small_study):
        """§5.1: 76 % of HAR (endless) and 95 % of Alexa sites."""
        har = small_study.dataset("har-endless").report
        alexa = small_study.dataset("alexa").report
        assert har.redundant_site_share() > 0.6
        assert alexa.redundant_site_share() > 0.85
        assert alexa.redundant_site_share() > har.redundant_site_share()

    def test_immediate_is_a_lower_bound(self, small_study):
        """§4.2.1: immediate closes give a lower bound."""
        endless = small_study.dataset("har-endless").report
        immediate = small_study.dataset("har-immediate").report
        assert immediate.redundant_sites < endless.redundant_sites
        assert immediate.redundant_connections < endless.redundant_connections
        for cause in Cause:
            assert immediate.by_cause[cause].connections <= (
                endless.by_cause[cause].connections
            )

    def test_cause_ordering_by_sites(self, small_study):
        """§5.2: IP affects most sites, then CRED, then CERT."""
        for key in ("har-endless", "alexa"):
            report = small_study.dataset(key).report
            ip = report.by_cause[Cause.IP].sites
            cred = report.by_cause[Cause.CRED].sites
            cert = report.by_cause[Cause.CERT].sites
            assert ip > cred > cert, key

    def test_cause_ordering_by_connections(self, small_study):
        """§5.2: IP ≫ CRED > CERT connection-wise."""
        for key in ("har-endless", "alexa"):
            report = small_study.dataset(key).report
            ip = report.by_cause[Cause.IP].connections
            cred = report.by_cause[Cause.CRED].connections
            cert = report.by_cause[Cause.CERT].connections
            assert ip > cred > cert, key
            assert ip > 3 * cred, key  # "far fewer connections than IP"

    def test_cert_is_a_small_minority_of_connections(self, small_study):
        """§5.2: CERT affects ~1 % of connections."""
        report = small_study.dataset("har-endless").report
        assert report.connection_share(Cause.CERT) < 0.05


class TestPatchedRunShape:
    def test_cred_vanishes_completely(self, small_study):
        """§5.3.3: 'the CRED cases vanish completely'."""
        report = small_study.dataset("alexa-nofetch").report
        assert report.by_cause[Cause.CRED].connections == 0
        assert report.by_cause[Cause.CRED].sites == 0

    def test_other_causes_also_reduce(self, small_study):
        """§5.3.3: 'at first look counter-intuitively, other causes
        also reduce' (multi-cause connections disappear)."""
        fetch = small_study.dataset("alexa").report
        patched = small_study.dataset("alexa-nofetch").report
        assert patched.by_cause[Cause.IP].connections <= (
            fetch.by_cause[Cause.IP].connections
        )
        assert patched.h2_connections < fetch.h2_connections

    def test_quarter_of_redundancy_removed(self, small_study):
        """§5.3.3: 'Disabling it reduces redundancy by 25 %'."""
        stats = headline(small_study)
        assert 0.10 <= stats.redundant_reduction_share <= 0.40


class TestAttributionShape:
    def test_google_analytics_is_top_ip_origin(self, small_study):
        """Table 2: www.google-analytics.com leads with GTM as prev."""
        for key in ("har-endless", "alexa"):
            attribution = small_study.dataset(key).attribution
            top = attribution.top_ip_origins(1)[0]
            assert top.origin == "www.google-analytics.com", key
            assert top.top_previous(1)[0][0] == "www.googletagmanager.com"

    def test_facebook_among_top_ip_origins(self, small_study):
        attribution = small_study.dataset("har-endless").attribution
        top10 = {a.origin for a in attribution.top_ip_origins(10)}
        assert "www.facebook.com" in top10

    def test_google_and_facebook_top_ases(self, small_study):
        """Table 6: GOOGLE #1; FACEBOOK in the top ASes."""
        attribution = small_study.dataset("har-endless").attribution
        ases = [name for name, _, _ in attribution.top_ip_ases(10)]
        assert ases[0] == "GOOGLE"
        assert "FACEBOOK" in ases

    def test_gts_and_le_lead_cert_issuers(self, small_study):
        """Table 3: GTS and LE are the top CERT issuers."""
        attribution = small_study.dataset("har-endless").attribution
        top2 = {a.issuer for a in attribution.top_cert_issuers(2)}
        assert top2 <= {"Google Trust Services", "Let's Encrypt",
                        "DigiCert Inc"}
        assert "Google Trust Services" in top2 or "Let's Encrypt" in top2

    def test_gts_heavy_hitter_le_long_tail(self, small_study):
        """§5.3.2: GTS occurs for few domains at high volume; LE for
        many domains.  Only meaningful with enough CERT mass, so the
        check requires a minimum sample (the full claim is asserted at
        larger scale in the benchmarks/EXPERIMENTS run)."""
        attribution = small_study.dataset("har-endless").attribution
        gts = attribution.cert_issuers.get("Google Trust Services")
        le = attribution.cert_issuers.get("Let's Encrypt")
        if not gts or not le or gts.connections + le.connections < 30:
            pytest.skip("too few CERT connections at this corpus scale")
        gts_per_domain = gts.connections / len(gts.domains)
        le_per_domain = le.connections / len(le.domains)
        assert gts_per_domain > le_per_domain

    def test_klaviyo_is_top_cert_domain(self, small_study):
        """Table 4: fast.a.klaviyo.com leads the CERT domains."""
        attribution = small_study.dataset("har-endless").attribution
        top = {a.origin for a in attribution.top_cert_domains(5)}
        assert "fast.a.klaviyo.com" in top
        klaviyo = attribution.cert_domains["fast.a.klaviyo.com"]
        assert klaviyo.top_previous(1)[0][0] == "static.klaviyo.com"

    def test_adservice_cert_domain_present(self, small_study):
        attribution = small_study.dataset("alexa").attribution
        domains = set(attribution.cert_domains)
        assert domains & {"adservice.google.com", "adservice.google.de"}


class TestFigure2Shape:
    def test_half_of_har_sites_two_or_more(self, small_study):
        """§5.1: 'around 50 % of all sites open at least two'."""
        figure = figure2(small_study)
        share = figure.share_with_at_least("har-endless", 2)
        assert 0.3 <= share <= 0.9

    def test_alexa_sites_open_more(self, small_study):
        figure = figure2(small_study)
        assert figure.share_with_at_least("alexa", 4) > (
            figure.share_with_at_least("har-endless", 4)
        )


class TestLifetimeShape:
    def test_connections_are_long_lived(self, small_study):
        """§5.1: median lifetime 122.2 s for the 3.5 % that close."""
        stats = headline(small_study)
        assert stats.closed_connection_share < 0.1
        assert stats.median_closed_lifetime_s is not None
        assert 60 < stats.median_closed_lifetime_s < 250
