"""Tests for NetLog events and session stitching."""

from __future__ import annotations

from repro.netlog.events import NetLog, NetLogEventType
from repro.netlog.parser import parse_sessions


class TestNetLog:
    def test_emit_and_filter(self):
        netlog = NetLog()
        netlog.emit(NetLogEventType.PAGE_LOAD_START, time=0.0, source_id=0,
                    url="https://x.com/")
        netlog.emit(NetLogEventType.HTTP2_SESSION, time=1.0, source_id=1,
                    host="x.com", peer_address="10.0.0.1")
        assert len(netlog) == 2
        assert len(netlog.of_type(NetLogEventType.HTTP2_SESSION)) == 1

    def test_events_are_frozen(self):
        netlog = NetLog()
        event = netlog.emit(NetLogEventType.PAGE_LOAD_END, time=0.0, source_id=0)
        try:
            event.time = 5.0
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestParseSessions:
    def _sample_netlog(self):
        netlog = NetLog()
        netlog.emit(NetLogEventType.PAGE_LOAD_START, time=0.0, source_id=0,
                    url="https://site.com/")
        netlog.emit(
            NetLogEventType.HTTP2_SESSION, time=1.0, source_id=1,
            host="site.com", peer_address="10.0.0.1", privacy_mode=False,
            protocol="h2", cert_sans=["site.com"], cert_issuer="LE",
        )
        netlog.emit(
            NetLogEventType.HTTP2_STREAM, time=1.1, source_id=1,
            url="https://site.com/", method="GET", status=200,
            with_credentials=True, finished=1.2,
        )
        netlog.emit(
            NetLogEventType.HTTP2_SESSION, time=2.0, source_id=2,
            host="cdn.site.com", peer_address="10.0.0.2", privacy_mode=True,
            protocol="h2", cert_sans=["*.site.com"], cert_issuer="LE",
        )
        netlog.emit(NetLogEventType.HTTP2_SESSION_RECV_GOAWAY, time=50.0,
                    source_id=2)
        netlog.emit(NetLogEventType.HTTP2_SESSION_CLOSE, time=50.0,
                    source_id=2, reason="goaway")
        netlog.emit(NetLogEventType.HTTP2_SESSION_CLOSE, time=300.0,
                    source_id=1, reason="test-end")
        netlog.emit(NetLogEventType.HTTP2_SESSION_CLOSE, time=300.0,
                    source_id=2, reason="test-end")
        return netlog

    def test_stitches_lifecycle(self):
        result = parse_sessions(self._sample_netlog())
        assert result.url == "https://site.com/"
        assert len(result.records) == 2
        first = result.records[0]
        assert first.domain == "site.com"
        assert first.start == 1.0
        assert first.end == 300.0
        assert first.privacy_mode is False
        assert len(first.requests) == 1
        assert first.requests[0].finished_at == 1.2

    def test_first_close_wins(self):
        """A GOAWAY close precedes the end-of-test sweep."""
        result = parse_sessions(self._sample_netlog())
        second = next(r for r in result.records if r.connection_id == 2)
        assert second.end == 50.0
        assert second.lifetime() == 48.0
        assert result.goaway_sessions == {2}

    def test_roundtrip_with_browser(self, browser, small_ecosystem):
        visit = browser.visit(small_ecosystem.websites[0].domain)
        result = parse_sessions(visit.netlog)
        truth = {c.connection_id: c for c in visit.connections}
        assert {r.connection_id for r in result.records} == set(truth)
        for record in result.records:
            connection = truth[record.connection_id]
            assert record.domain == connection.sni
            assert record.ip == connection.remote_ip
            assert record.privacy_mode == connection.privacy_mode
            assert record.start == connection.created_at
            assert record.end == connection.closed_at
            assert len(record.requests) == len(connection.requests)

    def test_dns_queries_counted(self, browser, small_ecosystem):
        visit = browser.visit(small_ecosystem.websites[0].domain)
        result = parse_sessions(visit.netlog)
        assert result.dns_queries >= len(result.records) - 1
