"""The ``cache-key`` rule: config-field completeness, statically checked.

The last class runs the rule against the *real* repository sources and
proves the acceptance property: deleting a ``StudyConfig`` field from
the stage-key derivations turns the run red.
"""

from __future__ import annotations

import shutil

import pytest

from repro.lint import Project
from repro.lint.rules import STUDY_CONFIG_EXEMPTIONS, CacheKeyRule


def _rule(**kwargs):
    defaults = dict(
        config_rel="config.py",
        config_class="Config",
        key_function_names=("stage_key",),
        router_methods=("ecosystem_config",),
        router_witness="config",
        exemptions={},
    )
    defaults.update(kwargs)
    return CacheKeyRule(**defaults)


CONFIG = """\
    from dataclasses import dataclass

    @dataclass
    class Config:
        seed: int = 0
        noise: float = 0.5
        workers: int = 4

        def ecosystem_config(self):
            return {"noise": self.noise}
"""


class TestConsumption:
    def test_unconsumed_field_fires(self, make_project):
        project = make_project({
            "config.py": CONFIG,
            "keys.py": """\
                def stage_key(config):
                    return ("k", config.seed)
            """,
        })
        findings = list(_rule().check(project))
        assert [f.message.split(" ")[0] for f in findings] == [
            "Config.noise", "Config.workers",
        ]
        assert all("stale cache artefacts" in f.message for f in findings)

    def test_direct_read_consumes(self, make_project):
        project = make_project({
            "config.py": CONFIG,
            "keys.py": """\
                def stage_key(config):
                    return ("k", config.seed, config.noise, config.workers)
            """,
        })
        assert list(_rule().check(project)) == []

    def test_stable_key_caller_is_a_key_function(self, make_project):
        project = make_project({
            "config.py": CONFIG,
            "keys.py": """\
                def anything(config):
                    return stable_key(config.seed, config.noise,
                                      config.workers)
            """,
        })
        assert list(_rule().check(project)) == []

    def test_router_covers_routed_fields(self, make_project):
        # `noise` is read only by ecosystem_config(), whose product is
        # hashed whole by a key function that reads `config`.
        project = make_project({
            "config.py": CONFIG,
            "keys.py": """\
                def stage_key(world, config):
                    return ("k", world.config, config.seed, config.workers)
            """,
        })
        assert list(_rule().check(project)) == []

    def test_router_needs_the_witness_read(self, make_project):
        # No key function reads `config` (the world identity), so
        # routing a field into ecosystem_config() covers nothing.
        project = make_project({
            "config.py": CONFIG,
            "keys.py": """\
                def stage_key(config):
                    return ("k", config.seed, config.workers)
            """,
        })
        (finding,) = _rule().check(project)
        assert finding.message.startswith("Config.noise")


class TestExemptionTable:
    def test_exemption_suppresses(self, make_project):
        project = make_project({
            "config.py": CONFIG,
            "keys.py": """\
                def stage_key(config):
                    return ("k", config.seed, config.noise)
            """,
        })
        rule = _rule(exemptions={"workers": "wall clock only"})
        assert list(rule.check(project)) == []

    def test_stale_exemption_fires(self, make_project):
        project = make_project({
            "config.py": CONFIG,
            "keys.py": """\
                def stage_key(config):
                    return ("k", config.seed, config.noise, config.workers)
            """,
        })
        rule = _rule(exemptions={"retired_knob": "no longer exists"})
        (finding,) = rule.check(project)
        assert "stale cache-key exemption" in finding.message
        assert "retired_knob" in finding.message

    def test_missing_config_module_skips(self, make_project):
        # Subtree lints that exclude the config module are inapplicable,
        # not violations (full-tree CI + the copy-by-path fixtures below
        # catch a renamed-away config module).
        project = make_project({"other.py": "x = 1\n"})
        assert list(_rule().check(project)) == []

    def test_incidental_primitive_call_does_not_launder_reads(
        self, make_project
    ):
        # A long method hashing a provenance key must not count its
        # unrelated reads as key consumption.
        project = make_project({
            "config.py": CONFIG,
            "keys.py": """\
                def stage_key(config):
                    return ("k", config.seed, config.noise)

                def run(config):
                    provenance = stable_key("fold", config.seed)
                    return config.workers, provenance
            """,
        })
        (finding,) = _rule().check(project)
        assert finding.message.startswith("Config.workers")


#: The real files the StudyConfig completeness check reads: the config
#: itself, both crawlers' shard/stage keys, and the world-identity key.
_REAL_KEY_FILES = (
    "src/repro/analysis/study.py",
    "src/repro/crawl/alexa.py",
    "src/repro/crawl/httparchive.py",
    "src/repro/web/ecosystem.py",
)


class TestAgainstRealSources:
    """The acceptance property, on copies of the live sources."""

    @pytest.fixture()
    def real_tree(self, tmp_path, repo_root):
        for rel in _REAL_KEY_FILES:
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(repo_root / rel, target)
        return tmp_path

    def _run(self, root):
        project = Project.load(root, ["src"])
        rule = CacheKeyRule()
        return [f for f in rule.check(project)]

    def test_pristine_sources_pass(self, real_tree):
        assert self._run(real_tree) == []

    def test_deleting_a_field_from_the_derivation_fails(self, real_tree):
        for rel in ("src/repro/crawl/alexa.py",
                    "src/repro/crawl/httparchive.py"):
            path = real_tree / rel
            munged = path.read_text().replace(
                "\n            self.fault_profile,", "", 1
            )
            assert munged != path.read_text(), f"munge missed in {rel}"
            path.write_text(munged)
        findings = self._run(real_tree)
        assert any(
            "StudyConfig.fault_profile" in f.message for f in findings
        ), [f.message for f in findings]

    def test_exemption_table_matches_the_live_config(self, real_tree):
        # Every exemption names a real field (no stale entries) — the
        # pristine pass above already proves the inverse direction.
        source = (real_tree / "src/repro/analysis/study.py").read_text()
        for name in STUDY_CONFIG_EXEMPTIONS:
            assert f"{name}:" in source
