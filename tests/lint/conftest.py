"""Shared fixtures for the lint-framework tests.

Every rule test works the same way: write a tiny fixture tree under
``tmp_path``, load it as a :class:`~repro.lint.engine.Project`, run one
rule, and assert on the findings.  ``make_project`` hides the
boilerplate.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import Project


@pytest.fixture()
def make_project(tmp_path):
    """``make_project({"pkg/mod.py": source, ...}) -> Project``."""

    def _make(files: dict[str, str]) -> Project:
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        return Project.load(tmp_path, ["."])

    return _make


@pytest.fixture()
def repo_root() -> Path:
    return Path(__file__).resolve().parents[2]
