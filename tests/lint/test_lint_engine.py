"""Engine semantics: baselines shrink, ignores filter, the CLI exits right."""

from __future__ import annotations

import dataclasses

import pytest

import repro.cli
from repro.lint import (
    Finding,
    Project,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.lint.rules import DeterminismRule, default_rules


@dataclasses.dataclass
class StubRule:
    findings: list
    rule_id: str = "stub"

    def check(self, project):
        return list(self.findings)


def _finding(path="mod.py", line=3, rule="stub", message="broken"):
    return Finding(path=path, line=line, rule=rule, message=message)


class TestBaseline:
    def test_baselined_finding_is_not_new(self, make_project):
        project = make_project({"mod.py": "x = 1\n"})
        finding = _finding()
        report = run_lint(
            project, [StubRule([finding])],
            baseline=frozenset((finding.baseline_key(),)),
        )
        assert report.findings == [finding]
        assert report.new == []
        assert report.ok()
        assert report.ok(check=True)

    def test_unbaselined_finding_fails(self, make_project):
        project = make_project({"mod.py": "x = 1\n"})
        report = run_lint(project, [StubRule([_finding()])])
        assert not report.ok()

    def test_baseline_key_survives_line_shifts(self):
        moved = dataclasses.replace(_finding(), line=99)
        assert moved.baseline_key() == _finding().baseline_key()

    def test_stale_entry_fails_only_check_mode(self, make_project):
        project = make_project({"mod.py": "x = 1\n"})
        report = run_lint(
            project, [StubRule([])],
            baseline=frozenset(("gone.py\tstub\tfixed long ago",)),
        )
        assert report.stale == ["gone.py\tstub\tfixed long ago"]
        assert report.ok()
        assert not report.ok(check=True)

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.txt"
        write_baseline(path, [_finding(), _finding(message="other")])
        keys = load_baseline(path)
        assert keys == {
            "mod.py\tstub\tbroken", "mod.py\tstub\tother",
        }
        assert path.read_text().startswith("#")

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.txt") == frozenset()


class TestProjectLoad:
    def test_recurses_sorted_and_deduped(self, make_project):
        project = make_project({
            "b/two.py": "x = 2\n",
            "a/one.py": "x = 1\n",
        })
        assert [m.rel for m in project.modules] == ["a/one.py", "b/two.py"]

    def test_single_file_path(self, tmp_path):
        (tmp_path / "solo.py").write_text("x = 1\n")
        project = Project.load(tmp_path, ["solo.py"])
        assert [m.rel for m in project.modules] == ["solo.py"]

    def test_missing_path_is_loud(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Project.load(tmp_path, ["nowhere"])


class TestCli:
    @pytest.fixture()
    def project_dir(self, tmp_path, monkeypatch):
        (tmp_path / "clean.py").write_text("x = 1\n")
        (tmp_path / "dirty.py").write_text(
            "import time\n\n\ndef stamp():\n    return time.time()\n"
        )
        monkeypatch.chdir(tmp_path)
        return tmp_path

    def test_new_findings_exit_nonzero(self, project_dir, capsys):
        code = repro.cli.main(["lint", "dirty.py"])
        assert code == 1
        out = capsys.readouterr().out
        assert "dirty.py:5 determinism" in out

    def test_clean_tree_exits_zero(self, project_dir, capsys):
        assert repro.cli.main(["lint", "clean.py"]) == 0
        assert capsys.readouterr().out == ""

    def test_write_then_check_round_trip(self, project_dir, capsys):
        assert repro.cli.main(
            ["lint", "dirty.py", "--baseline", "base.txt",
             "--write-baseline"]
        ) == 0
        assert repro.cli.main(
            ["lint", "dirty.py", "--baseline", "base.txt", "--check"]
        ) == 0
        # The finding is fixed; --check now demands the entry's removal.
        (project_dir / "dirty.py").write_text("x = 2\n")
        assert repro.cli.main(
            ["lint", "dirty.py", "--baseline", "base.txt"]
        ) == 0
        assert repro.cli.main(
            ["lint", "dirty.py", "--baseline", "base.txt", "--check"]
        ) == 1
        assert "stale baseline entry" in capsys.readouterr().out


class TestRepoIsClean:
    """The tree lints clean with an empty baseline — the acceptance bar."""

    def test_whole_repo_zero_findings(self, repo_root):
        project = Project.load(repo_root, ["src", "tools"])
        report = run_lint(project, default_rules())
        assert report.new == [], [f.render() for f in report.new]

    def test_checked_in_baseline_is_empty(self, repo_root):
        baseline = load_baseline(repo_root / "tools" / "lint_baseline.txt")
        assert baseline == frozenset()

    def test_default_rules_cover_all_four_families(self):
        assert sorted(rule.rule_id for rule in default_rules()) == [
            "cache-key", "determinism", "shared-state", "typed-errors",
        ]

    def test_inline_ignore_rule_mismatch_still_fires(self, make_project):
        project = make_project({"mod.py": """\
            import time

            def stamp():
                return time.time()  # repro-lint: ignore[]
        """})
        # Empty bracket = wildcard: documents the grammar's edge case.
        report = run_lint(project, [DeterminismRule()])
        assert report.findings == []
