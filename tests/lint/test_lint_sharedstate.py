"""The ``shared-state`` rule: unguarded memo containers are flagged."""

from __future__ import annotations

from repro.lint.rules import SharedStateRule


def _findings(project):
    return list(SharedStateRule().check(project))


class TestModuleGlobals:
    def test_mutated_global_dict_fires(self, make_project):
        project = make_project({"mod.py": """\
            _CACHE = {}

            def remember(key, value):
                _CACHE[key] = value
        """})
        (finding,) = _findings(project)
        assert "'_CACHE'" in finding.message
        assert finding.line == 1

    def test_method_mutators_fire(self, make_project):
        project = make_project({"mod.py": """\
            _SEEN = set()

            def visit(item):
                _SEEN.add(item)
        """})
        assert len(_findings(project)) == 1

    def test_import_time_population_is_fine(self, make_project):
        project = make_project({"mod.py": """\
            _TABLE = {}
            for i in range(10):
                _TABLE[i] = i * i

            def lookup(i):
                return _TABLE[i]
        """})
        assert _findings(project) == []

    def test_lock_guard_is_sanctioned(self, make_project):
        project = make_project({"mod.py": """\
            import threading

            _CACHE = {}
            _LOCK = threading.Lock()

            def remember(key, value):
                with _LOCK:
                    _CACHE[key] = value
        """})
        assert _findings(project) == []

    def test_thread_safe_comment_is_sanctioned(self, make_project):
        project = make_project({"mod.py": """\
            # thread-safe: populated before the executor starts.
            _CACHE = {}

            def remember(key, value):
                _CACHE[key] = value
        """})
        assert _findings(project) == []


class TestInstanceMemos:
    def test_private_memo_dict_fires(self, make_project):
        project = make_project({"mod.py": """\
            from dataclasses import dataclass, field

            @dataclass
            class Worker:
                _memo: dict = field(default_factory=dict)

                def compute(self, key):
                    if key not in self._memo:
                        self._memo[key] = key * 2
                    return self._memo[key]
        """})
        (finding,) = _findings(project)
        assert "'_memo'" in finding.message

    def test_init_assigned_memo_fires(self, make_project):
        project = make_project({"mod.py": """\
            class Worker:
                def __init__(self):
                    self._memo = {}

                def compute(self, key):
                    return self._memo.setdefault(key, key * 2)
        """})
        assert len(_findings(project)) == 1

    def test_public_field_is_out_of_scope(self, make_project):
        project = make_project({"mod.py": """\
            from dataclasses import dataclass, field

            @dataclass
            class Tally:
                counts: dict = field(default_factory=dict)

                def bump(self, key):
                    self.counts[key] = self.counts.get(key, 0) + 1
        """})
        assert _findings(project) == []

    def test_read_only_memo_is_fine(self, make_project):
        project = make_project({"mod.py": """\
            from dataclasses import dataclass, field

            @dataclass
            class Frozen:
                _table: dict = field(default_factory=dict)

                def lookup(self, key):
                    return self._table.get(key)
        """})
        assert _findings(project) == []

    def test_thread_safe_comment_above_definition(self, make_project):
        project = make_project({"mod.py": """\
            from dataclasses import dataclass, field

            @dataclass
            class Worker:
                # thread-safe: one Worker per task; never shared.
                _memo: dict = field(default_factory=dict)

                def compute(self, key):
                    return self._memo.setdefault(key, key * 2)
        """})
        assert _findings(project) == []

    def test_lock_guarded_write_is_sanctioned(self, make_project):
        project = make_project({"mod.py": """\
            import threading
            from dataclasses import dataclass, field

            @dataclass
            class Worker:
                _memo: dict = field(default_factory=dict)
                _lock: threading.Lock = field(default_factory=threading.Lock)

                def compute(self, key):
                    with self._lock:
                        return self._memo.setdefault(key, key * 2)
        """})
        assert _findings(project) == []
