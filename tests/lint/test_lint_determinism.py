"""The ``determinism`` rule: every forbidden form fires, exemptions hold."""

from __future__ import annotations

from repro.lint.rules import DeterminismRule


def _findings(project, **kwargs):
    rule = DeterminismRule(**kwargs)
    return list(rule.check(project))


def _messages(project, **kwargs):
    return [finding.message for finding in _findings(project, **kwargs)]


class TestForbiddenCalls:
    def test_module_level_random(self, make_project):
        project = make_project({"mod.py": """\
            import random

            def draw():
                return random.random()
        """})
        (finding,) = _findings(project)
        assert "shared module-level RNG" in finding.message
        assert finding.path == "mod.py"
        assert finding.line == 4

    def test_seeded_stream_is_sanctioned(self, make_project):
        project = make_project({"mod.py": """\
            import random

            def draw(seed):
                return random.Random(seed).random()
        """})
        assert _findings(project) == []

    def test_wall_clock_reads(self, make_project):
        project = make_project({"mod.py": """\
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now()
        """})
        messages = _messages(project)
        assert len(messages) == 2
        assert all("SimClock" in message for message in messages)

    def test_ambient_entropy(self, make_project):
        project = make_project({"mod.py": """\
            import os
            import uuid

            def token():
                return os.urandom(8), uuid.uuid4()
        """})
        assert len(_findings(project)) == 2

    def test_environ_read(self, make_project):
        project = make_project({"mod.py": """\
            import os

            def knob():
                return os.environ["REPRO_KNOB"]
        """})
        (finding,) = _findings(project)
        assert "os.environ" in finding.message


class TestSetIteration:
    def test_for_over_set_literal(self, make_project):
        project = make_project({"mod.py": """\
            def walk(items):
                for item in set(items):
                    yield item
        """})
        (finding,) = _findings(project)
        assert "sorted" in finding.message

    def test_comprehension_over_keys_view(self, make_project):
        project = make_project({"mod.py": """\
            def names(table):
                return [key for key in table.keys()]
        """})
        assert len(_findings(project)) == 1

    def test_set_algebra(self, make_project):
        project = make_project({"mod.py": """\
            def diff(a, b):
                for item in set(a) - set(b):
                    yield item
        """})
        assert len(_findings(project)) == 1

    def test_sorted_set_is_sanctioned(self, make_project):
        project = make_project({"mod.py": """\
            def walk(items):
                for item in sorted(set(items)):
                    yield item
        """})
        assert _findings(project) == []


class TestExemptions:
    def test_inline_ignore_suppresses(self, make_project):
        from repro.lint import run_lint

        project = make_project({"mod.py": """\
            import time

            def stamp():
                return time.time()  # repro-lint: ignore[determinism]
        """})
        report = run_lint(project, [DeterminismRule()])
        assert report.findings == []

    def test_inline_ignore_is_rule_specific(self, make_project):
        from repro.lint import run_lint

        project = make_project({"mod.py": """\
            import time

            def stamp():
                return time.time()  # repro-lint: ignore[shared-state]
        """})
        report = run_lint(project, [DeterminismRule()])
        assert len(report.findings) == 1

    def test_excluded_prefix_is_skipped(self, make_project):
        project = make_project({"bench/timer.py": """\
            import time

            def wall():
                return time.time()
        """})
        assert _findings(project, exclude_prefixes=("bench/",)) == []
        assert len(_findings(project, exclude_prefixes=())) == 1
