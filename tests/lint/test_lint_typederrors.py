"""The ``typed-errors`` rule: hierarchies and honest broad handlers."""

from __future__ import annotations

from repro.lint.rules import TypedErrorsRule


def _rule():
    return TypedErrorsRule(hierarchies={"pkg/": "PkgError"})


def _findings(project):
    return list(_rule().check(project))


class TestRaiseSites:
    def test_untyped_raise_fires(self, make_project):
        project = make_project({"pkg/mod.py": """\
            def boom():
                raise RuntimeError("nope")
        """})
        (finding,) = _findings(project)
        assert "raise of RuntimeError" in finding.message
        assert "PkgError" in finding.message

    def test_derived_raise_is_fine(self, make_project):
        project = make_project({"pkg/mod.py": """\
            class PkgError(RuntimeError):
                pass

            class Timeout(PkgError):
                pass

            def boom():
                raise Timeout("slow")
        """})
        assert _findings(project) == []

    def test_cross_module_derivation_resolves(self, make_project):
        # The class is defined in a sibling module of the subsystem —
        # exactly how NxDomain (zone.py) is raised by the resolver.
        project = make_project({
            "pkg/errors.py": """\
                class PkgError(RuntimeError):
                    pass

                class Timeout(PkgError):
                    pass
            """,
            "pkg/client.py": """\
                from pkg.errors import Timeout

                def boom():
                    raise Timeout("slow")
            """,
        })
        assert _findings(project) == []

    def test_builtin_contract_errors_are_allowed(self, make_project):
        project = make_project({"pkg/mod.py": """\
            def check(n):
                if n < 0:
                    raise ValueError(n)
        """})
        assert _findings(project) == []

    def test_outside_the_subsystem_is_unconstrained(self, make_project):
        project = make_project({"other/mod.py": """\
            def boom():
                raise RuntimeError("fine here")
        """})
        assert _findings(project) == []


class TestBroadHandlers:
    def test_silent_swallow_fires(self, make_project):
        project = make_project({"stage.py": """\
            def fold(items):
                total = 0
                for item in items:
                    try:
                        total += item.value
                    except Exception:
                        pass
                return total
        """})
        (finding,) = _findings(project)
        assert "neither re-raises nor records" in finding.message

    def test_bare_except_fires(self, make_project):
        project = make_project({"stage.py": """\
            def fold(item):
                try:
                    return item.value
                except:
                    return 0
        """})
        (finding,) = _findings(project)
        assert "bare 'except:'" in finding.message

    def test_bare_except_fires_even_when_reraising(self, make_project):
        # Unlike 'except Exception', no discipline redeems a bare
        # except: it swallows KeyboardInterrupt/SystemExit before the
        # handler body even runs, breaking graceful Ctrl-C.
        project = make_project({"stage.py": """\
            def fold(item):
                try:
                    return item.value
                except:
                    raise
        """})
        (finding,) = _findings(project)
        assert "KeyboardInterrupt" in finding.message

    def test_runlog_tree_is_a_default_hierarchy(self):
        rule = TypedErrorsRule()
        assert rule.hierarchies["src/repro/runlog/"] == "RunJournalError"

    def test_reraise_is_fine(self, make_project):
        project = make_project({"stage.py": """\
            def fold(item):
                try:
                    return item.value
                except Exception:
                    item.close()
                    raise
        """})
        assert _findings(project) == []

    def test_recording_counter_is_fine(self, make_project):
        project = make_project({"stage.py": """\
            def fold(stats, item):
                try:
                    return item.value
                except Exception:
                    stats.errors += 1
                    return 0
        """})
        assert _findings(project) == []

    def test_record_call_is_fine(self, make_project):
        project = make_project({"stage.py": """\
            def fold(log, item):
                try:
                    return item.value
                except Exception as error:
                    log.record_failure(error)
                    return 0
        """})
        assert _findings(project) == []

    def test_narrow_handler_is_unconstrained(self, make_project):
        project = make_project({"stage.py": """\
            def fold(item):
                try:
                    return item.value
                except AttributeError:
                    return 0
        """})
        assert _findings(project) == []
