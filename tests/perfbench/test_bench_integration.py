"""End-to-end tests for `repro bench` (smoke scale) and the micro suite."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.perfbench import load_bench, run_pipeline_bench
from repro.perfbench.micro import _bench_hpack_encode, _bench_resolver_cache
from repro.perfbench.pipeline import SCALES


class TestPipelineBench:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            run_pipeline_bench("galactic")

    @pytest.mark.slow
    def test_smoke_run_records_stages_digest_and_rss(self):
        run = run_pipeline_bench("smoke", repeats=1)
        assert run.n_sites == SCALES["smoke"].n_sites
        assert run.wall_s > 0
        assert len(run.digest) == 32  # blake2b-128 hex
        assert run.peak_rss_kb > 0
        stage_names = [stage.name for stage in run.timings.stages]
        assert "crawl-httparchive" in stage_names
        assert "classify-datasets" in stage_names


class TestMicrobenchmarks:
    def test_hpack_encode_micro(self):
        result = _bench_hpack_encode(repeat=1)
        assert result.iterations == 400
        assert result.seconds > 0
        assert result.ops_per_s > 0

    def test_resolver_cache_micro(self):
        result = _bench_resolver_cache(repeat=1)
        assert result.iterations > 10_000
        assert result.to_dict()["name"] == "resolver-ttl-cache"


@pytest.mark.slow
class TestBenchCli:
    def test_bench_write_then_check_roundtrip(self, tmp_path, capsys):
        # Record a smoke-scale benchmark...
        code = main([
            "bench", "--scales", "smoke", "--repeat", "1",
            "--out-dir", str(tmp_path), "--label", "test",
            "--pipeline-only",
        ])
        assert code == 0
        payload = load_bench(tmp_path / "BENCH_pipeline.json")
        assert payload["history"][-1]["label"] == "test"
        # ...then verify a fresh run checks clean against it.
        code = main([
            "bench", "--check", "--check-scale", "smoke", "--repeat", "1",
            "--out-dir", str(tmp_path), "--tolerance", "2.0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "digest      identical" in out

    def test_check_without_committed_file_errors(self, tmp_path, capsys):
        code = main([
            "bench", "--check", "--out-dir", str(tmp_path),
        ])
        assert code == 2
        assert "no committed" in capsys.readouterr().err
