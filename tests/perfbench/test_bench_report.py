"""Tests for the BENCH_*.json writers, trajectory and comparator."""

from __future__ import annotations

import json

import pytest

from repro.perfbench import (
    BENCH_SCHEMA,
    CheckFailure,
    MicroResult,
    check_pipeline,
    host_metadata,
    load_bench,
    write_hotpath_bench,
    write_pipeline_bench,
)
from repro.perfbench.pipeline import PipelineRun
from repro.perfbench.report import render_check_report, write_custom_bench
from repro.runtime import StageTimings


def _run(label="golden", wall=1.0, digest="abc123") -> PipelineRun:
    timings = StageTimings()
    timings.record("crawl", wall * 0.8, items=100)
    timings.record("classify", wall * 0.2, items=100)
    return PipelineRun(
        label=label, seed=7, n_sites=120, wall_s=wall, digest=digest,
        peak_rss_kb=50_000, repeats=3, timings=timings,
    )


class TestPipelineWriter:
    def test_writes_schema_host_and_stages(self, tmp_path):
        path = tmp_path / "BENCH_pipeline.json"
        payload = write_pipeline_bench([_run()], path, label="PR3")
        assert path.exists()
        loaded = load_bench(path)
        assert loaded == payload
        assert loaded["schema"] == BENCH_SCHEMA
        assert loaded["host"]["python"] == host_metadata()["python"]
        run = loaded["runs"][0]
        assert run["label"] == "golden"
        assert [stage["name"] for stage in run["stages"]] == [
            "crawl", "classify"
        ]

    def test_history_is_appended_and_speedup_vs_oldest(self, tmp_path):
        path = tmp_path / "BENCH_pipeline.json"
        write_pipeline_bench([_run(wall=2.0)], path, label="baseline")
        payload = write_pipeline_bench([_run(wall=1.0)], path, label="PR3")
        labels = [entry["label"] for entry in payload["history"]]
        assert labels == ["baseline", "PR3"]
        assert payload["speedup_vs_oldest"]["golden"] == pytest.approx(2.0)

    def test_rerecording_a_label_replaces_its_entry(self, tmp_path):
        path = tmp_path / "BENCH_pipeline.json"
        write_pipeline_bench([_run(wall=2.0)], path, label="baseline")
        write_pipeline_bench([_run(wall=1.5)], path, label="PR3")
        payload = write_pipeline_bench([_run(wall=1.0)], path, label="PR3")
        labels = [entry["label"] for entry in payload["history"]]
        assert labels == ["baseline", "PR3"]
        assert payload["history"][-1]["walls_s"]["golden"] == 1.0

    def test_partial_rerecord_preserves_other_scales(self, tmp_path):
        # CI's --check needs the smoke run; a later `--scales golden`
        # re-record must carry it over instead of clobbering it.
        path = tmp_path / "BENCH_pipeline.json"
        smoke = _run(label="smoke", wall=0.3, digest="smk")
        write_pipeline_bench([smoke, _run(wall=2.0)], path, label="base")
        payload = write_pipeline_bench([_run(wall=1.0)], path, label="PR3")
        labels = [run["label"] for run in payload["runs"]]
        assert labels == ["golden", "smoke"]  # sorted by n_sites
        kept = next(r for r in payload["runs"] if r["label"] == "smoke")
        assert kept["digest"] == "smk"

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "BENCH_pipeline.json"
        path.write_text(json.dumps({"schema": 99}))
        with pytest.raises(CheckFailure, match="schema"):
            load_bench(path)


class TestHotpathWriter:
    def test_microbenchmark_payload(self, tmp_path):
        path = tmp_path / "BENCH_hotpath.json"
        results = [
            MicroResult("hpack-encode", 1000, 0.5, note="x"),
            MicroResult("page-load", 200, 0.25),
        ]
        write_hotpath_bench(results, path, label="PR3")
        loaded = load_bench(path)
        assert loaded["kind"] == "hotpath"
        first = loaded["benchmarks"][0]
        assert first["name"] == "hpack-encode"
        assert first["ops_per_s"] == pytest.approx(2000.0)

    def test_custom_bench_envelope(self, tmp_path):
        path = tmp_path / "BENCH_custom.json"
        write_custom_bench("runtime-executors", {"runs": []}, path, label="x")
        loaded = load_bench(path)
        assert loaded["kind"] == "runtime-executors"
        assert loaded["runs"] == []


class TestComparator:
    def _committed(self, tmp_path, wall=1.0, digest="abc123"):
        path = tmp_path / "BENCH_pipeline.json"
        write_pipeline_bench([_run(wall=wall, digest=digest)], path,
                             label="committed")
        return load_bench(path)

    def test_pass_within_tolerance(self, tmp_path):
        committed = self._committed(tmp_path, wall=1.0)
        outcome = check_pipeline(_run(wall=1.2), committed, tolerance=0.25)
        assert outcome.passed
        assert outcome.regression == pytest.approx(0.2)
        assert "PASS" in render_check_report(outcome)

    def test_fail_beyond_tolerance(self, tmp_path):
        committed = self._committed(tmp_path, wall=1.0)
        outcome = check_pipeline(_run(wall=1.3), committed, tolerance=0.25)
        assert not outcome.passed
        assert "FAIL" in render_check_report(outcome)

    def test_digest_mismatch_fails_even_when_faster(self, tmp_path):
        committed = self._committed(tmp_path, digest="abc123")
        outcome = check_pipeline(
            _run(wall=0.1, digest="deadbeef"), committed, tolerance=0.25
        )
        assert not outcome.passed
        assert not outcome.digest_ok
        assert "MISMATCH" in render_check_report(outcome)

    def test_missing_scale_raises(self, tmp_path):
        committed = self._committed(tmp_path)
        with pytest.raises(CheckFailure, match="no run at scale"):
            check_pipeline(_run(label="stress"), committed)

    def test_improvements_always_pass_wall_clock(self, tmp_path):
        committed = self._committed(tmp_path, wall=1.0)
        outcome = check_pipeline(_run(wall=0.4), committed, tolerance=0.0)
        assert outcome.wall_ok
