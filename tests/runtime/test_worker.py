"""Tests for the per-process ecosystem cache."""

from __future__ import annotations

from repro.runtime.worker import (
    MAX_CACHED_WORLDS,
    clear_ecosystem_cache,
    ecosystem_for,
    ecosystem_is_cached,
    prime_ecosystem,
)
from repro.web.ecosystem import Ecosystem, EcosystemConfig


def _config(index: int) -> EcosystemConfig:
    return EcosystemConfig(seed=1000 + index, n_sites=5)


class TestEcosystemCache:
    def teardown_method(self):
        clear_ecosystem_cache()

    def test_hit_returns_same_world(self):
        clear_ecosystem_cache()
        config = _config(0)
        first = ecosystem_for(config)
        assert ecosystem_is_cached(config)
        assert ecosystem_for(config) is first

    def test_prime_registers_world(self):
        clear_ecosystem_cache()
        world = Ecosystem.generate(_config(1))
        prime_ecosystem(world)
        assert ecosystem_for(_config(1)) is world

    def test_cache_is_bounded_lru(self):
        # Sweeps touch many (seed, n_sites) worlds; only the most
        # recently used MAX_CACHED_WORLDS may stay resident.
        clear_ecosystem_cache()
        configs = [_config(index) for index in range(MAX_CACHED_WORLDS + 2)]
        for config in configs:
            ecosystem_for(config)
        assert not ecosystem_is_cached(configs[0])
        assert not ecosystem_is_cached(configs[1])
        for config in configs[2:]:
            assert ecosystem_is_cached(config)

    def test_recent_use_protects_from_eviction(self):
        clear_ecosystem_cache()
        configs = [_config(index) for index in range(MAX_CACHED_WORLDS)]
        for config in configs:
            ecosystem_for(config)
        ecosystem_for(configs[0])  # refresh the oldest
        ecosystem_for(_config(99))  # force one eviction
        assert ecosystem_is_cached(configs[0])
        assert not ecosystem_is_cached(configs[1])
