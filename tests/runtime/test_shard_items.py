"""Properties of the hash-stable shard partition.

Incremental recompute rests on shard membership being a pure function
of the item (and shard count) alone: adding, removing or reordering
*other* items must never move an item between buckets, or cached shard
artefacts would invalidate for spurious reasons.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crawl import plan_crawl_shards
from repro.runtime import shard_items

_domains = st.lists(
    st.sampled_from([f"site{index:03d}.com" for index in range(40)]),
    unique=True, max_size=40,
)


class TestShardItems:
    @given(items=_domains, n_shards=st.integers(1, 9))
    @settings(max_examples=60, deadline=None)
    def test_partition_is_exact(self, items, n_shards):
        buckets = shard_items(items, n_shards)
        assert len(buckets) == n_shards
        flattened = [item for bucket in buckets for item in bucket]
        assert sorted(flattened) == sorted(items)

    @given(items=_domains, n_shards=st.integers(1, 9))
    @settings(max_examples=60, deadline=None)
    def test_buckets_preserve_input_order(self, items, n_shards):
        position = {item: index for index, item in enumerate(items)}
        for bucket in shard_items(items, n_shards):
            assert [position[item] for item in bucket] == sorted(
                position[item] for item in bucket
            )

    @given(items=_domains, n_shards=st.integers(1, 9),
           shuffle_seed=st.integers())
    @settings(max_examples=60, deadline=None)
    def test_membership_ignores_other_items(self, items, n_shards,
                                            shuffle_seed):
        """An item's bucket id never depends on the rest of the list."""
        import random

        def bucket_of(universe):
            buckets = shard_items(universe, n_shards)
            return {
                item: bucket_id
                for bucket_id, bucket in enumerate(buckets)
                for item in bucket
            }

        whole = bucket_of(items)
        shuffled = list(items)
        random.Random(shuffle_seed).shuffle(shuffled)
        assert bucket_of(shuffled) == whole
        if len(items) > 1:
            subset = items[: len(items) // 2]
            assert bucket_of(subset) == {
                item: whole[item] for item in subset
            }

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            shard_items(["a"], 0)
        with pytest.raises(ValueError):
            shard_items(["a"], -3)


class TestPlanCrawlShards:
    @given(items=_domains, n_shards=st.integers(1, 9))
    @settings(max_examples=60, deadline=None)
    def test_offsets_are_global_positions(self, items, n_shards):
        plan = plan_crawl_shards(items, n_shards)
        for shard in plan:
            assert shard.domains
            assert shard.offsets == tuple(
                items.index(domain) for domain in shard.domains
            )
        covered = [
            domain for shard in plan for domain in shard.domains
        ]
        assert sorted(covered) == sorted(items)

    def test_single_shard_is_the_whole_list(self):
        items = ["b.com", "a.com", "c.com"]
        (shard,) = plan_crawl_shards(items, 1)
        assert shard.domains == ("b.com", "a.com", "c.com")
        assert shard.offsets == (0, 1, 2)
        assert shard.key is None and not shard.cached

    def test_keyer_and_contains_mark_cached_shards(self):
        items = [f"site{index:03d}.com" for index in range(10)]
        keys = {}

        def keyer(domains, offsets):
            key = f"{'-'.join(domains)}@{offsets}"
            keys[key] = domains
            return key

        plan = plan_crawl_shards(
            items, 3, keyer=keyer,
            contains=lambda key: key.startswith("site000"),
        )
        assert {shard.key for shard in plan} == set(keys)
        for shard in plan:
            assert shard.cached == shard.key.startswith("site000")
