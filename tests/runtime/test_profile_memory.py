"""Tests for the peak-memory column of StageTimings (PR 3)."""

from __future__ import annotations

from repro.runtime import StageTimings
from repro.runtime.profile import StageTiming


class TestMemoryTracking:
    def test_disabled_by_default(self):
        timings = StageTimings()
        with timings.stage("work"):
            _ = [0] * 10_000
        assert timings.stages[0].peak_kb is None

    def test_peak_recorded_when_enabled(self):
        timings = StageTimings(memory=True)
        with timings.stage("alloc"):
            blob = bytearray(8 * 1024 * 1024)
            del blob
        stage = timings.stages[0]
        assert stage.peak_kb is not None
        assert stage.peak_kb >= 8 * 1024  # at least the 8 MiB blob

    def test_peak_resets_between_stages(self):
        timings = StageTimings(memory=True)
        with timings.stage("big"):
            blob = bytearray(8 * 1024 * 1024)
            del blob
        with timings.stage("small"):
            _ = bytearray(1024)
        big, small = timings.stages
        assert big.peak_kb >= 8 * 1024
        assert small.peak_kb < big.peak_kb

    def test_render_shows_memory_column_only_when_present(self):
        timings = StageTimings()
        timings.record("plain", 1.0)
        assert "KiB" not in timings.render()
        timings.stages.append(
            StageTiming(name="tracked", seconds=0.5, peak_kb=2_048)
        )
        rendered = timings.render()
        assert "2,048 KiB peak" in rendered
        # Untracked rows render a placeholder, not a bogus number.
        assert "—" in rendered

    def test_nested_stage_does_not_erase_parent_peak(self):
        # reset_peak() is process-global; a child stage must not make
        # the enclosing stage forget allocations made before the child.
        timings = StageTimings(memory=True)
        with timings.stage("outer"):
            blob = bytearray(16 * 1024 * 1024)
            del blob  # peak hit 16 MiB, then released pre-child
            with timings.stage("inner"):
                _ = bytearray(1024)
        inner, outer = timings.stages  # children complete first
        assert inner.name == "inner"
        assert outer.peak_kb >= 16 * 1024
        assert inner.peak_kb < 16 * 1024

    def test_merged_takes_max_peak(self):
        first = StageTimings()
        first.stages.append(StageTiming(name="s", seconds=1.0, peak_kb=100))
        second = StageTimings()
        second.stages.append(StageTiming(name="s", seconds=2.0, peak_kb=700))
        merged = StageTimings.merged([first, second])
        assert merged.stages[0].seconds == 3.0
        assert merged.stages[0].peak_kb == 700
