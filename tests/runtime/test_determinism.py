"""Determinism: the executor must never change study output.

The per-site seeding discipline (everything derived from
``(seed, run, domain)``) makes each site's measurement independent of
scheduling, so serial, thread and process executors must produce
digest-identical studies — the safety net every future performance PR
runs against.
"""

from __future__ import annotations

import pytest

from repro.analysis.digest import dataset_digest, study_digest
from repro.analysis.study import Study, StudyConfig
from repro.runtime import ProcessExecutor, ThreadExecutor

pytestmark = pytest.mark.slow

_CONFIG = StudyConfig(seed=7, n_sites=60, dns_study_days=0.25)


@pytest.fixture(scope="module")
def serial_study() -> Study:
    return Study.run(_CONFIG)


class TestStudyDigest:
    def test_stable_across_runs(self, serial_study):
        assert study_digest(serial_study) == study_digest(Study.run(_CONFIG))

    def test_thread_executor_matches_serial(self, serial_study):
        with ThreadExecutor(4) as executor:
            threaded = Study.run(_CONFIG, executor=executor)
        assert study_digest(threaded) == study_digest(serial_study)

    def test_process_executor_matches_serial(self, serial_study):
        with ProcessExecutor(2) as executor:
            processed = Study.run(_CONFIG, executor=executor)
        assert study_digest(processed) == study_digest(serial_study)

    def test_single_site_chunks_match(self, serial_study):
        with ThreadExecutor(2, chunk_size=1) as executor:
            chunked = Study.run(_CONFIG, executor=executor)
        assert study_digest(chunked) == study_digest(serial_study)

    def test_oversized_chunks_match(self, serial_study):
        with ThreadExecutor(2, chunk_size=10_000) as executor:
            chunked = Study.run(_CONFIG, executor=executor)
        assert study_digest(chunked) == study_digest(serial_study)

    def test_executor_spec_in_config_matches(self, serial_study):
        study = Study.run(
            StudyConfig(seed=7, n_sites=60, dns_study_days=0.25,
                        executor="thread", parallelism=3)
        )
        assert study_digest(study) == study_digest(serial_study)

    def test_different_seeds_diverge(self, serial_study):
        other = Study.run(StudyConfig(seed=8, n_sites=60, dns_study_days=0.25))
        assert study_digest(other) != study_digest(serial_study)

    def test_different_scale_diverges(self, serial_study):
        other = Study.run(StudyConfig(seed=7, n_sites=61, dns_study_days=0.25))
        assert study_digest(other) != study_digest(serial_study)


class TestDatasetDigest:
    def test_per_dataset_digests_match_across_executors(self, serial_study):
        with ProcessExecutor(2) as executor:
            processed = Study.run(_CONFIG, executor=executor)
        for key in serial_study.datasets:
            assert dataset_digest(processed.datasets[key]) == (
                dataset_digest(serial_study.datasets[key])
            ), key

    def test_datasets_have_distinct_digests(self, serial_study):
        digests = {
            dataset_digest(dataset)
            for dataset in serial_study.datasets.values()
        }
        assert len(digests) == len(serial_study.datasets)


class TestSideArtifactsAgree:
    """Non-dataset study artefacts must also be executor-independent."""

    def test_lifetimes_agree(self, serial_study):
        with ProcessExecutor(2) as executor:
            processed = Study.run(_CONFIG, executor=executor)
        assert processed.connection_lifetimes() == (
            serial_study.connection_lifetimes()
        )
        assert processed.early_closed_lifetimes() == (
            serial_study.early_closed_lifetimes()
        )

    def test_common_sites_agree(self, serial_study):
        with ThreadExecutor(3) as executor:
            threaded = Study.run(_CONFIG, executor=executor)
        assert threaded.alexa_common_sites == serial_study.alexa_common_sites
        assert sorted(threaded.har_corpus.hars) == (
            sorted(serial_study.har_corpus.hars)
        )
