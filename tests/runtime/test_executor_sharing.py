"""Shared-executor concurrency: the lease/generation contract.

The serve layer drives one pool executor from many request threads at
once, which is exactly where the old single-driver assumptions broke:
two simultaneous first calls could each build a pool (leaking one), and
a request hitting a ``BrokenExecutor`` used to ``close()`` whatever
pool was installed *at failure time* — destroying the fresh pool a
concurrent caller had just rebuilt and silently dropping its futures.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import BrokenExecutor

import pytest

from repro.analysis.digest import study_digest
from repro.analysis.study import Study, StudyConfig
from repro.runtime import ProcessExecutor, ThreadExecutor
from repro.store import StudyCache


def _square(value: int) -> int:
    return value * value


def _slow_square(value: int) -> int:
    time.sleep(0.01)
    return value * value


class TestLeaseGeneration:
    def test_concurrent_first_maps_build_exactly_one_pool(self):
        executor = ThreadExecutor(2)
        made = []
        original = executor._make_pool

        def counting_make_pool():
            made.append(object())
            time.sleep(0.01)  # widen the check-then-create window
            return original()

        executor._make_pool = counting_make_pool
        barrier = threading.Barrier(6)
        failures = []

        def work():
            barrier.wait()
            try:
                assert executor.map_sites(_square, [1, 2, 3]) == [1, 4, 9]
            except Exception as error:  # pragma: no cover - fail loudly
                failures.append(error)

        threads = [threading.Thread(target=work) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        executor.close()
        assert not failures
        assert len(made) == 1

    def test_retire_discards_only_its_own_generation(self):
        executor = ThreadExecutor(2)
        pool1, gen1 = executor._lease()
        executor._retire(gen1, pool1)
        assert executor._pool is None

        pool2, gen2 = executor._lease()
        assert pool2 is not pool1
        assert gen2 == gen1 + 1
        # A straggler retiring the *old* lease must not clobber the
        # rebuilt pool another caller is already using.
        executor._retire(gen1, pool1)
        assert executor._pool is pool2
        assert executor.map_sites(_square, [3]) == [9]
        executor.close()

    def test_close_then_map_builds_a_fresh_generation(self):
        executor = ThreadExecutor(2)
        _, gen1 = executor._lease()
        executor.close()
        _, gen2 = executor._lease()
        assert gen2 == gen1 + 1
        executor.close()


def _kill_self_worker(value: int) -> int:
    if value == 99:
        os._exit(13)
    return value


class TestConcurrentBrokenPool:
    def test_broken_caller_does_not_drop_concurrent_callers_rebuild(self):
        # Caller A breaks the pool; caller B rebuilds and runs on the
        # fresh one.  Under the old close()-on-failure path, A's
        # cleanup could shut B's new pool down mid-map.
        executor = ProcessExecutor(2)
        outcomes: dict[str, object] = {}
        broken = threading.Event()

        def breaker():
            try:
                executor.map_sites(_kill_self_worker, [99], chunk_size=1)
                outcomes["breaker"] = "no-error"
            except BrokenExecutor:
                outcomes["breaker"] = "broken"
            finally:
                broken.set()

        def survivor():
            broken.wait(timeout=30)
            # Retry until the rebuilt pool serves a full map: a retry
            # may still land on the dying pool once, never forever.
            for _ in range(10):
                try:
                    outcomes["survivor"] = executor.map_sites(
                        _slow_square, list(range(12))
                    )
                    return
                except BrokenExecutor:
                    continue
            outcomes["survivor"] = "never-recovered"

        threads = [
            threading.Thread(target=breaker),
            threading.Thread(target=survivor),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        executor.close()
        assert outcomes["breaker"] == "broken"
        assert outcomes["survivor"] == [
            value * value for value in range(12)
        ]


@pytest.mark.slow
def test_two_concurrent_studies_survive_a_killed_worker(tmp_path):
    """The ISSUE regression: two studies share one process pool, a
    worker dies mid-flight, and *both* studies still complete with
    digests identical to their serial baselines (the run layer retries
    the broken shard against the rebuilt pool)."""
    config_a = StudyConfig(
        seed=7, n_sites=60, dns_study_days=0.25, shards=2
    )
    config_b = StudyConfig(
        seed=8, n_sites=60, dns_study_days=0.25, shards=2
    )
    expected = {
        "a": study_digest(Study.run(config_a)),
        "b": study_digest(Study.run(config_b)),
    }

    executor = ProcessExecutor(2)
    executor.map_sites(_square, [1])  # prime the pool
    victims = list(executor._pool._processes)
    cache = StudyCache(tmp_path)
    digests: dict[str, str] = {}
    errors: list[BaseException] = []
    started = threading.Barrier(3)

    def run(label: str, config: StudyConfig) -> None:
        started.wait()
        try:
            study = Study.run(config, executor=executor, cache=cache)
            digests[label] = study_digest(study)
        except BaseException as error:  # pragma: no cover - fail loudly
            errors.append(error)

    def kill_one_worker() -> None:
        started.wait()
        time.sleep(0.05)
        try:
            os.kill(victims[0], signal.SIGKILL)
        except ProcessLookupError:  # pragma: no cover - already gone
            pass

    threads = [
        threading.Thread(target=run, args=("a", config_a)),
        threading.Thread(target=run, args=("b", config_b)),
        threading.Thread(target=kill_one_worker),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    executor.close()
    assert not errors
    assert digests == expected
