"""Unit tests for the executor abstraction."""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import BrokenExecutor

import pytest

from repro.runtime import (
    ProcessExecutor,
    SerialExecutor,
    TaskTimeoutError,
    ThreadExecutor,
    chunk_items,
    make_executor,
)
from repro.runtime.executor import default_workers


def _square(value: int) -> int:
    return value * value


def _boom(value: int) -> int:
    raise RuntimeError(f"boom {value}")


class _InjectedFault(RuntimeError):
    """A typed, picklable fault error (single-message, like the real
    ServFail/StreamResetError/CertificateError family)."""


def _fault_at_three(value: int) -> int:
    if value == 3:
        raise _InjectedFault(f"injected fault at {value}")
    return value


def _kill_worker(value: int) -> int:
    if value == 1:
        os._exit(13)  # simulates a worker crash (OOM-kill, segfault)
    return value


EXECUTOR_FACTORIES = [
    pytest.param(SerialExecutor, id="serial"),
    pytest.param(lambda: ThreadExecutor(2), id="thread"),
    pytest.param(lambda: ProcessExecutor(2), id="process"),
]


class TestChunkItems:
    def test_even_split(self):
        assert chunk_items([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_remainder_goes_last(self):
        assert chunk_items([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]

    def test_chunk_size_larger_than_input(self):
        assert chunk_items([1, 2], 100) == [[1, 2]]

    def test_single_item_batches(self):
        assert chunk_items([1, 2, 3], 1) == [[1], [2], [3]]

    def test_empty_input(self):
        assert chunk_items([], 4) == []

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_items([1], 0)


class TestMapSites:
    @pytest.mark.parametrize("factory", EXECUTOR_FACTORIES)
    def test_preserves_input_order(self, factory):
        with factory() as executor:
            assert executor.map_sites(_square, list(range(25))) == [
                value * value for value in range(25)
            ]

    @pytest.mark.parametrize("factory", EXECUTOR_FACTORIES)
    def test_empty_site_list(self, factory):
        with factory() as executor:
            assert executor.map_sites(_square, []) == []

    @pytest.mark.parametrize("factory", EXECUTOR_FACTORIES)
    def test_single_item(self, factory):
        with factory() as executor:
            assert executor.map_sites(_square, [3]) == [9]

    def test_chunk_size_larger_than_input(self):
        with ThreadExecutor(2) as executor:
            assert executor.map_sites(
                _square, [1, 2, 3], chunk_size=50
            ) == [1, 4, 9]

    def test_single_item_chunks(self):
        with ProcessExecutor(2) as executor:
            assert executor.map_sites(
                _square, [1, 2, 3], chunk_size=1
            ) == [1, 4, 9]

    @pytest.mark.parametrize("factory", EXECUTOR_FACTORIES)
    def test_exceptions_propagate(self, factory):
        with factory() as executor:
            with pytest.raises(RuntimeError, match="boom"):
                executor.map_sites(_boom, [1, 2])

    def test_failure_cancels_outstanding_chunks(self):
        # A failing first chunk must not leave the worker churning
        # through every remaining (doomed) chunk before the exception
        # reaches the caller: pending futures are cancelled.
        executed = []
        lock = threading.Lock()

        def work(value: int) -> int:
            with lock:
                executed.append(value)
            if value == 0:
                raise RuntimeError("boom 0")
            return value

        with ThreadExecutor(1) as executor:
            with pytest.raises(RuntimeError, match="boom 0"):
                executor.map_sites(work, list(range(64)), chunk_size=1)
        # The single worker may race a chunk or two past the failure,
        # but cancellation must prevent it from draining the queue.
        assert len(executed) < 32

    def test_failure_keeps_executor_usable(self):
        with ThreadExecutor(2) as executor:
            with pytest.raises(RuntimeError):
                executor.map_sites(_boom, [1, 2, 3], chunk_size=1)
            assert executor.map_sites(_square, [2, 3]) == [4, 9]

    def test_process_executor_surfaces_typed_fault_error(self):
        # A fault-raised exception inside a worker process must come
        # back as the original typed error (which requires it to pickle
        # cleanly), not as a pool-layer wrapper.
        with ProcessExecutor(2) as executor:
            with pytest.raises(_InjectedFault, match="injected fault at 3"):
                executor.map_sites(
                    _fault_at_three, list(range(8)), chunk_size=2
                )

    def test_process_executor_usable_after_fault(self):
        with ProcessExecutor(2) as executor:
            with pytest.raises(_InjectedFault):
                executor.map_sites(
                    _fault_at_three, list(range(8)), chunk_size=1
                )
            assert executor.map_sites(_square, [4, 5]) == [16, 25]

    def test_process_executor_recovers_from_broken_pool(self):
        # A dying worker breaks the whole ProcessPoolExecutor; the
        # executor must discard the carcass so the next map starts a
        # fresh pool instead of failing forever.
        with ProcessExecutor(2) as executor:
            with pytest.raises(BrokenExecutor):
                executor.map_sites(_kill_worker, [0, 1, 2], chunk_size=1)
            assert executor.map_sites(_square, [3]) == [9]

    def test_late_chunk_failure_does_not_drain_queue(self):
        # The failing chunk sits *behind* a slow one: the map must
        # notice the failure as it happens (FIRST_EXCEPTION), cancel
        # the still-queued chunks and raise — not sequentially await
        # the slow chunk and let the queue churn meanwhile.
        executed = []
        lock = threading.Lock()

        def work(value: int) -> int:
            if value == 0:
                time.sleep(0.5)
                return value
            if value == 1:
                raise RuntimeError("boom 1")
            with lock:
                executed.append(value)
            return value

        with ThreadExecutor(2) as executor:
            with pytest.raises(RuntimeError, match="boom 1"):
                executor.map_sites(work, list(range(64)), chunk_size=1)
        # Worker 2 may race a couple of chunks past the failure before
        # the cancellations land, but nowhere near the full queue.
        assert len(executed) < 32

    def test_pool_reused_across_maps(self):
        with ThreadExecutor(2) as executor:
            executor.map_sites(_square, [1])
            pool = executor._pool
            executor.map_sites(_square, [2])
            assert executor._pool is pool

    def test_close_is_idempotent(self):
        executor = ThreadExecutor(2)
        executor.map_sites(_square, [1])
        executor.close()
        executor.close()


class TestMakeExecutor:
    def test_default_is_serial(self):
        assert isinstance(make_executor(), SerialExecutor)
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor("serial"), SerialExecutor)

    def test_thread_and_process_specs(self):
        assert isinstance(make_executor("thread"), ThreadExecutor)
        assert isinstance(make_executor("process"), ProcessExecutor)

    def test_worker_count_suffix(self):
        executor = make_executor("thread:6")
        assert executor.max_workers == 6

    def test_workers_argument(self):
        assert make_executor("process", 3).max_workers == 3

    def test_suffix_overrides_argument(self):
        assert make_executor("thread:5", 2).max_workers == 5

    def test_default_worker_count(self):
        assert make_executor("thread").max_workers == default_workers()

    def test_instance_passthrough(self):
        executor = SerialExecutor()
        assert make_executor(executor) is executor

    @pytest.mark.parametrize("spec", ["bogus", "thread:x", "thread:0"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            make_executor(spec)


class TestTaskWatchdog:
    """The no-progress watchdog armed by ``task_timeout``."""

    def test_stalled_map_times_out_and_pool_recovers(self):
        release = threading.Event()

        def stall(value: int) -> int:
            release.wait(timeout=10)
            return value

        executor = ThreadExecutor(2, task_timeout=0.15)
        try:
            with pytest.raises(TaskTimeoutError):
                executor.map_sites(stall, [1], chunk_size=1)
        finally:
            release.set()  # let the abandoned worker thread exit
        # The broken pool was discarded: the executor is immediately
        # usable again on a fresh one.
        assert executor.map_sites(_square, [2, 3]) == [4, 9]
        executor.close()

    def test_slow_but_moving_map_never_trips(self):
        # Progress-based, not per-chunk-deadline: chunks that each
        # outlast several windows are fine as long as *some* chunk
        # completes per window.
        def dawdle(value: int) -> int:
            time.sleep(0.06)
            return value

        with ThreadExecutor(1, task_timeout=0.5) as executor:
            assert executor.map_sites(
                dawdle, list(range(8)), chunk_size=1
            ) == list(range(8))

    def test_failure_beats_the_watchdog(self):
        # A chunk exception surfaces as itself, not as a timeout.
        with ThreadExecutor(2, task_timeout=5.0) as executor:
            with pytest.raises(RuntimeError, match="boom"):
                executor.map_sites(_boom, [1])

    def test_is_a_timeout_error(self):
        # Retry classification keys off TimeoutError ancestry: a
        # watchdog abort is transient infrastructure, never fatal.
        assert issubclass(TaskTimeoutError, TimeoutError)

    @pytest.mark.parametrize("bad", [0, -1.0])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ThreadExecutor(2, task_timeout=bad)

    def test_make_executor_passthrough(self):
        executor = make_executor("thread:2", task_timeout=1.5)
        assert executor.task_timeout == 1.5
        assert make_executor("thread:2").task_timeout is None
        # Serial runs ignore the watchdog entirely.
        assert isinstance(
            make_executor("serial", task_timeout=1.5), SerialExecutor
        )

    def test_default_is_disarmed(self):
        assert ThreadExecutor(2).task_timeout is None
