"""Tests for the stream state machine."""

from __future__ import annotations

import pytest

from repro.h2.stream import Http2Stream, StreamError, StreamState


class TestStreamLifecycle:
    def test_happy_path(self):
        stream = Http2Stream(stream_id=1)
        assert stream.state is StreamState.IDLE
        stream.send_request([(":method", "GET")], now=1.0)
        assert stream.state is StreamState.HALF_CLOSED_LOCAL
        stream.receive_response(200, [], now=2.0)
        assert stream.state is StreamState.CLOSED
        assert stream.opened_at == 1.0
        assert stream.closed_at == 2.0
        assert stream.response_status == 200

    def test_request_with_body(self):
        stream = Http2Stream(stream_id=3)
        stream.send_request([(":method", "POST")], now=0.0, end_stream=False)
        assert stream.state is StreamState.OPEN
        stream.end_request()
        assert stream.state is StreamState.HALF_CLOSED_LOCAL

    def test_streamed_response(self):
        stream = Http2Stream(stream_id=1)
        stream.send_request([], now=0.0)
        stream.receive_response(200, [], now=1.0, end_stream=False)
        assert stream.state is StreamState.HALF_CLOSED_LOCAL
        stream.end_response(now=2.0)
        assert stream.is_closed

    def test_reset_from_any_state(self):
        stream = Http2Stream(stream_id=1)
        stream.send_request([], now=0.0)
        stream.reset(now=1.0)
        assert stream.is_closed
        stream.reset(now=2.0)  # idempotent
        assert stream.closed_at == 1.0


class TestStreamValidation:
    def test_even_stream_id_rejected(self):
        with pytest.raises(StreamError):
            Http2Stream(stream_id=2)

    def test_zero_and_negative_rejected(self):
        with pytest.raises(StreamError):
            Http2Stream(stream_id=0)
        with pytest.raises(StreamError):
            Http2Stream(stream_id=-3)

    def test_double_request_rejected(self):
        stream = Http2Stream(stream_id=1)
        stream.send_request([], now=0.0)
        with pytest.raises(StreamError):
            stream.send_request([], now=1.0)

    def test_response_before_request_rejected(self):
        stream = Http2Stream(stream_id=1)
        with pytest.raises(StreamError):
            stream.receive_response(200, [], now=0.0)

    def test_end_request_wrong_state(self):
        stream = Http2Stream(stream_id=1)
        with pytest.raises(StreamError):
            stream.end_request()

    def test_end_response_wrong_state(self):
        stream = Http2Stream(stream_id=1)
        with pytest.raises(StreamError):
            stream.end_response(now=0.0)
