"""Frame-codec robustness: golden corpus + property tests.

The fault engine injects truncation and corruption at higher layers;
this suite pins the byte layer itself down: the decoder must either
parse correctly or raise its typed :class:`FrameError` — it must never
mis-parse silently, leak a ``struct.error``/``UnicodeDecodeError``, or
round-trip to different bytes.  Extends the PR 3 HPACK golden-corpus
approach to ``repro.h2.frames``.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.h2.frames import (
    DataFrame,
    Frame,
    FrameError,
    FrameType,
    GoawayFrame,
    HeadersFrame,
    OriginFrame,
    PingFrame,
    RstStreamFrame,
    SettingsFrame,
    UnknownFrame,
    WindowUpdateFrame,
    decode_frames,
    encode_frame,
    encode_frames,
)

_GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"


def _load_corpus_gen():
    spec = importlib.util.spec_from_file_location(
        "frames_corpus_gen", _GOLDEN_DIR / "frames_corpus_gen.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("frames_corpus_gen", module)
    spec.loader.exec_module(module)
    return module


# ----------------------------------------------------------------------
# Golden corpus
# ----------------------------------------------------------------------
class TestFramesGoldenCorpus:
    @pytest.fixture(scope="class")
    def corpus(self) -> dict:
        return json.loads((_GOLDEN_DIR / "frames_corpus.json").read_text())

    def test_encoder_reproduces_pinned_bytes(self, corpus):
        frames = _load_corpus_gen().build_frames()
        assert encode_frames(frames).hex() == corpus["stream_hex"]

    def test_decoder_reproduces_pinned_structure(self, corpus):
        gen = _load_corpus_gen()
        decoded = decode_frames(bytes.fromhex(corpus["stream_hex"]))
        assert [gen.describe(frame) for frame in decoded] == corpus["frames"]

    def test_pinned_stream_round_trips(self, corpus):
        data = bytes.fromhex(corpus["stream_hex"])
        assert encode_frames(decode_frames(data)) == data


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
_STREAM_IDS = st.integers(min_value=0, max_value=(1 << 31) - 1)
_FLAGS = st.integers(min_value=0, max_value=0xFF)
_U32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
_KNOWN_TYPES = {int(value) for value in FrameType}

_FRAMES = st.one_of(
    st.builds(
        DataFrame, stream_id=_STREAM_IDS, flags=_FLAGS,
        data=st.binary(max_size=64),
    ),
    st.builds(
        HeadersFrame, stream_id=_STREAM_IDS, flags=_FLAGS,
        header_block=st.binary(max_size=64),
    ),
    st.builds(
        RstStreamFrame, stream_id=_STREAM_IDS, flags=_FLAGS,
        error_code=_U32,
    ),
    st.builds(
        SettingsFrame, stream_id=_STREAM_IDS, flags=_FLAGS,
        pairs=st.lists(
            st.tuples(st.integers(0, 0xFFFF), _U32), max_size=6
        ).map(tuple),
    ),
    st.builds(
        PingFrame, stream_id=_STREAM_IDS, flags=_FLAGS,
        opaque=st.binary(min_size=8, max_size=8),
    ),
    st.builds(
        GoawayFrame, stream_id=_STREAM_IDS, flags=_FLAGS,
        last_stream_id=_STREAM_IDS, error_code=_U32,
        debug_data=st.binary(max_size=32),
    ),
    st.builds(
        WindowUpdateFrame, stream_id=_STREAM_IDS, flags=_FLAGS,
        increment=st.integers(min_value=1, max_value=(1 << 31) - 1),
    ),
    # ORIGIN frames are only legal on stream 0 (the decoder enforces it).
    st.builds(
        OriginFrame, stream_id=st.just(0), flags=_FLAGS,
        origins=st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=20,
            ),
            max_size=4,
        ).map(tuple),
    ),
    st.builds(
        UnknownFrame, stream_id=_STREAM_IDS, flags=_FLAGS,
        raw_type=st.integers(0, 0xFF).filter(
            lambda value: value not in _KNOWN_TYPES
        ),
        raw_payload=st.binary(max_size=64),
    ),
)

_FRAME_LISTS = st.lists(_FRAMES, min_size=1, max_size=5)


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------
class TestRoundTrip:
    @given(frames=_FRAME_LISTS)
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_round_trips(self, frames):
        assert decode_frames(encode_frames(frames)) == frames

    @given(frames=_FRAME_LISTS)
    @settings(max_examples=100, deadline=None)
    def test_reencode_is_byte_identical(self, frames):
        data = encode_frames(frames)
        assert encode_frames(decode_frames(data)) == data

    @given(frame=_FRAMES)
    @settings(max_examples=100, deadline=None)
    def test_single_frame_agrees_with_stream_encoding(self, frame):
        assert encode_frame(frame) == encode_frames([frame])


# ----------------------------------------------------------------------
# Injected truncation / corruption
# ----------------------------------------------------------------------
class TestTruncation:
    @given(frames=_FRAME_LISTS, data=st.data())
    @settings(max_examples=300, deadline=None)
    def test_truncation_is_prefix_or_typed_error(self, frames, data):
        """A cut byte stream either decodes to a frame-boundary prefix
        of the original frames or raises FrameError — never a silent
        mis-parse, never an untyped exception."""
        encoded = encode_frames(frames)
        cut = data.draw(st.integers(0, len(encoded) - 1))
        boundaries = {0}
        offset = 0
        for frame in frames:
            offset += 9 + len(frame.payload())
            boundaries.add(offset)
        if cut in boundaries:
            prefix = decode_frames(encoded[:cut])
            assert prefix == frames[: len(prefix)]
        else:
            with pytest.raises(FrameError):
                decode_frames(encoded[:cut])

    @given(frames=_FRAME_LISTS)
    @settings(max_examples=100, deadline=None)
    def test_truncated_header_raises(self, frames):
        encoded = encode_frames(frames)
        with pytest.raises(FrameError):
            decode_frames(encoded + b"\x00")  # 1 stray octet: partial header


class TestCorruption:
    @given(frames=_FRAME_LISTS, data=st.data())
    @settings(max_examples=400, deadline=None)
    def test_corruption_never_escapes_typed_errors(self, frames, data):
        """Flipping any single byte must yield either a clean decode
        (the flip landed somewhere forgiving, e.g. inside a DATA
        payload) or FrameError — decoding must never raise anything
        else (struct.error, UnicodeDecodeError, ValueError, ...)."""
        encoded = bytearray(encode_frames(frames))
        index = data.draw(st.integers(0, len(encoded) - 1))
        flip = data.draw(st.integers(1, 255))
        encoded[index] ^= flip
        try:
            decoded = decode_frames(bytes(encoded))
        except FrameError:
            return
        assert all(isinstance(frame, Frame) for frame in decoded)

    @given(data=st.binary(max_size=128))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_garbage_is_typed_or_parsed(self, data):
        try:
            decoded = decode_frames(data)
        except FrameError:
            return
        assert all(isinstance(frame, Frame) for frame in decoded)
        # Whatever parsed must be a stable fixpoint: re-encoding and
        # re-decoding reproduces the same frames.  (Byte-identity with
        # the garbage input is NOT required — the decoder masks the
        # reserved stream/last-stream high bits, canonicalising them.)
        assert decode_frames(encode_frames(decoded)) == decoded
