"""Tests for the HTTP/2 frame codec."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.h2.frames import (
    DataFrame,
    FrameError,
    FrameHeader,
    FrameType,
    GoawayFrame,
    HeadersFrame,
    OriginFrame,
    PingFrame,
    RstStreamFrame,
    SettingsFrame,
    UnknownFrame,
    WindowUpdateFrame,
    decode_frames,
    encode_frame,
)


class TestFrameHeader:
    def test_pack_unpack(self):
        header = FrameHeader(length=1234, frame_type=1, flags=5, stream_id=77)
        assert FrameHeader.unpack(header.pack()) == header

    def test_header_is_nine_octets(self):
        assert len(FrameHeader(0, 0, 0, 0).pack()) == 9

    def test_length_bounds(self):
        with pytest.raises(FrameError):
            FrameHeader(length=1 << 24, frame_type=0, flags=0, stream_id=0)

    def test_stream_id_bounds(self):
        with pytest.raises(FrameError):
            FrameHeader(length=0, frame_type=0, flags=0, stream_id=1 << 31)

    def test_reserved_bit_masked_on_unpack(self):
        header = FrameHeader(length=0, frame_type=0, flags=0, stream_id=7)
        raw = bytearray(header.pack())
        raw[5] |= 0x80  # set the reserved bit
        assert FrameHeader.unpack(bytes(raw)).stream_id == 7

    def test_truncated(self):
        with pytest.raises(FrameError):
            FrameHeader.unpack(b"\x00\x00\x00")


_ROUNDTRIP_FRAMES = [
    DataFrame(stream_id=1, flags=1, data=b"hello"),
    HeadersFrame(stream_id=3, flags=4, header_block=b"\x82\x87"),
    RstStreamFrame(stream_id=5, error_code=8),
    SettingsFrame(pairs=((1, 4096), (4, 65535))),
    SettingsFrame(flags=1),  # ACK
    PingFrame(opaque=b"12345678"),
    GoawayFrame(last_stream_id=9, error_code=0, debug_data=b"bye"),
    WindowUpdateFrame(stream_id=1, increment=1000),
    OriginFrame(origins=("https://a.example.com", "https://b.example.com")),
    OriginFrame(origins=()),
]


class TestRoundtrip:
    @pytest.mark.parametrize("frame", _ROUNDTRIP_FRAMES, ids=lambda f: type(f).__name__)
    def test_single_frame(self, frame):
        assert decode_frames(encode_frame(frame)) == [frame]

    def test_frame_sequence(self):
        stream = b"".join(encode_frame(frame) for frame in _ROUNDTRIP_FRAMES)
        assert decode_frames(stream) == _ROUNDTRIP_FRAMES

    def test_unknown_frame_carried_opaquely(self):
        frame = UnknownFrame(raw_payload=b"\x01\x02", raw_type=0xAB)
        decoded = decode_frames(encode_frame(frame))[0]
        assert isinstance(decoded, UnknownFrame)
        assert decoded.raw_payload == b"\x01\x02"
        assert decoded.raw_type == 0xAB

    @given(st.binary(max_size=64), st.integers(min_value=0, max_value=255))
    def test_data_roundtrip_property(self, payload, flags):
        frame = DataFrame(stream_id=1, flags=flags, data=payload)
        assert decode_frames(encode_frame(frame)) == [frame]

    @given(st.lists(st.text(alphabet=st.characters(min_codepoint=33,
                                                   max_codepoint=126),
                            min_size=1, max_size=30), max_size=5))
    def test_origin_roundtrip_property(self, origins):
        frame = OriginFrame(origins=tuple(origins))
        assert decode_frames(encode_frame(frame)) == [frame]


class TestValidation:
    def test_rst_stream_payload_length(self):
        raw = FrameHeader(length=3, frame_type=FrameType.RST_STREAM,
                          flags=0, stream_id=1).pack() + b"\x00\x00\x00"
        with pytest.raises(FrameError):
            decode_frames(raw)

    def test_settings_multiple_of_six(self):
        raw = FrameHeader(length=5, frame_type=FrameType.SETTINGS,
                          flags=0, stream_id=0).pack() + b"\x00" * 5
        with pytest.raises(FrameError):
            decode_frames(raw)

    def test_ping_needs_eight_octets(self):
        with pytest.raises(FrameError):
            encode_frame(PingFrame(opaque=b"short"))

    def test_origin_must_be_stream_zero(self):
        raw = FrameHeader(length=0, frame_type=FrameType.ORIGIN,
                          flags=0, stream_id=3).pack()
        with pytest.raises(FrameError):
            decode_frames(raw)

    def test_origin_truncated_entry(self):
        payload = b"\x00\x10https"  # claims 16 bytes, has 5
        raw = FrameHeader(length=len(payload), frame_type=FrameType.ORIGIN,
                          flags=0, stream_id=0).pack() + payload
        with pytest.raises(FrameError):
            decode_frames(raw)

    def test_window_update_increment_bounds(self):
        with pytest.raises(FrameError):
            encode_frame(WindowUpdateFrame(increment=0))

    def test_truncated_payload(self):
        raw = FrameHeader(length=10, frame_type=FrameType.DATA,
                          flags=0, stream_id=1).pack() + b"abc"
        with pytest.raises(FrameError):
            decode_frames(raw)

    def test_goaway_too_short(self):
        raw = FrameHeader(length=4, frame_type=FrameType.GOAWAY,
                          flags=0, stream_id=0).pack() + b"\x00" * 4
        with pytest.raises(FrameError):
            decode_frames(raw)
