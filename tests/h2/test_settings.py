"""Tests for HTTP/2 settings."""

from __future__ import annotations

import pytest

from repro.h2.settings import Http2Settings, SettingId


class TestHttp2Settings:
    def test_rfc_defaults(self):
        settings = Http2Settings()
        assert settings.header_table_size == 4096
        assert settings.enable_push is True
        assert settings.max_concurrent_streams is None
        assert settings.initial_window_size == 65_535
        assert settings.max_frame_size == 16_384

    def test_frame_size_bounds(self):
        with pytest.raises(ValueError):
            Http2Settings(max_frame_size=16_383)
        with pytest.raises(ValueError):
            Http2Settings(max_frame_size=1 << 24)

    def test_window_size_bounds(self):
        with pytest.raises(ValueError):
            Http2Settings(initial_window_size=2**31)

    def test_pairs_roundtrip(self):
        settings = Http2Settings(
            max_concurrent_streams=100, max_header_list_size=8192
        )
        rebuilt = Http2Settings().apply_pairs(settings.to_pairs())
        assert rebuilt == settings

    def test_unknown_identifier_ignored(self):
        settings = Http2Settings().apply_pairs([(0x99, 42)])
        assert settings == Http2Settings()

    def test_enable_push_validation(self):
        with pytest.raises(ValueError):
            Http2Settings().apply_pairs([(SettingId.ENABLE_PUSH, 2)])

    def test_apply_is_copy(self):
        original = Http2Settings()
        updated = original.apply_pairs([(SettingId.MAX_CONCURRENT_STREAMS, 5)])
        assert original.max_concurrent_streams is None
        assert updated.max_concurrent_streams == 5
