"""HPACK wire-format equivalence tests.

The golden corpus in ``tests/golden/hpack_corpus.json`` was captured
from the pre-optimization encoder (PR 3); these tests prove the
optimized dynamic table and bytearray builders are byte-identical on
the wire — plus a Hypothesis round-trip property over arbitrary header
lists and table sizes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.h2.hpack import HpackDecoder, HpackEncoder

CORPUS_PATH = Path(__file__).parent.parent / "golden" / "hpack_corpus.json"


def _corpus() -> list[dict]:
    return json.loads(CORPUS_PATH.read_text())


@pytest.mark.golden
class TestGoldenCorpus:
    def test_corpus_exists_and_is_nontrivial(self):
        corpus = _corpus()
        assert len(corpus) >= 5
        assert sum(len(conn["blocks"]) for conn in corpus) >= 30
        # Eviction pressure must be represented (small tables).
        assert any(conn["max_table_size"] <= 128 for conn in corpus)

    def test_encoder_is_wire_identical(self):
        for conn in _corpus():
            encoder = HpackEncoder(max_table_size=conn["max_table_size"])
            for block, expected_hex in zip(conn["blocks"], conn["encoded"]):
                got = encoder.encode([tuple(pair) for pair in block])
                assert got.hex() == expected_hex, (
                    f"wire divergence at table size {conn['max_table_size']}"
                )
            assert encoder.bytes_emitted == conn["bytes_emitted"]
            assert encoder.bytes_uncompressed == conn["bytes_uncompressed"]

    def test_golden_streams_decode_to_original_headers(self):
        for conn in _corpus():
            decoder = HpackDecoder(max_table_size=conn["max_table_size"])
            for block, encoded_hex in zip(conn["blocks"], conn["encoded"]):
                decoded = decoder.decode(bytes.fromhex(encoded_hex))
                expected = [
                    (name.lower(), value) for name, value in
                    (tuple(pair) for pair in block)
                ]
                assert decoded == expected


_NAME = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-:",
    min_size=1, max_size=24,
)
_VALUE = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x10FFFF,
                           exclude_categories=("Cs",)),
    max_size=40,
)
_HEADERS = st.lists(st.tuples(_NAME, _VALUE), max_size=12)


class TestRoundTripProperty:
    @given(blocks=st.lists(_HEADERS, max_size=6),
           table_size=st.sampled_from([0, 64, 256, 4096]))
    @settings(max_examples=120, deadline=None)
    def test_encode_decode_round_trip(self, blocks, table_size):
        """decode(encode(x)) == lowercase(x) through shared table state."""
        encoder = HpackEncoder(max_table_size=table_size)
        decoder = HpackDecoder(max_table_size=table_size)
        for headers in blocks:
            fragment = encoder.encode(list(headers))
            decoded = decoder.decode(fragment)
            assert decoded == [
                (name.lower(), value) for name, value in headers
            ]

    @given(blocks=st.lists(_HEADERS, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_accounting_matches_emitted_bytes(self, blocks):
        encoder = HpackEncoder()
        total = 0
        for headers in blocks:
            total += len(encoder.encode(list(headers)))
        assert encoder.bytes_emitted == total
