"""Tests for the HPACK codec."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.h2.hpack import (
    STATIC_TABLE,
    HpackDecoder,
    HpackEncoder,
    HpackError,
    decode_integer,
    encode_integer,
)

_name = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-", min_size=1, max_size=12
)
_value = st.text(min_size=0, max_size=24)
_headers = st.lists(st.tuples(_name, _value), min_size=0, max_size=12)


class TestIntegerCoding:
    @pytest.mark.parametrize("value", [0, 1, 30, 31, 127, 128, 1337, 2**20])
    @pytest.mark.parametrize("prefix", [4, 5, 6, 7])
    def test_roundtrip(self, value, prefix):
        encoded = encode_integer(value, prefix)
        decoded, offset = decode_integer(encoded, 0, prefix)
        assert decoded == value
        assert offset == len(encoded)

    def test_rfc7541_example_1337_with_5bit_prefix(self):
        # RFC 7541 Appendix C.1.2.
        assert encode_integer(1337, 5) == bytes([0b11111, 0b10011010, 0b00001010])

    def test_negative_rejected(self):
        with pytest.raises(HpackError):
            encode_integer(-1, 5)

    def test_truncated_input(self):
        with pytest.raises(HpackError):
            decode_integer(b"", 0, 5)
        with pytest.raises(HpackError):
            decode_integer(bytes([0b11111]), 0, 5)  # missing continuation

    @given(st.integers(min_value=0, max_value=2**30),
           st.integers(min_value=1, max_value=8))
    def test_roundtrip_property(self, value, prefix):
        decoded, _ = decode_integer(encode_integer(value, prefix), 0, prefix)
        assert decoded == value


class TestStaticTable:
    def test_size(self):
        assert len(STATIC_TABLE) == 61

    def test_first_and_last_entries(self):
        assert STATIC_TABLE[0] == (":authority", "")
        assert STATIC_TABLE[1] == (":method", "GET")
        assert STATIC_TABLE[60] == ("www-authenticate", "")


class TestHpackRoundtrip:
    def test_simple_request(self):
        headers = [
            (":method", "GET"),
            (":scheme", "https"),
            (":authority", "www.example.com"),
            (":path", "/index.html"),
        ]
        assert HpackDecoder().decode(HpackEncoder().encode(headers)) == headers

    def test_names_lowercased(self):
        encoded = HpackEncoder().encode([("User-Agent", "x")])
        assert HpackDecoder().decode(encoded) == [("user-agent", "x")]

    def test_repeat_encoding_shrinks(self):
        """Dynamic-table hits make later blocks smaller (the HPACK win
        the paper says is lost when connections are redundant)."""
        encoder = HpackEncoder()
        headers = [
            (":authority", "cdn.example.com"),
            ("user-agent", "repro-browser/1.0"),
            ("cookie", "session=abcdef0123456789"),
        ]
        first = encoder.encode(headers)
        second = encoder.encode(headers)
        assert len(second) < len(first)
        assert len(second) <= len(headers)  # pure index references

    def test_two_cold_encoders_pay_twice(self):
        headers = [("x-custom-header", "some-value-1234")]
        warm = HpackEncoder()
        warm.encode(headers)
        warm_second = warm.encode(headers)
        cold_second = HpackEncoder().encode(headers)
        assert len(warm_second) < len(cold_second)

    def test_decoder_tracks_dynamic_table(self):
        encoder = HpackEncoder()
        decoder = HpackDecoder()
        headers = [("x-a", "1"), ("x-b", "2")]
        assert decoder.decode(encoder.encode(headers)) == headers
        assert decoder.decode(encoder.encode(headers)) == headers

    def test_sensitive_headers_never_indexed(self):
        encoder = HpackEncoder()
        headers = [("authorization", "Bearer secret")]
        encoder.encode(headers)
        second = encoder.encode(headers)
        # Never-indexed: repeating does not shrink to a 1-byte index.
        assert len(second) > 1
        assert HpackDecoder().decode(second) == headers

    def test_compression_ratio_tracks(self):
        encoder = HpackEncoder()
        assert encoder.compression_ratio == 1.0
        encoder.encode([(":method", "GET")])
        assert 0 < encoder.compression_ratio < 1.0

    @given(_headers)
    def test_roundtrip_property(self, headers):
        normalized = [(name.lower(), value) for name, value in headers]
        encoder = HpackEncoder()
        decoder = HpackDecoder()
        for _ in range(3):  # repeated blocks exercise the dynamic table
            assert decoder.decode(encoder.encode(normalized)) == normalized


class TestHpackErrors:
    def test_index_zero_rejected(self):
        with pytest.raises(HpackError):
            HpackDecoder().decode(bytes([0x80]))

    def test_out_of_range_index(self):
        with pytest.raises(HpackError):
            HpackDecoder().decode(encode_integer(1000, 7, 0x80))

    def test_huffman_rejected(self):
        # 0x40 literal, name string with H bit set.
        data = bytes([0x40, 0x81, 0x00])
        with pytest.raises(HpackError):
            HpackDecoder().decode(data)

    def test_truncated_string(self):
        data = bytes([0x40, 0x05, ord("a")])
        with pytest.raises(HpackError):
            HpackDecoder().decode(data)


class TestDynamicTableEviction:
    def test_small_table_evicts(self):
        encoder = HpackEncoder(max_table_size=64)
        decoder = HpackDecoder(max_table_size=64)
        for index in range(20):
            headers = [(f"x-header-{index}", "v" * 10)]
            assert decoder.decode(encoder.encode(headers)) == headers
        assert encoder._table.size <= 64

    def test_size_update_instruction(self):
        decoder = HpackDecoder(max_table_size=4096)
        # 0x20 | 0 → resize to 0, then an indexed static entry.
        data = bytes([0x20]) + bytes([0x82])
        assert decoder.decode(data) == [(":method", "GET")]
        assert decoder._table.max_size == 0
