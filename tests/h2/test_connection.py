"""Tests for the HTTP/2 connection object."""

from __future__ import annotations

import pytest

from repro.h2.connection import (
    HTTP_MISDIRECTED_REQUEST,
    ConnectionClosedError,
    Http2Connection,
)
from repro.h2.settings import Http2Settings
from repro.tls.certificate import Certificate
from repro.web.server import OriginServer


def _server(ip="10.0.0.1", domains=("example.com", "img.example.com"),
            excluded=()):
    cert = Certificate(
        serial=1, subject=domains[0], sans=tuple(domains), issuer_org="CA"
    )
    return OriginServer(
        ip=ip,
        name="test",
        cert_map={domain: cert for domain in domains},
        default_certificate=cert,
        excluded_domains=set(excluded),
    )


def _connection(server=None, **kwargs):
    server = server or _server()
    return Http2Connection(
        connection_id=1,
        server=server,
        sni="example.com",
        remote_ip=server.ip,
        created_at=0.0,
        **kwargs,
    )


class TestConnectionBasics:
    def test_certificate_selected_by_sni(self):
        cert_a = Certificate(serial=1, subject="a.example.com",
                             sans=("a.example.com",), issuer_org="CA")
        cert_b = Certificate(serial=2, subject="b.example.com",
                             sans=("b.example.com",), issuer_org="CA")
        server = OriginServer(
            ip="10.0.0.1", name="sni",
            cert_map={"a.example.com": cert_a, "b.example.com": cert_b},
            default_certificate=cert_a,
        )
        conn = Http2Connection(
            connection_id=1, server=server, sni="b.example.com",
            remote_ip="10.0.0.1", created_at=0.0,
        )
        assert conn.certificate is cert_b

    def test_ip_mismatch_rejected(self):
        server = _server(ip="10.0.0.1")
        with pytest.raises(ValueError):
            Http2Connection(
                connection_id=1, server=server, sni="example.com",
                remote_ip="10.0.0.2", created_at=0.0,
            )

    def test_request_records_facts(self):
        conn = _connection()
        record = conn.perform_request("example.com", "/x", now=1.0,
                                      with_credentials=True, service_time=0.5)
        assert record.status == 200
        assert record.url == "https://example.com/x"
        assert record.finished_at == 1.5
        assert record.with_credentials
        assert record.stream_id == 1
        assert conn.requests == [record]

    def test_stream_ids_are_odd_and_increasing(self):
        conn = _connection()
        ids = [
            conn.perform_request("example.com", f"/{i}", now=float(i)).stream_id
            for i in range(4)
        ]
        assert ids == [1, 3, 5, 7]

    def test_421_for_unserved_domain(self):
        server = _server(excluded=("img.example.com",))
        conn = _connection(server=server)
        record = conn.perform_request("img.example.com", "/a.png", now=0.0)
        assert record.status == HTTP_MISDIRECTED_REQUEST
        assert "img.example.com" in conn.misdirected_domains

    def test_origin_set_from_server(self):
        cert = Certificate(serial=1, subject="example.com",
                           sans=("example.com",), issuer_org="CA")
        server = OriginServer(
            ip="10.0.0.1", name="of", cert_map={"example.com": cert},
            default_certificate=cert,
            origin_frame_origins=("https://other.example.com",),
        )
        conn = Http2Connection(connection_id=1, server=server,
                               sni="example.com", remote_ip="10.0.0.1",
                               created_at=0.0)
        assert "https://other.example.com" in conn.origin_set


class TestConnectionLifecycle:
    def test_close(self):
        conn = _connection()
        conn.close(now=5.0)
        assert not conn.is_open
        assert conn.lifetime() == 5.0
        with pytest.raises(ConnectionClosedError):
            conn.perform_request("example.com", "/", now=6.0)

    def test_goaway_blocks_new_streams(self):
        conn = _connection()
        conn.receive_goaway(now=2.0)
        assert conn.goaway_received
        with pytest.raises(ConnectionClosedError):
            conn.perform_request("example.com", "/", now=3.0)

    def test_lifetime_with_assumed_end(self):
        conn = _connection()
        assert conn.lifetime() is None
        assert conn.lifetime(assume_end=10.0) == 10.0

    def test_max_concurrent_streams_enforced(self):
        conn = _connection(remote_settings=Http2Settings(max_concurrent_streams=0))
        with pytest.raises(ConnectionClosedError):
            conn.perform_request("example.com", "/", now=0.0)

    def test_last_activity(self):
        conn = _connection()
        assert conn.last_activity() == 0.0
        conn.perform_request("example.com", "/", now=3.0, service_time=0.25)
        assert conn.last_activity() == 3.25

    def test_hpack_accounting(self):
        conn = _connection()
        conn.perform_request("example.com", "/", now=0.0)
        assert conn.hpack_bytes_uncompressed > 0
        assert 0 < conn.hpack_compression_ratio <= 1.0
        emitted_first = conn.hpack_bytes_emitted
        conn.perform_request("example.com", "/", now=1.0)
        # Second identical header set compresses better.
        assert conn.hpack_bytes_emitted - emitted_first < emitted_first
