"""Smoke-run every script under ``examples/``.

The examples are living documentation; several predate the sweep,
bench and faults subsystems and used to break silently when an API
moved.  Each script must exit 0 within its time budget, producing
non-empty output — nothing about the *content* is asserted, the golden
suite owns that.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

_REPO_ROOT = Path(__file__).resolve().parents[2]
_EXAMPLES_DIR = _REPO_ROOT / "examples"
_TIMEOUT_S = 180


def _example_scripts() -> list[str]:
    scripts = sorted(
        path.name for path in _EXAMPLES_DIR.glob("*.py")
    )
    assert scripts, "examples/ has no scripts to smoke-test"
    return scripts


def test_every_example_is_covered():
    """The parametrization below must track the directory contents."""
    assert set(_example_scripts()) == {
        "audit_single_site.py",
        "dns_loadbalancing_study.py",
        "har_pipeline_demo.py",
        "longitudinal_study.py",
        "mitigation_ablations.py",
        "performance_whatif.py",
        "quickstart.py",
    }, "new example script: it is smoke-tested automatically, update this set"


@pytest.mark.parametrize("script", _example_scripts())
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, str(_EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=_TIMEOUT_S,
        env=env,
        cwd=_REPO_ROOT,
    )
    assert completed.returncode == 0, (
        f"{script} exited {completed.returncode}\n"
        f"stdout:\n{completed.stdout[-2000:]}\n"
        f"stderr:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script} printed nothing"
