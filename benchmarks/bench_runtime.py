"""Serial vs. parallel study wall time.

Runs the same full study (crawls + classification) through each
executor and reports wall-clock time per stage plus the study digest,
proving the speedup changes nothing:

    PYTHONPATH=src python benchmarks/bench_runtime.py --sites 1200
    PYTHONPATH=src python benchmarks/bench_runtime.py --sites 300 \
        --executors serial process:4

Not a pytest-benchmark module on purpose: process pools inside a
benchmark's inner loop measure pool startup, not pipeline throughput.
"""

from __future__ import annotations

import argparse
import os
import time

from repro.analysis.digest import study_digest
from repro.analysis.study import Study, StudyConfig
from repro.runtime import StageTimings, make_executor


def run_one(spec: str, sites: int, seed: int) -> tuple[float, str, StageTimings]:
    config = StudyConfig(seed=seed, n_sites=sites, dns_study_days=0.25)
    timings = StageTimings()
    started = time.perf_counter()
    with make_executor(spec) as executor:
        study = Study.run(config, executor=executor, timings=timings)
    elapsed = time.perf_counter() - started
    return elapsed, study_digest(study), timings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=1200)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--executors", nargs="+",
        default=["serial", "thread:4", "process:4"],
        help="executor specs to compare (first is the baseline)",
    )
    parser.add_argument("--per-stage", action="store_true",
                        help="print the per-stage breakdown for each run")
    args = parser.parse_args(argv)

    available = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    print(f"host CPUs available: {available}")
    if available < 2:
        print("note: pool executors cannot beat the serial baseline on a "
              "single-CPU host; expect <1x with identical digests")

    results: list[tuple[str, float, str]] = []
    for spec in args.executors:
        elapsed, digest, timings = run_one(spec, args.sites, args.seed)
        results.append((spec, elapsed, digest))
        print(f"{spec:<12} {elapsed:8.2f} s   digest {digest}")
        if args.per_stage:
            print(timings.render())
            print()

    baseline_spec, baseline_time, baseline_digest = results[0]
    ok = True
    for spec, elapsed, digest in results[1:]:
        if digest != baseline_digest:
            print(f"DIGEST MISMATCH: {spec} != {baseline_spec}")
            ok = False
        else:
            print(f"{spec}: {baseline_time / elapsed:.2f}x vs {baseline_spec}"
                  f" (digest identical)")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
