"""Serial vs. parallel study wall time.

Runs the same full study (crawls + classification) through each
executor and reports wall-clock time per stage plus the study digest,
proving the speedup changes nothing:

    PYTHONPATH=src python benchmarks/bench_runtime.py --sites 1200
    PYTHONPATH=src python benchmarks/bench_runtime.py --sites 300 \
        --executors serial process:4

Not a pytest-benchmark module on purpose: process pools inside a
benchmark's inner loop measure pool startup, not pipeline throughput.
"""

from __future__ import annotations

import argparse
import os
import time

from repro.analysis.digest import study_digest
from repro.analysis.study import Study, StudyConfig
from repro.runtime import StageTimings, make_executor


def run_one(spec: str, sites: int, seed: int) -> tuple[float, str, StageTimings]:
    config = StudyConfig(seed=seed, n_sites=sites, dns_study_days=0.25)
    timings = StageTimings()
    started = time.perf_counter()
    with make_executor(spec) as executor:
        study = Study.run(config, executor=executor, timings=timings)
    elapsed = time.perf_counter() - started
    return elapsed, study_digest(study), timings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=1200)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--executors", nargs="+",
        default=["serial", "thread:4", "process:4"],
        help="executor specs to compare (first is the baseline)",
    )
    parser.add_argument("--per-stage", action="store_true",
                        help="print the per-stage breakdown for each run")
    parser.add_argument(
        "--json", default="BENCH_runtime.json", metavar="PATH",
        help="write results as BENCH-schema JSON (default: "
             "BENCH_runtime.json; pass '-' to skip)",
    )
    args = parser.parse_args(argv)

    available = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    print(f"host CPUs available: {available}")
    if available < 2:
        print("note: pool executors cannot beat the serial baseline on a "
              "single-CPU host; expect <1x with identical digests")

    results: list[tuple[str, float, str, StageTimings]] = []
    for spec in args.executors:
        elapsed, digest, timings = run_one(spec, args.sites, args.seed)
        results.append((spec, elapsed, digest, timings))
        print(f"{spec:<12} {elapsed:8.2f} s   digest {digest}")
        if args.per_stage:
            print(timings.render())
            print()

    baseline_spec, baseline_time, baseline_digest, _ = results[0]
    ok = True
    for spec, elapsed, digest, _ in results[1:]:
        if digest != baseline_digest:
            print(f"DIGEST MISMATCH: {spec} != {baseline_spec}")
            ok = False
        else:
            print(f"{spec}: {baseline_time / elapsed:.2f}x vs {baseline_spec}"
                  f" (digest identical)")

    if args.json != "-":
        from repro.perfbench.report import write_custom_bench

        write_custom_bench(
            "runtime-executors",
            {
                "sites": args.sites,
                "seed": args.seed,
                "digest_identical": ok,
                "runs": [
                    {
                        "executor": spec,
                        "wall_s": round(elapsed, 4),
                        "digest": digest,
                        "speedup_vs_first": round(baseline_time / elapsed, 3),
                        "stages": [
                            {"name": stage.name,
                             "seconds": round(stage.seconds, 4),
                             "items": stage.items}
                            for stage in timings.stages
                        ],
                    }
                    for spec, elapsed, digest, timings in results
                ],
            },
            args.json,
            label=f"runtime-{args.sites}-sites",
        )
        print(f"wrote {args.json}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
