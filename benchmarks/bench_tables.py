"""Benchmarks regenerating every table of the paper (Tables 1-12).

Each benchmark measures producing the table from the classified study
data and prints the reproduced rows once (compare with the paper's
tables; see EXPERIMENTS.md for the side-by-side).
"""

from __future__ import annotations


from benchmarks.conftest import emit
from repro.analysis import tables


def _bench_table(benchmark, study, table_fn):
    result = benchmark(table_fn, study)
    emit(result.render())
    assert result.rows


def test_table1_cause_counts(benchmark, study):
    """Table 1: causes of redundant connections across all datasets."""
    _bench_table(benchmark, study, tables.table1)


def test_table2_top_ip_origins(benchmark, study):
    """Table 2: top-4 origins for cause IP with previous connections."""
    _bench_table(benchmark, study, tables.table2)


def test_table3_cert_issuers(benchmark, study):
    """Table 3: top certificate issuers for cause CERT."""
    _bench_table(benchmark, study, tables.table3)


def test_table4_cert_domains(benchmark, study):
    """Table 4: top domains for cause CERT with issuers."""
    _bench_table(benchmark, study, tables.table4)


def test_table5_issuer_market_share(benchmark, study):
    """Table 5: top-10 issuers over all connections (Appendix A.1)."""
    _bench_table(benchmark, study, tables.table5)


def test_table6_ip_ases(benchmark, study):
    """Table 6: top-10 ASNs for cause IP (Appendix A.2)."""
    _bench_table(benchmark, study, tables.table6)


def test_table7_overlap_causes(benchmark, study):
    """Table 7: cause counts on the corpora overlap (Appendix A.3)."""
    _bench_table(benchmark, study, tables.table7)


def test_table8_overlap_ip_origins(benchmark, study):
    """Table 8: top-5 IP origins on the overlap."""
    _bench_table(benchmark, study, tables.table8)


def test_table9_overlap_cert_issuers(benchmark, study):
    """Table 9: top-5 CERT issuers on the overlap."""
    _bench_table(benchmark, study, tables.table9)


def test_table10_overlap_cert_domains(benchmark, study):
    """Table 10: top-5 CERT domains on the overlap."""
    _bench_table(benchmark, study, tables.table10)


def test_table11_resolver_fleet(benchmark, study):
    """Table 11: the DNS resolver fleet."""
    _bench_table(benchmark, study, tables.table11)


def test_table12_top20_ip_domains(benchmark, study):
    """Table 12: top-20 domains for the IP case."""
    _bench_table(benchmark, study, tables.table12)
