"""Benchmarks for the performance-impact extension (paper future work)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.perf.congestion import SlowStartModel
from repro.perf.corpus import corpus_impact
from repro.perf.whatif import whatif_site


def test_corpus_whatif_impact(benchmark, study):
    """What-if coalescing analysis over the whole Alexa dataset."""
    dataset = study.dataset("alexa")

    def run():
        return corpus_impact(dataset, {})

    impact = benchmark(run)
    emit(impact.render())
    assert impact.total_connections_saved == (
        dataset.report.redundant_connections
    )


def test_single_site_whatif(benchmark, study):
    dataset = study.dataset("alexa")
    site, classification = max(
        dataset.classifications.items(),
        key=lambda item: item[1].redundant_count,
    )

    result = benchmark(
        whatif_site, site, classification.records, classification
    )
    assert result.connections_saved == classification.redundant_count


def test_slow_start_transfer(benchmark):
    model = SlowStartModel()

    outcome = benchmark(model.transfer, 500_000, rtt_s=0.05,
                        bandwidth_bps=50e6)
    assert outcome.rounds >= 1
