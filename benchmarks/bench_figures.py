"""Benchmarks regenerating the paper's figures.

* Figure 2 — 1-CDF of redundant connections per website (three series).
* Figure 3 — DNS resolver overlap heatmap over simulated days.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.figures import figure2, figure3
from repro.dnsstudy.study import DnsLoadBalancingStudy


def test_figure2_redundancy_distribution(benchmark, study):
    """Figure 2: distribution of redundant connections per website."""
    figure = benchmark(figure2, study)
    emit(figure.render(max_x=10, width=40))
    assert set(figure.series) == {"har-endless", "alexa", "alexa-nofetch"}


def test_figure3_resolver_overlap(benchmark, study, warm_dns_study):
    """Figure 3: per-pair resolver-overlap timelines (render only;
    the underlying study is measured separately below)."""
    figure = benchmark(figure3, study)
    emit(figure.render(max_slots=60))
    assert figure.classifications()


def test_figure3_dns_study_execution(benchmark, study):
    """The Appendix A.4 measurement itself: 14 resolvers x pairs x
    6-minute slots over half a simulated day."""

    def run_study():
        return DnsLoadBalancingStudy(
            ecosystem=study.ecosystem, duration_s=12 * 3600.0
        ).run()

    result = benchmark.pedantic(run_study, rounds=3, iterations=1)
    classes = {t.classification() for t in result.timelines}
    assert "never" in classes and "sometimes" in classes
