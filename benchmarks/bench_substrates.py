"""Micro-benchmarks for the protocol substrates (HPACK, frames, DNS).

These quantify the §2.2.1 cost argument: redundant connections
bootstrap the HPACK dynamic table again, so per-request header bytes on
a warm connection are far below a cold one.
"""

from __future__ import annotations

from repro.h2.frames import DataFrame, OriginFrame, decode_frames, encode_frame
from repro.h2.hpack import HpackDecoder, HpackEncoder

_HEADERS = [
    (":method", "GET"),
    (":scheme", "https"),
    (":authority", "www.google-analytics.com"),
    (":path", "/analytics.js"),
    ("user-agent", "repro-chromium/87.0"),
    ("accept", "*/*"),
    ("accept-encoding", "gzip, deflate"),
    ("cookie", "sid=0123456789abcdef"),
]


def test_hpack_encode_cold(benchmark):
    """Header block on a fresh connection (dictionary bootstrap)."""

    def encode_cold():
        return HpackEncoder().encode(_HEADERS)

    block = benchmark(encode_cold)
    assert len(block) > 40


def test_hpack_encode_warm(benchmark):
    """Header block on a reused connection (dictionary hits)."""
    encoder = HpackEncoder()
    encoder.encode(_HEADERS)

    block = benchmark(encoder.encode, _HEADERS)
    # The reuse dividend the paper says redundant connections forfeit.
    assert len(block) < 20


def test_hpack_decode(benchmark):
    encoder = HpackEncoder()
    blocks = [encoder.encode(_HEADERS) for _ in range(2)]
    decoder = HpackDecoder()
    decoder.decode(blocks[0])

    headers = benchmark(decoder.decode, blocks[1])
    assert headers == _HEADERS


def test_frame_roundtrip(benchmark):
    frames = [
        DataFrame(stream_id=1, data=b"x" * 1024),
        OriginFrame(origins=("https://a.example.com", "https://b.example.com")),
    ]
    wire = b"".join(encode_frame(frame) for frame in frames)

    decoded = benchmark(decode_frames, wire)
    assert decoded == frames


def test_dns_resolution_with_cache(benchmark, study):
    resolver = study.ecosystem.make_resolver("bench-dns")
    counter = iter(range(10**9))

    def resolve():
        tick = next(counter)
        return resolver.resolve("www.google-analytics.com", now=float(tick))

    answer = benchmark(resolve)
    assert answer.ips
