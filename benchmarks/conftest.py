"""Shared benchmark fixtures.

One study is built per session and shared by every table/figure bench;
each bench then measures regenerating its paper artefact from the
measurement data and prints the artefact once, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the paper's full evaluation output.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.study import Study, StudyConfig

#: Scale of the benchmark corpus.  ~300 site universe: large enough for
#: every table to have its heavy hitters, small enough to build in
#: seconds.  The executor is switchable from the environment
#: (results are executor-independent; only build time changes):
#:
#:     REPRO_BENCH_EXECUTOR=process:8 pytest benchmarks/ --benchmark-only
BENCH_CONFIG = StudyConfig(
    seed=7,
    n_sites=300,
    dns_study_days=0.5,
    executor=os.environ.get("REPRO_BENCH_EXECUTOR", "serial"),
)


@pytest.fixture(scope="session")
def study() -> Study:
    return Study.run(BENCH_CONFIG)


@pytest.fixture(scope="session")
def warm_dns_study(study: Study):
    """Force the lazy DNS study once so figure benches measure rendering."""
    return study.dns_study


def emit(artifact: str) -> None:
    """Print a rendered artefact beneath the benchmark output."""
    print()
    print(artifact)


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", default=None, metavar="PATH",
        help="after the run, write all pytest-benchmark results as "
             "BENCH-schema JSON (see repro.perfbench.report)",
    )


def pytest_sessionfinish(session, exitstatus):
    """Persist benchmark stats machine-readably when --bench-json is set."""
    path = session.config.getoption("--bench-json")
    bench_session = getattr(session.config, "_benchmarksession", None)
    if not path or bench_session is None:
        return
    entries = []
    for bench in bench_session.benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None:  # collected but never measured (e.g. skipped)
            continue
        entries.append({
            "name": bench.name,
            "group": bench.group,
            "rounds": stats.rounds,
            "mean_s": round(stats.mean, 6),
            "min_s": round(stats.min, 6),
            "stddev_s": round(stats.stddev, 6),
            "ops_per_s": round(stats.ops, 1),
        })
    if not entries:
        return
    from repro.perfbench.report import write_custom_bench

    write_custom_bench(
        "pytest-benchmarks",
        {"config": {"n_sites": BENCH_CONFIG.n_sites,
                    "seed": BENCH_CONFIG.seed,
                    "executor": BENCH_CONFIG.executor},
         "benchmarks": entries},
        path,
        label="benchmarks-suite",
    )
    print(f"\nwrote {path}")
