"""Shared benchmark fixtures.

One study is built per session and shared by every table/figure bench;
each bench then measures regenerating its paper artefact from the
measurement data and prints the artefact once, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the paper's full evaluation output.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.study import Study, StudyConfig

#: Scale of the benchmark corpus.  ~300 site universe: large enough for
#: every table to have its heavy hitters, small enough to build in
#: seconds.  The executor is switchable from the environment
#: (results are executor-independent; only build time changes):
#:
#:     REPRO_BENCH_EXECUTOR=process:8 pytest benchmarks/ --benchmark-only
BENCH_CONFIG = StudyConfig(
    seed=7,
    n_sites=300,
    dns_study_days=0.5,
    executor=os.environ.get("REPRO_BENCH_EXECUTOR", "serial"),
)


@pytest.fixture(scope="session")
def study() -> Study:
    return Study.run(BENCH_CONFIG)


@pytest.fixture(scope="session")
def warm_dns_study(study: Study):
    """Force the lazy DNS study once so figure benches measure rendering."""
    return study.dns_study


def emit(artifact: str) -> None:
    """Print a rendered artefact beneath the benchmark output."""
    print()
    print(artifact)
