"""Benchmarks for the extensions beyond the paper's evaluation.

* landing vs internal pages (the paper's §4.3 limitation, quantified);
* the validation scorecard (every encoded paper claim re-checked);
* full-report generation.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.internal import compare_landing_vs_internal
from repro.analysis.report import generate_report
from repro.analysis.validation import validate_study


def test_internal_pages_comparison(benchmark, study):
    """Landing-page vs internal-page redundancy on the same sites."""

    def run():
        return compare_landing_vs_internal(study.ecosystem, top=60, seed=5)

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(comparison.render())
    assert comparison.landing.h2_sites > 0
    assert comparison.internal.h2_sites > 0


def test_validation_scorecard(benchmark, study, warm_dns_study):
    """All encoded paper claims checked against the bench study."""
    scorecard = benchmark(validate_study, study)
    emit(scorecard.render())
    assert scorecard.all_passed, scorecard.render()


def test_full_report_generation(benchmark, study, warm_dns_study):
    """Rendering the complete Markdown evaluation report."""
    report = benchmark(generate_report, study)
    assert "Table 12" in report
