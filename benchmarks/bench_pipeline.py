"""Throughput benchmarks for the measurement pipeline itself.

These are not paper artefacts but performance baselines for the library:
page-visit throughput, HAR sanitisation, NetLog stitching and classifier
throughput at corpus scale.
"""

from __future__ import annotations

import random

import pytest

from repro.browser.browser import ChromiumBrowser
from repro.core.classifier import classify_site
from repro.core.session import LifetimeModel, records_from_visit
from repro.crawl.classify import classify_dataset
from repro.har.reader import read_sessions
from repro.har.writer import HarNoiseConfig, write_har
from repro.netlog.parser import parse_sessions
from repro.runtime import SerialExecutor, ThreadExecutor
from repro.util.clock import SimClock


@pytest.fixture(scope="module")
def visits(study):
    browser = ChromiumBrowser(
        ecosystem=study.ecosystem,
        resolver=study.ecosystem.make_resolver("bench"),
        clock=SimClock(),
        rng=random.Random(42),
    )
    return [browser.visit(site.domain) for site in study.ecosystem.websites[:50]]


def test_page_visit_throughput(benchmark, study):
    """Full browser visits (DNS, pool, requests, NetLog) per second."""
    browser = ChromiumBrowser(
        ecosystem=study.ecosystem,
        resolver=study.ecosystem.make_resolver("bench-visit"),
        clock=SimClock(),
        rng=random.Random(1),
    )
    domains = [site.domain for site in study.ecosystem.websites[:20]]
    counter = iter(range(10**9))

    def visit_one():
        domain = domains[next(counter) % len(domains)]
        return browser.visit(domain)

    visit = benchmark(visit_one)
    assert visit.ok


def test_har_write_and_sanitize(benchmark, visits):
    """HAR serialisation + the §4.3 filter cascade per visit."""
    counter = iter(range(10**9))
    rng = random.Random(3)

    def roundtrip():
        visit = visits[next(counter) % len(visits)]
        har = write_har(visit, noise=HarNoiseConfig(), rng=rng)
        return read_sessions(har)

    result = benchmark(roundtrip)
    assert result.stats.total > 0


def test_netlog_stitching(benchmark, visits):
    """NetLog event stitching per visit."""
    counter = iter(range(10**9))

    def stitch():
        visit = visits[next(counter) % len(visits)]
        return parse_sessions(visit.netlog)

    result = benchmark(stitch)
    assert result.records


def test_classifier_throughput(benchmark, visits):
    """§4.1 classification of one site's sessions."""
    record_sets = [records_from_visit(visit) for visit in visits]
    counter = iter(range(10**9))

    def classify_one():
        records = record_sets[next(counter) % len(record_sets)]
        return classify_site("site", records, model=LifetimeModel.ENDLESS)

    result = benchmark(classify_one)
    assert result.h2_connections >= 0


def test_corpus_classification_serial(benchmark, visits):
    """Whole-corpus classification through the serial executor."""
    site_records = {
        visit.domain: records_from_visit(visit) for visit in visits
    }

    dataset = benchmark(
        lambda: classify_dataset(
            "bench", site_records, model=LifetimeModel.ENDLESS,
            executor=SerialExecutor(),
        )
    )
    assert dataset.report.total_sites == len(site_records)


def test_corpus_classification_threaded(benchmark, visits):
    """Same fold through a thread pool (measures map_sites overhead)."""
    site_records = {
        visit.domain: records_from_visit(visit) for visit in visits
    }
    with ThreadExecutor(4) as executor:
        dataset = benchmark(
            lambda: classify_dataset(
                "bench", site_records, model=LifetimeModel.ENDLESS,
                executor=executor,
            )
        )
    assert dataset.report.total_sites == len(site_records)
