"""Benchmarks for the §5.1 headline numbers and the mitigation ablations."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.ablation import compare_mitigations
from repro.analysis.headline import headline
from repro.core.causes import Cause


def test_headline_statistics(benchmark, study):
    """§5.1/§5.3.3 running-text numbers (redundant shares, lifetimes,
    the 25 % reduction from patching privacy_mode)."""
    stats = benchmark(headline, study)
    emit(stats.render())
    assert stats.cred_connections_without_fetch == 0


def test_ablation_privacy_mode(benchmark, study):
    """§5.3.3: re-aggregate the patched run and verify CRED vanished."""

    def patched_report():
        return study.dataset("alexa-nofetch").report

    report = benchmark(patched_report)
    assert report.by_cause[Cause.CRED].connections == 0


@pytest.mark.benchmark(group="mitigations")
def test_ablation_full_mitigation_matrix(benchmark):
    """Conclusion: measure all four mitigation levers on fresh worlds
    (Fetch adaptation, coordinated DNS, certificate merging, ORIGIN
    frames)."""

    def run():
        return compare_mitigations(seed=7, n_sites=100, top=60)

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(comparison.render())
    assert comparison.reduction("no-fetch-credentials") > 0
    assert comparison.reduction("coordinated-dns") > 0
