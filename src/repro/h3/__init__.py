"""Deterministic alt-svc/HTTP-3 adoption plans (the ``h3_profile`` axis)."""

from repro.h3.plan import (
    PROFILES,
    H3Kind,
    H3Plan,
    H3Profile,
    H3Spec,
    apply_h3_adoption,
    h3_profile,
    profile_names,
)

__all__ = [
    "H3Kind",
    "H3Spec",
    "H3Profile",
    "H3Plan",
    "PROFILES",
    "apply_h3_adoption",
    "h3_profile",
    "profile_names",
]
