"""Deterministic HTTP/3 (alt-svc) adoption plans.

The paper deliberately disabled QUIC (§4.2.2) so alt-svc upgrades could
not flip connections between HTTP/2 and HTTP/3 mid-measurement — which
makes its unused reuse-potential numbers an h2-only lower bound.  This
module is the scenario layer that re-enables the question: a named
:class:`H3Profile` describes *which part of the ecosystem* advertises
``h3`` via alt-svc, and :class:`H3Plan` compiles that profile into pure
per-name adoption verdicts, exactly like the ``repro.faults`` and
``repro.evolve`` plan layers.

Determinism contract
--------------------

* The adoption verdict for a name is a **pure threshold hash** of
  ``("h3", kind, seed, name)`` — no RNG stream, no draw order.  Two
  evaluations of the same name agree no matter which order the fleet is
  walked in, and the verdict is rebuilt identically inside every
  process worker (the ISSUE's "(seed, run, domain)" seeding collapses
  to ``(seed, domain)`` here because the adoption state is world state:
  it must be identical across every run that shares the world).
* The hash deliberately **excludes** the profile name and the adoption
  fraction.  A name adopts iff its hash bucket falls below
  ``fraction * 10_000``, so every name adopted at fraction ``f`` is
  still adopted at every ``f' > f`` under the same seed — adoption is
  monotone in the fraction by construction, which is what makes
  ``adopt-<fraction>`` a sweepable axis rather than a reshuffle.
* The empty profile (``"none"``) compiles to ``None``: the generate
  hook short-circuits on ``plan is None`` before touching a single
  server, so an ``h3_profile="none"`` world is byte-identical to one
  built before this module existed (the pinned clean golden digest
  proves it).

>>> from repro.h3 import H3Kind, H3Plan, h3_profile, profile_names
>>> profile_names()
['broad', 'cdn-first', 'none']
>>> H3Plan.compile("none", seed=7) is None
True
>>> h3_profile("adopt-0.4").fraction_for(H3Kind.ORIGIN_ADOPT)
0.4
>>> plan = H3Plan.compile("broad", seed=7)
>>> plan.adopts(H3Kind.ORIGIN_ADOPT, "a.com") == \\
...     plan.adopts(H3Kind.ORIGIN_ADOPT, "a.com")
True
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util.rng import stable_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.web.ecosystem import Ecosystem

__all__ = [
    "H3Kind",
    "H3Spec",
    "H3Profile",
    "H3Plan",
    "PROFILES",
    "apply_h3_adoption",
    "h3_profile",
    "profile_names",
]


class H3Kind(enum.Enum):
    """The two ecosystem populations that can advertise alt-svc h3."""

    #: First-party origin fleets (a site's base domain plus its shards).
    ORIGIN_ADOPT = "origin-adopt"
    #: Third-party service providers (CDNs, fonts, ads, analytics).
    PROVIDER_ADOPT = "provider-adopt"


@dataclass(frozen=True)
class H3Spec:
    """One population's adoption fraction.

    ``fraction`` is the share of names (service keys for providers,
    site root domains for origins) whose fleets advertise ``h3``.
    """

    kind: H3Kind
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(
                f"adoption fraction must be in [0, 1], got {self.fraction}"
            )


@dataclass(frozen=True)
class H3Profile:
    """A named, immutable alt-svc rollout scenario."""

    name: str
    description: str
    specs: tuple[H3Spec, ...] = ()

    def __post_init__(self) -> None:
        kinds = [spec.kind for spec in self.specs]
        if len(set(kinds)) != len(kinds):
            raise ValueError(
                f"duplicate adoption kinds in profile {self.name!r}"
            )
        object.__setattr__(
            self, "_spec_index", {spec.kind: spec for spec in self.specs}
        )

    @property
    def empty(self) -> bool:
        return not self.specs

    def spec_for(self, kind: H3Kind) -> H3Spec | None:
        return self._spec_index.get(kind)

    def fraction_for(self, kind: H3Kind) -> float:
        spec = self.spec_for(kind)
        return spec.fraction if spec is not None else 0.0


#: The named scenario registry.  ``"none"`` is the inert default;
#: ``adopt-<fraction>`` names (e.g. ``adopt-0.25``) are synthesised on
#: lookup for sweeps over the adoption fraction.
PROFILES: dict[str, H3Profile] = {
    profile.name: profile
    for profile in (
        H3Profile("none", "no alt-svc h3 anywhere (the paper's world)"),
        H3Profile(
            "cdn-first",
            "the realistic early-rollout shape: most third-party "
            "providers advertise h3, few first-party origins do",
            (
                H3Spec(H3Kind.PROVIDER_ADOPT, fraction=0.8),
                H3Spec(H3Kind.ORIGIN_ADOPT, fraction=0.1),
            ),
        ),
        H3Profile(
            "broad",
            "late-rollout shape: h3 is the norm for providers and "
            "common for first parties (the h3 golden scenario)",
            (
                H3Spec(H3Kind.PROVIDER_ADOPT, fraction=0.9),
                H3Spec(H3Kind.ORIGIN_ADOPT, fraction=0.6),
            ),
        ),
    )
}

#: ``adopt-<fraction>`` sweepable profiles: both populations adopt at
#: the same fraction, e.g. ``adopt-0.25``.
_ADOPT_PATTERN = re.compile(r"adopt-(\d+(?:\.\d+)?)\Z")


def profile_names() -> list[str]:
    """Registered profile names, for CLI help and validation messages."""
    return sorted(PROFILES)


def h3_profile(name: str) -> H3Profile:
    """Look up a profile by name; raises ``ValueError`` on unknowns.

    Besides the registered names, ``adopt-<fraction>`` (fraction in
    [0, 1], e.g. ``adopt-0.35``) synthesises a uniform-adoption profile
    for sweeping the fraction as a numeric axis.
    """
    profile = PROFILES.get(name)
    if profile is not None:
        return profile
    match = _ADOPT_PATTERN.fullmatch(name)
    if match is not None:
        fraction = float(match.group(1))
        if 0.0 <= fraction <= 1.0:
            return H3Profile(
                name,
                f"uniform alt-svc adoption at fraction {fraction}",
                (
                    H3Spec(H3Kind.PROVIDER_ADOPT, fraction=fraction),
                    H3Spec(H3Kind.ORIGIN_ADOPT, fraction=fraction),
                ),
            )
    raise ValueError(
        f"unknown h3 profile {name!r}; registered profiles: "
        f"{profile_names()} (or adopt-<fraction> with fraction in [0, 1])"
    )


@dataclass(frozen=True)
class H3Plan:
    """A profile compiled against one world seed.

    Unlike :class:`repro.faults.FaultPlan` the plan holds no RNG
    streams at all: alt-svc adoption is *world state*, evaluated while
    the ecosystem is generated, so every verdict must be reproducible
    from ``(seed, name)`` alone regardless of evaluation order.
    """

    profile: H3Profile
    seed: int

    @classmethod
    def compile(
        cls, profile: H3Profile | str, *, seed: int
    ) -> "H3Plan | None":
        """Compile ``profile`` for one world; empty profiles yield ``None``.

        Returning ``None`` (rather than an inert plan) is what makes
        the h3 machinery provably free when unused: the generate hook
        guards on ``plan is not None``, so the ``none`` code path is
        literally the pre-h3 code path.
        """
        if isinstance(profile, str):
            profile = h3_profile(profile)
        if profile.empty:
            return None
        return cls(profile=profile, seed=seed)

    def adopts(self, kind: H3Kind, name: str) -> bool:
        """Pure verdict: does ``name``'s fleet advertise alt-svc h3?

        A threshold hash over ``("h3", kind, seed, name)`` — the
        profile name and fraction are deliberately excluded so the
        adopted set only ever *grows* with the fraction (see the module
        docstring's determinism contract).
        """
        spec = self.profile.spec_for(kind)
        if spec is None or spec.fraction <= 0.0:
            return False
        return (
            stable_hash("h3", kind.value, self.seed, name) % 10_000
            < spec.fraction * 10_000
        )


def apply_h3_adoption(ecosystem: "Ecosystem") -> tuple[tuple[str, int], ...]:
    """Flip ``alt_svc_h3`` across ``ecosystem`` per its configured profile.

    Providers adopt by service key (the whole edge fleet advertises);
    first parties adopt by root domain (the base fleet plus every shard
    fleet advertises).  Flags are only ever set, never cleared, so the
    application commutes with itself and with ``h3-rollout`` churn.
    Returns sorted ``(kind, adopted-name-count)`` pairs for reporting.
    """
    plan = H3Plan.compile(
        ecosystem.config.h3_profile, seed=ecosystem.config.seed
    )
    if plan is None:
        return ()
    adopted: dict[H3Kind, int] = {}
    for service in ecosystem.services:
        if plan.adopts(H3Kind.PROVIDER_ADOPT, service.key):
            adopted[H3Kind.PROVIDER_ADOPT] = (
                adopted.get(H3Kind.PROVIDER_ADOPT, 0) + 1
            )
            for server in ecosystem.fleet_for(list(service.domains)):
                server.alt_svc_h3 = True
    for site in ecosystem.websites:
        if plan.adopts(H3Kind.ORIGIN_ADOPT, site.domain):
            adopted[H3Kind.ORIGIN_ADOPT] = (
                adopted.get(H3Kind.ORIGIN_ADOPT, 0) + 1
            )
            fleet = ecosystem.fleet_for(
                [site.domain, *site.shard_domains()]
            )
            for server in fleet:
                server.alt_svc_h3 = True
    return tuple(sorted((kind.value, n) for kind, n in adopted.items()))
