"""Small statistics helpers used by the analysis layer.

The paper plots ``1 - CDF`` curves (Figure 2) and reports medians of
integer-valued distributions; these helpers provide exactly that without
pulling numpy into the core dependency graph (benchmarks may still use
numpy for speed).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

__all__ = ["ccdf", "median", "quantile", "counter_to_series"]


def ccdf(values: Iterable[int]) -> list[tuple[int, float]]:
    """Complementary CDF ``P(X >= x)`` evaluated at each support point.

    Returns ``(x, share)`` pairs sorted by ``x``; ``share`` is the
    fraction of samples that are ``>= x``.  Matches the paper's
    "1 - CDF, sites affected" axis where the y value at ``x`` is the
    share of sites with at least ``x`` redundant connections.

    >>> ccdf([0, 1, 1, 3])
    [(0, 1.0), (1, 0.75), (3, 0.25)]
    """
    counts = Counter(values)
    total = sum(counts.values())
    if total == 0:
        return []
    remaining = total
    out: list[tuple[int, float]] = []
    for x in sorted(counts):
        out.append((x, remaining / total))
        remaining -= counts[x]
    return out


def quantile(values: Sequence[float], q: float) -> float:
    """Inclusive linear-interpolation quantile (numpy's default method)."""
    if not values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    position = q * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


def median(values: Sequence[float]) -> float:
    """The 0.5 quantile."""
    return quantile(values, 0.5)


def counter_to_series(
    counter: Counter, top: int | None = None
) -> list[tuple[str, int]]:
    """Sort a counter by descending count, then key, optionally truncated."""
    series = sorted(counter.items(), key=lambda item: (-item[1], item[0]))
    if top is not None:
        series = series[:top]
    return series
