"""Simulated time.

All timestamps in the reproduction are simulated seconds since an
arbitrary epoch; nothing reads the wall clock.  A :class:`SimClock` is
threaded through the browser, DNS and crawl layers so that connection
lifetimes, DNS TTL expiry and the multi-day resolver study all share one
timeline.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """A monotonically advancing simulated clock.

    >>> clock = SimClock()
    >>> clock.now()
    0.0
    >>> clock.advance(1.5)
    1.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot move time backwards (advance by {seconds})")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump forward to ``timestamp`` (must not be in the past)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move time backwards (now={self._now}, target={timestamp})"
            )
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now})"
