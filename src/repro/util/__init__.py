"""Shared utilities: deterministic RNG, simulated time, formatting, stats."""

from repro.util.clock import SimClock
from repro.util.formatting import align_table, pct, si_count
from repro.util.rng import RngFactory, derive_seed, stable_hash
from repro.util.stats import ccdf, counter_to_series, median, quantile

__all__ = [
    "SimClock",
    "align_table",
    "pct",
    "si_count",
    "RngFactory",
    "derive_seed",
    "stable_hash",
    "ccdf",
    "counter_to_series",
    "median",
    "quantile",
]
