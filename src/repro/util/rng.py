"""Deterministic random-number streams.

Every stochastic component of the reproduction draws from a named child
stream of a single root seed, so an entire study (ecosystem generation,
crawls, DNS load balancing, logging noise) is exactly reproducible from
one integer.

The derivation is stable across processes and Python versions: child
seeds are computed by hashing ``(root_seed, name)`` with BLAKE2b rather
than relying on :func:`hash`, which is salted per process.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["derive_seed", "RngFactory", "stable_hash"]


def stable_hash(*parts: object, bits: int = 64) -> int:
    """Return a process-stable hash of ``parts`` with ``bits`` bits.

    Parts are rendered with :func:`repr`, so only use values whose repr
    is stable (str, int, tuples thereof).
    """
    if bits <= 0 or bits % 8 != 0:
        raise ValueError(f"bits must be a positive multiple of 8, got {bits}")
    digest = hashlib.blake2b(
        "\x1f".join(repr(part) for part in parts).encode("utf-8"),
        digest_size=bits // 8,
    ).digest()
    return int.from_bytes(digest, "big")


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed for stream ``name`` from ``root_seed``."""
    return stable_hash(root_seed, name)


class RngFactory:
    """Factory of independent, named :class:`random.Random` streams.

    >>> rng = RngFactory(seed=42)
    >>> a = rng.stream("dns")
    >>> b = rng.stream("dns")
    >>> a.random() == b.random()
    True

    Streams with different names are decorrelated; the same name always
    yields a stream with identical output.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def stream(self, name: str) -> random.Random:
        """Return a fresh :class:`random.Random` for stream ``name``."""
        return random.Random(derive_seed(self.seed, name))

    def child(self, name: str) -> "RngFactory":
        """Return a factory whose streams are namespaced under ``name``."""
        return RngFactory(derive_seed(self.seed, name))

    def choice_weighted(
        self, name: str, items: Sequence[T], weights: Sequence[float]
    ) -> T:
        """One weighted choice from a throwaway stream called ``name``."""
        stream = self.stream(name)
        return stream.choices(list(items), weights=list(weights), k=1)[0]

    def shuffled(self, name: str, items: Sequence[T]) -> list[T]:
        """Return a deterministically shuffled copy of ``items``."""
        out = list(items)
        self.stream(name).shuffle(out)
        return out

    def ints(self, name: str, lo: int, hi: int) -> Iterator[int]:
        """Yield an endless stream of integers in ``[lo, hi]``."""
        stream = self.stream(name)
        while True:
            yield stream.randint(lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self.seed})"
