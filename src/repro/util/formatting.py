"""Paper-style number and table formatting.

The IMC paper renders counts as ``2.25 M`` / ``52.31 k`` and percentages
rounded to integers ("For ease of readability, we round percentages to
integer numbers").  These helpers reproduce that style so our generated
tables are directly comparable with the paper's.
"""

from __future__ import annotations

import math

__all__ = ["si_count", "pct", "align_table"]

#: Count units in ascending order; the paper never goes beyond "M".
_UNITS: tuple[tuple[int, str], ...] = ((1, ""), (1_000, " k"), (1_000_000, " M"))


def si_count(value: float) -> str:
    """Format ``value`` the way the paper prints counts.

    The unit is chosen *after* rounding, so a value that rounds to
    1000 of one unit promotes to the next instead of rendering as
    ``'1000.00 k'``.

    >>> si_count(2_250_000)
    '2.25 M'
    >>> si_count(52_310)
    '52.31 k'
    >>> si_count(255)
    '255'
    >>> si_count(999_995)
    '1.00 M'
    >>> si_count(999.996)
    '1.00 k'
    """
    if value < 0:
        raise ValueError(f"counts are non-negative, got {value!r}")
    index = 0
    while index + 1 < len(_UNITS) and value >= _UNITS[index + 1][0]:
        index += 1
    # Promote while the two-decimal rendering reaches 1000 of the unit.
    while (
        index + 1 < len(_UNITS)
        and float(f"{value / _UNITS[index][0]:.2f}") >= 1_000
    ):
        index += 1
    scale, suffix = _UNITS[index]
    if scale == 1:
        if float(value).is_integer():
            return str(int(value))
        return f"{value:.2f}"
    return f"{value / scale:.2f}{suffix}"


def _round_half_away_from_zero(value: float) -> int:
    """Round ties away from zero (the paper's convention), not to even."""
    if value >= 0:
        return int(math.floor(value + 0.5))
    return -int(math.floor(-value + 0.5))


def pct(numerator: float, denominator: float) -> str:
    """Integer-rounded percentage, paper style (``'76 %'``).

    Ties round half away from zero — Python's built-in banker's
    rounding would render ``pct(1, 200)`` as ``'0 %'`` and
    ``pct(5, 200)`` as ``'2 %'``, which disagrees with the paper's
    tables.  A zero denominator renders as ``'- %'`` to keep tables
    printable.

    >>> pct(1, 200)
    '1 %'
    >>> pct(5, 200)
    '3 %'
    >>> pct(76.4, 100)
    '76 %'
    >>> pct(5, 0)
    '- %'
    """
    if denominator == 0:
        return "- %"
    return f"{_round_half_away_from_zero(100 * numerator / denominator)} %"


def align_table(rows: list[list[str]], header: list[str] | None = None) -> str:
    """Render ``rows`` as a monospace table with aligned columns.

    All rows (and the header, if given) must have the same number of
    columns.  The first column is left-aligned; the rest right-aligned,
    matching the typography of the paper's count tables.
    """
    body = ([header] if header else []) + rows
    if not body:
        return ""
    width = len(body[0])
    for row in body:
        if len(row) != width:
            raise ValueError(f"ragged table: expected {width} columns, got {len(row)}")
    col_widths = [max(len(row[i]) for row in body) for i in range(width)]
    lines = []
    for index, row in enumerate(body):
        cells = [row[0].ljust(col_widths[0])]
        cells += [cell.rjust(col_widths[i]) for i, cell in enumerate(row) if i > 0]
        lines.append("  ".join(cells).rstrip())
        if header and index == 0:
            lines.append("  ".join("-" * w for w in col_widths))
    return "\n".join(lines)
