"""Paper-style number and table formatting.

The IMC paper renders counts as ``2.25 M`` / ``52.31 k`` and percentages
rounded to integers ("For ease of readability, we round percentages to
integer numbers").  These helpers reproduce that style so our generated
tables are directly comparable with the paper's.
"""

from __future__ import annotations

__all__ = ["si_count", "pct", "align_table"]


def si_count(value: float) -> str:
    """Format ``value`` the way the paper prints counts.

    >>> si_count(2_250_000)
    '2.25 M'
    >>> si_count(52_310)
    '52.31 k'
    >>> si_count(255)
    '255'
    """
    if value < 0:
        raise ValueError(f"counts are non-negative, got {value!r}")
    if value >= 1_000_000:
        return f"{value / 1_000_000:.2f} M"
    if value >= 1_000:
        return f"{value / 1_000:.2f} k"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.2f}"


def pct(numerator: float, denominator: float) -> str:
    """Integer-rounded percentage, paper style (``'76 %'``).

    A zero denominator renders as ``'- %'`` to keep tables printable.
    """
    if denominator == 0:
        return "- %"
    return f"{round(100 * numerator / denominator)} %"


def align_table(rows: list[list[str]], header: list[str] | None = None) -> str:
    """Render ``rows`` as a monospace table with aligned columns.

    All rows (and the header, if given) must have the same number of
    columns.  The first column is left-aligned; the rest right-aligned,
    matching the typography of the paper's count tables.
    """
    body = ([header] if header else []) + rows
    if not body:
        return ""
    width = len(body[0])
    for row in body:
        if len(row) != width:
            raise ValueError(f"ragged table: expected {width} columns, got {len(row)}")
    col_widths = [max(len(row[i]) for row in body) for i in range(width)]
    lines = []
    for index, row in enumerate(body):
        cells = [row[0].ljust(col_widths[0])]
        cells += [cell.rjust(col_widths[i]) for i, cell in enumerate(row) if i > 0]
        lines.append("  ".join(cells).rstrip())
        if header and index == 0:
            lines.append("  ".join("-" * w for w in col_widths))
    return "\n".join(lines)
