"""Domain-name algebra.

A tiny, dependency-free subset of what a public-suffix-list library
provides, sufficient for the reproduction: normalisation, label access,
registrable-domain extraction and subdomain tests.

The synthetic ecosystem only mints names under a fixed set of public
suffixes (see :data:`PUBLIC_SUFFIXES`), mirroring the common suffixes in
the paper's tables (``.com``, ``.net``, ``.de``, ``.io``, ...), so a full
PSL is unnecessary; the module nonetheless handles two-level suffixes
such as ``co.uk`` correctly.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "PUBLIC_SUFFIXES",
    "normalize",
    "labels",
    "is_valid_hostname",
    "public_suffix",
    "registrable_domain",
    "is_subdomain_of",
    "parent_domain",
]

#: Public suffixes known to the synthetic ecosystem.  Two-level entries
#: must be listed explicitly.
PUBLIC_SUFFIXES: frozenset[str] = frozenset(
    {
        "com", "net", "org", "io", "de", "fr", "jp", "ru", "br", "cn",
        "info", "biz", "tv", "me", "co", "app", "dev", "cloud", "shop",
        "co.uk", "com.au", "co.jp", "com.br",
    }
)

_LABEL_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789-")


_EDGE_CHARS = frozenset(" \t\r\n\v\f.")


def normalize(name: str) -> str:
    """Lower-case ``name`` and strip any trailing root dot."""
    # Fast path: almost every caller passes an already-normalised name
    # (hot loops re-normalise defensively); returning the same object
    # also keeps downstream dict lookups on identical keys.
    if name and name[0] not in _EDGE_CHARS and name[-1] not in _EDGE_CHARS \
            and name.islower():
        return name
    return name.strip().rstrip(".").lower()


def labels(name: str) -> list[str]:
    """Split a normalised name into its dot-separated labels."""
    name = normalize(name)
    if not name:
        return []
    return name.split(".")


@lru_cache(maxsize=1 << 16)
def is_valid_hostname(name: str) -> bool:
    """LDH-rule hostname validation (letters/digits/hyphens, ≤63/label).

    Pure per-name work that every ``Resource``/SAN construction repeats
    for the same few thousand names of a study, hence memoized.
    """
    parts = labels(name)
    if not parts or len(normalize(name)) > 253:
        return False
    for label in parts:
        if not label or len(label) > 63:
            return False
        if label.startswith("-") or label.endswith("-"):
            return False
        if not set(label) <= _LABEL_CHARS:
            return False
    return True


@lru_cache(maxsize=1 << 16)
def public_suffix(name: str) -> str | None:
    """Return the public suffix of ``name``, or ``None`` if unknown."""
    parts = labels(name)
    for take in (2, 1):
        if len(parts) >= take:
            candidate = ".".join(parts[-take:])
            if candidate in PUBLIC_SUFFIXES:
                return candidate
    return None


def registrable_domain(name: str) -> str | None:
    """The registrable ("second-level") domain, e.g. site of a shard.

    >>> registrable_domain("img.shop.example.co.uk")
    'example.co.uk'
    >>> registrable_domain("www.google.com")
    'google.com'

    Returns ``None`` when ``name`` *is* a bare public suffix or when the
    suffix is unknown.
    """
    return _registrable_domain_cached(normalize(name))


@lru_cache(maxsize=1 << 16)
def _registrable_domain_cached(name: str) -> str | None:
    suffix = public_suffix(name)
    if suffix is None:
        return None
    parts = labels(name)
    suffix_len = len(suffix.split("."))
    if len(parts) <= suffix_len:
        return None
    return ".".join(parts[-(suffix_len + 1):])


def is_subdomain_of(name: str, ancestor: str) -> bool:
    """True when ``name`` equals ``ancestor`` or sits below it."""
    name_parts = labels(name)
    ancestor_parts = labels(ancestor)
    if not ancestor_parts or len(name_parts) < len(ancestor_parts):
        return False
    return name_parts[-len(ancestor_parts):] == ancestor_parts


def parent_domain(name: str) -> str | None:
    """Drop the left-most label; ``None`` when nothing remains."""
    parts = labels(name)
    if len(parts) <= 1:
        return None
    return ".".join(parts[1:])
