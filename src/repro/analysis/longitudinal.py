"""Longitudinal analysis: one scenario measured across churn epochs.

The evolution engine (:mod:`repro.evolve`) advances the synthetic
ecosystem through epochs of certificate rotation, DNS churn, CDN
migration or shard consolidation; this module quantifies what that
churn does to the paper's observables over time:

* **reuse trajectory** — per dataset and epoch: HTTP/2 connection
  counts, redundant connections, the redundant share and its
  percentage-point delta against epoch 0;
* **attribution drift** — the Table-1 cause split (CERT / IP / CRED)
  per epoch, because e.g. SAN merges move redundancy out of cause CERT
  while pool reshuffles move cause IP;
* **reuse-opportunity half-life** — per dataset, the (interpolated)
  epoch at which redundant connections fall to half their epoch-0
  count: the decay constant of the paper's headline phenomenon under
  e.g. shard consolidation;
* **churn ledger** — every mutation the engine applied, per epoch.

Every epoch's study shares the seed, site list and crawl schedule, so
the deltas are attributable to ecosystem churn alone (the runner,
:func:`repro.evolve.run_longitudinal`, enforces this by construction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.digest import study_digest
from repro.analysis.study import Study, StudyConfig
from repro.core.causes import Cause
from repro.util.formatting import align_table

__all__ = [
    "DatasetDrift",
    "EpochSnapshot",
    "LongitudinalResult",
    "half_life",
    "longitudinal_report",
    "snapshot_study",
]


@dataclass(frozen=True)
class DatasetDrift:
    """One dataset's reuse numbers at one epoch, detached from the study."""

    h2_connections: int
    redundant_connections: int
    cause_connections: dict[str, int]

    @property
    def redundant_share(self) -> float:
        if not self.h2_connections:
            return 0.0
        return self.redundant_connections / self.h2_connections


@dataclass(frozen=True)
class EpochSnapshot:
    """Everything the longitudinal report keeps from one epoch's study."""

    epoch: int
    digest: str
    datasets: dict[str, DatasetDrift]
    #: Mutations the engine applied in *this* epoch (empty at epoch 0).
    churn: tuple[tuple[str, int], ...]


def snapshot_study(epoch: int, study: Study) -> EpochSnapshot:
    """Reduce one epoch's full study to its longitudinal snapshot."""
    churn: tuple[tuple[str, int], ...] = ()
    for ledger_epoch, counts in study.ecosystem.evolution_ledger:
        if ledger_epoch == epoch:
            churn = counts
    return EpochSnapshot(
        epoch=epoch,
        digest=study_digest(study),
        datasets={
            name: DatasetDrift(
                h2_connections=dataset.report.h2_connections,
                redundant_connections=dataset.report.redundant_connections,
                cause_connections={
                    cause.value: dataset.report.by_cause[cause].connections
                    for cause in Cause
                },
            )
            for name, dataset in study.datasets.items()
        },
        churn=churn,
    )


def half_life(values: list[float]) -> float | None:
    """The interpolated index where ``values`` first halves, or ``None``.

    ``values[0]`` is the epoch-0 level; the half-life is the first
    (linearly interpolated) epoch at which the series reaches half of
    it.  ``None`` means the series never decayed that far — including
    trajectories that grow.
    """
    if not values or values[0] <= 0:
        return None
    target = values[0] / 2.0
    for index in range(1, len(values)):
        if values[index] <= target:
            previous, current = values[index - 1], values[index]
            if previous == current:
                return float(index)
            return (index - 1) + (previous - target) / (previous - current)
    return None


@dataclass(frozen=True)
class LongitudinalResult:
    """The rendered-ready epoch sequence of one evolution scenario."""

    policy: str
    config: StudyConfig
    snapshots: tuple[EpochSnapshot, ...]

    @property
    def epochs(self) -> list[int]:
        return [snapshot.epoch for snapshot in self.snapshots]

    def digests(self) -> list[tuple[int, str]]:
        return [(s.epoch, s.digest) for s in self.snapshots]

    def shared_datasets(self) -> list[str]:
        """Dataset keys present at every epoch, epoch-0 order."""
        if not self.snapshots:
            return []
        names = list(self.snapshots[0].datasets)
        for snapshot in self.snapshots[1:]:
            names = [n for n in names if n in snapshot.datasets]
        return names

    # ------------------------------------------------------------------
    def reuse_rows(self) -> list[list[str]]:
        rows = []
        for name in self.shared_datasets():
            base = self.snapshots[0].datasets[name]
            for snapshot in self.snapshots:
                drift = snapshot.datasets[name]
                delta = (drift.redundant_share - base.redundant_share) * 100
                rows.append([
                    name,
                    str(snapshot.epoch),
                    str(drift.h2_connections),
                    str(drift.redundant_connections),
                    f"{drift.redundant_share:.1%}",
                    f"{round(delta, 1) + 0.0:+.1f} pp",
                ])
        return rows

    def drift_rows(self) -> list[list[str]]:
        """CERT/IP/CRED connection counts, one column per epoch."""
        rows = []
        for name in self.shared_datasets():
            for cause in (Cause.CERT, Cause.IP, Cause.CRED):
                counts = [
                    snapshot.datasets[name].cause_connections[cause.value]
                    for snapshot in self.snapshots
                ]
                if not any(counts):
                    continue
                rows.append([name, cause.value] + [str(n) for n in counts])
        return rows

    def half_life_rows(self) -> list[list[str]]:
        rows = []
        horizon = self.snapshots[-1].epoch if self.snapshots else 0
        for name in self.shared_datasets():
            series = [
                float(snapshot.datasets[name].redundant_connections)
                for snapshot in self.snapshots
            ]
            life = half_life(series)
            rows.append([
                name,
                str(int(series[0])),
                str(int(series[-1])),
                f"{life:.1f} epochs" if life is not None
                else f"> {horizon} epochs",
            ])
        return rows

    def churn_rows(self) -> list[list[str]]:
        rows = []
        for snapshot in self.snapshots:
            if snapshot.epoch == 0:
                continue
            applied = ", ".join(
                f"{kind}={count}" for kind, count in snapshot.churn
            )
            rows.append([str(snapshot.epoch), applied or "(nothing fired)"])
        return rows

    # ------------------------------------------------------------------
    def render(self) -> str:
        config = self.config
        epoch_headers = [f"e{epoch}" for epoch in self.epochs]
        parts = [
            f"Longitudinal report — policy '{self.policy}' over "
            f"{self.snapshots[-1].epoch} epochs "
            f"(seed={config.seed}, n_sites={config.n_sites})",
            "",
            "Reuse trajectory per dataset",
            align_table(
                self.reuse_rows(),
                header=["Dataset", "Epoch", "h2", "Redundant", "Share",
                        "vs e0"],
            ),
            "",
            "Attribution drift (redundant connections by cause)",
            align_table(
                self.drift_rows(),
                header=["Dataset", "Cause"] + epoch_headers,
            ),
            "",
            "Reuse-opportunity half-life (redundant connections)",
            align_table(
                self.half_life_rows(),
                header=["Dataset", "e0", f"e{self.snapshots[-1].epoch}",
                        "Half-life"],
            ),
            "",
            "Churn ledger (mutations applied per epoch)",
        ]
        ledger = self.churn_rows()
        if ledger:
            parts.append(align_table(ledger, header=["Epoch", "Applied"]))
        else:
            parts.append("  (no churn epochs)")
        return "\n".join(parts)


def longitudinal_report(result: LongitudinalResult) -> LongitudinalResult:
    """Identity hook mirroring ``resilience_report``'s shape.

    The runner already produces the result object; this exists so call
    sites read uniformly (``print(longitudinal_report(result).render())``)
    and future validation (e.g. epoch continuity checks) has one home.
    """
    epochs = [snapshot.epoch for snapshot in result.snapshots]
    if epochs != list(range(len(epochs))):
        raise ValueError(
            f"longitudinal snapshots must cover epochs 0..N without gaps, "
            f"got {epochs}"
        )
    return result
