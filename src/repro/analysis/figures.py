"""Figure renderers (Figures 2 and 3).

Figures are returned as data (for tests and notebooks) plus an ASCII
rendering (for terminals and EXPERIMENTS.md) — no plotting dependency.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.analysis.study import DATASET_LABELS, Study
from repro.dnsstudy.study import DnsStudyResult

__all__ = ["Figure2Result", "figure2", "Figure3Result", "figure3"]


@dataclass
class Figure2Result:
    """1-CDF of redundant connections per website, per dataset."""

    series: dict[str, list[tuple[int, float]]] = field(default_factory=dict)

    def share_with_at_least(self, dataset: str, x: int) -> float:
        """P(redundant connections >= x) for one dataset."""
        shares = dict(self.series[dataset])
        if x in shares:
            return shares[x]
        if not shares or x > max(shares):
            return 0.0
        return 1.0  # x below the support starts at certainty

    def render(self, *, max_x: int = 15, width: int = 50) -> str:
        """ASCII rendering of the paper's Figure 2."""
        lines = ["Figure 2: Distribution of redundant connections per website",
                 "          (share of sites with >= x redundant connections)"]
        for name in self.series:
            label = DATASET_LABELS.get(name, name)
            lines.append(f"  {label}")
            for x in range(0, max_x + 1):
                share = self.share_with_at_least(name, x)
                bar = "#" * int(round(share * width))
                lines.append(f"    >= {x:>2}: {share:6.2%} |{bar}")
        return "\n".join(lines)


def figure2(study: Study, *, datasets: tuple[str, ...] | None = None) -> Figure2Result:
    """Compute the Figure 2 series.

    The paper plots HTTP Archive Endless, Alexa Top 100k, and Alexa
    without the Fetch Standard.
    """
    keys = datasets or ("har-endless", "alexa", "alexa-nofetch")
    result = Figure2Result()
    for key in keys:
        report = study.dataset(key).report
        result.series[key] = ccdf_complement(report.redundant_per_site)
    return result


def ccdf_complement(values: list[int]) -> list[tuple[int, float]]:
    """``P(X >= x)`` evaluated at every integer from 0 to max(values).

    Unlike :func:`repro.util.stats.ccdf` (support points only), this
    fills gaps, which makes the 'share of sites with >= x redundant
    connections' reads of §5.1 straightforward.
    """
    if not values:
        return []
    ordered = sorted(values)
    total = len(ordered)
    return [
        (x, (total - bisect.bisect_left(ordered, x)) / total)
        for x in range(0, max(ordered) + 1)
    ]


@dataclass
class Figure3Result:
    """Per-pair resolver-overlap timelines (the Appendix A.4 heatmap)."""

    study: DnsStudyResult

    def render(self, *, max_slots: int = 60) -> str:
        """ASCII heatmap: one row per pair, one column per time slot."""
        shades = " .:-=+*#"
        lines = [
            "Figure 3: Number of DNS vantage points where domains overlapped",
            f"          ({self.study.resolver_count} resolvers, "
            f"{self.study.interval_s:.0f}s slots; darker = more overlap)",
        ]
        for timeline in self.study.timelines:
            points = timeline.points[:max_slots]
            cells = []
            for _, count in points:
                index = min(
                    len(shades) - 1,
                    round(count / max(1, self.study.resolver_count)
                          * (len(shades) - 1)),
                )
                cells.append(shades[index])
            label = f"{timeline.pair.domain} / prev: {timeline.pair.prev}"
            lines.append(f"  [{''.join(cells)}] {label} ({timeline.classification()})")
        return "\n".join(lines)

    def classifications(self) -> dict[str, str]:
        """pair label → never/sometimes/always."""
        return {
            timeline.pair.label(): timeline.classification()
            for timeline in self.study.timelines
        }


def figure3(study: Study) -> Figure3Result:
    """Run (or reuse) the DNS study and wrap it for rendering."""
    return Figure3Result(study=study.dns_study)
