"""Full-report generation: every artefact of the paper in one document.

``generate_report`` renders Tables 1–12, Figures 2–3, the headline
statistics and the validation scorecard as one Markdown document — the
reproduction's equivalent of the paper's evaluation section, generated
from data.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.export import table_to_markdown
from repro.analysis.figures import figure2, figure3
from repro.analysis.headline import headline
from repro.analysis.study import Study
from repro.analysis.tables import ALL_TABLES
from repro.analysis.validation import validate_study

__all__ = ["generate_report", "write_report"]


def generate_report(study: Study, *, include_dns_study: bool = True) -> str:
    """Render the full evaluation as Markdown."""
    config = study.config
    parts = [
        "# Reproduction report — Sharding and HTTP/2 Connection Reuse "
        "Revisited (IMC '21)",
        "",
        f"Seed {config.seed}, {config.n_sites} sites "
        f"({study.dataset('har-endless').report.h2_sites} HTTP-Archive-style "
        f"HTTP/2 sites, {study.dataset('alexa').report.h2_sites} Alexa-style "
        "sites after intersecting both runs).",
        "",
        "## Headline statistics (§5.1, §5.3.3)",
        "",
        "```",
        headline(study).render(),
        "```",
        "",
    ]

    # Journalled runs state their shard coverage up front; a degraded
    # (quarantined) run names every excluded domain so no table below
    # can be mistaken for a complete measurement.
    coverage = study.coverage
    if coverage is not None:
        parts += [
            "## Run coverage",
            "",
            f"- Status: {coverage.describe()}",
            f"- Shards ok: {coverage.shards_ok}/{coverage.shards_total}",
            f"- Shards quarantined: {coverage.shards_quarantined}",
        ]
        if coverage.excluded_domains:
            parts.append(
                "- Excluded domains: "
                + ", ".join(coverage.excluded_domains)
            )
        parts.append("")

    table_order = [f"table{i}" for i in range(1, 13)]
    for name in table_order:
        if name == "table11" and not include_dns_study:
            continue
        parts.append(table_to_markdown(ALL_TABLES[name](study)))
        parts.append("")

    parts += [
        "## Figure 2 — redundant connections per website",
        "",
        "```",
        figure2(study).render(max_x=10, width=40),
        "```",
        "",
    ]
    if include_dns_study:
        parts += [
            "## Figure 3 — DNS resolver overlap",
            "",
            "```",
            figure3(study).render(max_slots=60),
            "```",
            "",
        ]
    parts += [
        "## Validation against the paper's claims",
        "",
        "```",
        validate_study(study).render(),
        "```",
        "",
    ]
    return "\n".join(parts)


def write_report(study: Study, path: str | Path, **kwargs) -> Path:
    """Generate and write the report; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(generate_report(study, **kwargs))
    return path
