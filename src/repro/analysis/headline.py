"""The §5.1 / §5.3.3 headline statistics.

The numbers quoted in the paper's running text rather than in tables:

* share of HTTP/2 sites with at least one redundant connection
  (76 % HAR endless / 38 % immediate / 95 % Alexa);
* "around 50 % of all sites open at least two [HAR] / six [Alexa]
  redundant connections" (Figure 2 reads);
* connection lifetimes: most connections outlive the test, and those
  that close early have a median lifetime of 122.2 s;
* the CRED ablation: patching privacy_mode removes the CRED cause
  entirely and cuts total redundant connections by ~25 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.figures import ccdf_complement
from repro.analysis.study import Study
from repro.core.causes import Cause
from repro.util.stats import median

__all__ = ["HeadlineStats", "headline"]


@dataclass(frozen=True)
class HeadlineStats:
    """All §5.1/§5.3.3 text numbers in one bundle."""

    har_endless_redundant_share: float
    har_immediate_redundant_share: float
    alexa_redundant_share: float
    alexa_endless_redundant_share: float
    har_share_two_or_more: float
    alexa_share_six_or_more: float
    closed_connection_share: float
    median_closed_lifetime_s: float | None
    cred_connections_with_fetch: int
    cred_connections_without_fetch: int
    redundant_reduction_share: float

    def render(self) -> str:
        lines = [
            "Headline statistics (§5.1, §5.3.3)",
            f"  HTTP Archive sites with redundant connections (endless):  "
            f"{self.har_endless_redundant_share:.0%}",
            f"  HTTP Archive sites with redundant connections (immediate): "
            f"{self.har_immediate_redundant_share:.0%}",
            f"  Alexa sites with redundant connections:                    "
            f"{self.alexa_redundant_share:.0%}",
            f"  Alexa sites, endless assumption:                           "
            f"{self.alexa_endless_redundant_share:.0%}",
            f"  HAR sites with >= 2 redundant connections:                 "
            f"{self.har_share_two_or_more:.0%}",
            f"  Alexa sites with >= 6 redundant connections:               "
            f"{self.alexa_share_six_or_more:.0%}",
            f"  Share of connections closing before test end:              "
            f"{self.closed_connection_share:.1%}",
            f"  Median lifetime of early-closed connections:               "
            + (
                f"{self.median_closed_lifetime_s:.1f} s"
                if self.median_closed_lifetime_s is not None
                else "n/a"
            ),
            f"  CRED connections, Fetch-compliant run:                     "
            f"{self.cred_connections_with_fetch}",
            f"  CRED connections, privacy-mode-patched run:                "
            f"{self.cred_connections_without_fetch}",
            f"  Redundant-connection reduction from the patch:             "
            f"{self.redundant_reduction_share:.0%}",
        ]
        return "\n".join(lines)


def _share_at_least(values: list[int], x: int) -> float:
    for value, share in ccdf_complement(values):
        if value == x:
            return share
    return 0.0


def headline(study: Study) -> HeadlineStats:
    """Compute every running-text number from the study's datasets."""
    har_endless = study.dataset("har-endless").report
    har_immediate = study.dataset("har-immediate").report
    alexa = study.dataset("alexa").report
    alexa_endless = study.dataset("alexa-endless").report
    nofetch = study.dataset("alexa-nofetch").report

    closed = study.early_closed_lifetimes()
    total_h2 = alexa.h2_connections

    reduction = 0.0
    if alexa.redundant_connections:
        reduction = 1.0 - (
            nofetch.redundant_connections / alexa.redundant_connections
        )

    return HeadlineStats(
        har_endless_redundant_share=har_endless.redundant_site_share(),
        har_immediate_redundant_share=har_immediate.redundant_site_share(),
        alexa_redundant_share=alexa.redundant_site_share(),
        alexa_endless_redundant_share=alexa_endless.redundant_site_share(),
        har_share_two_or_more=_share_at_least(har_endless.redundant_per_site, 2),
        alexa_share_six_or_more=_share_at_least(alexa.redundant_per_site, 6),
        closed_connection_share=(len(closed) / total_h2) if total_h2 else 0.0,
        median_closed_lifetime_s=median(closed) if closed else None,
        cred_connections_with_fetch=alexa.by_cause[Cause.CRED].connections,
        cred_connections_without_fetch=nofetch.by_cause[Cause.CRED].connections,
        redundant_reduction_share=reduction,
    )
