"""Mitigation ablations.

The paper's conclusion names three mitigation levers; each maps to one
switch in the reproduction, so their effect can be measured directly:

* **Fetch Standard adaptation** — browsers drop the credentials
  partition (``ignore_privacy_mode``); removes CRED entirely (§5.3.3).
* **Coordinated DNS / Anycast** — services point coalescable domains at
  the same answers (``coalesce_friendly_dns``); collapses the IP cause
  for the parties that adopt it (§5.3.1).
* **Certificate merging** — sharding operators consolidate per-shard
  certificates (``merged_certificates``); removes the CERT cause.
* **ORIGIN frames (RFC 8336)** — servers advertise reusable origins and
  the browser honours them (``advertise_origin_frames`` +
  ``honor_origin_frame``); lets reuse succeed without an IP match.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.report import CorpusReport
from repro.core.session import LifetimeModel
from repro.crawl.alexa import AlexaCrawler
from repro.web.ecosystem import Ecosystem, EcosystemConfig

__all__ = ["MitigationOutcome", "MitigationComparison", "compare_mitigations"]


@dataclass(frozen=True)
class MitigationOutcome:
    """Aggregate effect of one mitigation."""

    name: str
    report: CorpusReport

    @property
    def redundant_connections(self) -> int:
        return self.report.redundant_connections

    @property
    def redundant_share(self) -> float:
        if self.report.h2_connections == 0:
            return 0.0
        return self.report.redundant_connections / self.report.h2_connections


@dataclass
class MitigationComparison:
    """Baseline vs. every mitigation, measured on the same site list."""

    baseline: MitigationOutcome
    outcomes: dict[str, MitigationOutcome] = field(default_factory=dict)

    def reduction(self, name: str) -> float:
        """Redundant-connection reduction of ``name`` vs. the baseline."""
        if self.baseline.redundant_connections == 0:
            return 0.0
        return 1.0 - (
            self.outcomes[name].redundant_connections
            / self.baseline.redundant_connections
        )

    def render(self) -> str:
        lines = [
            "Mitigation ablations (redundant connections vs. baseline)",
            f"  baseline: {self.baseline.redundant_connections} redundant "
            f"({self.baseline.redundant_share:.0%} of connections)",
        ]
        for name, outcome in self.outcomes.items():
            lines.append(
                f"  {name:<22} {outcome.redundant_connections:>6} redundant "
                f"(-{self.reduction(name):.0%})"
            )
        return "\n".join(lines)


def _measure(
    ecosystem: Ecosystem,
    *,
    name: str,
    seed: int,
    top: int,
    ignore_privacy_mode: bool = False,
    honor_origin_frame: bool = False,
) -> MitigationOutcome:
    crawler = AlexaCrawler(ecosystem=ecosystem, seed=seed)
    domains = ecosystem.alexa_list(top)
    run = crawler.run(
        domains,
        run_name=f"mitigation-{name}",
        ignore_privacy_mode=ignore_privacy_mode,
        honor_origin_frame=honor_origin_frame,
    )
    dataset = run.classify(model=LifetimeModel.ACTUAL, name=name)
    return MitigationOutcome(name=name, report=dataset.report)


def compare_mitigations(
    *, seed: int = 7, n_sites: int = 300, top: int | None = None
) -> MitigationComparison:
    """Measure the baseline and all four mitigations on fresh worlds.

    Every variant reuses the same seed, so the site population and
    embeds are identical up to the mitigated infrastructure itself.
    """
    top = top or n_sites
    base_config = EcosystemConfig(seed=seed, n_sites=n_sites)
    baseline = _measure(
        Ecosystem.generate(base_config), name="baseline", seed=seed + 900, top=top
    )
    comparison = MitigationComparison(baseline=baseline)

    comparison.outcomes["no-fetch-credentials"] = _measure(
        Ecosystem.generate(base_config),
        name="no-fetch-credentials",
        seed=seed + 900,
        top=top,
        ignore_privacy_mode=True,
    )
    comparison.outcomes["coordinated-dns"] = _measure(
        Ecosystem.generate(
            EcosystemConfig(seed=seed, n_sites=n_sites, coalesce_friendly_dns=True)
        ),
        name="coordinated-dns",
        seed=seed + 900,
        top=top,
    )
    comparison.outcomes["merged-certificates"] = _measure(
        Ecosystem.generate(
            EcosystemConfig(seed=seed, n_sites=n_sites, merged_certificates=True)
        ),
        name="merged-certificates",
        seed=seed + 900,
        top=top,
    )
    comparison.outcomes["origin-frames"] = _measure(
        Ecosystem.generate(
            EcosystemConfig(seed=seed, n_sites=n_sites, advertise_origin_frames=True)
        ),
        name="origin-frames",
        seed=seed + 900,
        top=top,
        honor_origin_frame=True,
    )
    return comparison
