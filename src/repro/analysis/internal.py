"""Landing vs. internal pages (extension beyond the paper).

The paper notes as a limitation: "we only review landing pages, which
can show different behavior than internal pages [1]" (§4.3, citing
Aqeel et al., IMC '20).  The synthetic sites carry internal pages that
retain only part of the landing page's third parties, so this module
can quantify how much the landing-page-only methodology over- or
under-states redundancy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.browser.browser import BrowserConfig, ChromiumBrowser
from repro.core.report import CorpusReport
from repro.core.classifier import classify_site
from repro.core.session import LifetimeModel, records_from_visit
from repro.util.clock import SimClock
from repro.util.rng import RngFactory
from repro.web.ecosystem import Ecosystem

__all__ = ["InternalPagesComparison", "compare_landing_vs_internal"]


@dataclass
class InternalPagesComparison:
    """Redundancy on landing pages vs. internal pages, same sites."""

    landing: CorpusReport
    internal: CorpusReport

    def landing_bias(self) -> float:
        """Landing-page redundant-site share minus internal-page share.

        Positive = the paper's landing-page methodology *over*states
        redundancy relative to internal pages.
        """
        return (
            self.landing.redundant_site_share()
            - self.internal.redundant_site_share()
        )

    def render(self) -> str:
        def conns_per_site(report: CorpusReport) -> float:
            if report.h2_sites == 0:
                return 0.0
            return report.h2_connections / report.h2_sites

        lines = [
            "Landing vs internal pages (extension; paper §4.3 limitation)",
            f"  {'':<12}{'red. sites':>12}{'red. conns':>12}{'conns/site':>12}",
            f"  {'landing':<12}"
            f"{self.landing.redundant_site_share():>11.0%} "
            f"{self.landing.redundant_connections:>11} "
            f"{conns_per_site(self.landing):>11.1f}",
            f"  {'internal':<12}"
            f"{self.internal.redundant_site_share():>11.0%} "
            f"{self.internal.redundant_connections:>11} "
            f"{conns_per_site(self.internal):>11.1f}",
            f"  landing-page bias: {self.landing_bias():+.0%} "
            "redundant-site share",
        ]
        return "\n".join(lines)


def compare_landing_vs_internal(
    ecosystem: Ecosystem,
    *,
    top: int = 100,
    seed: int = 5,
) -> InternalPagesComparison:
    """Visit each site's landing page and one internal page; classify both."""
    rng = RngFactory(seed)
    clock = SimClock()
    browser = ChromiumBrowser(
        ecosystem=ecosystem,
        resolver=ecosystem.make_resolver("internal-pages"),
        clock=clock,
        rng=rng.stream("browser"),
        config=BrowserConfig(),
    )
    landing_report = CorpusReport(name="landing")
    internal_report = CorpusReport(name="internal")
    for domain in ecosystem.alexa_list(top):
        site = ecosystem.website(domain)
        if site is None or not site.internal_paths:
            continue
        landing_visit = browser.visit(domain)
        if landing_visit.unreachable:
            continue
        landing_report.add_site(
            classify_site(domain, records_from_visit(landing_visit),
                          model=LifetimeModel.ACTUAL)
        )
        pick = random.Random(rng.stream("pick").random())
        internal_path = pick.choice(site.internal_paths)
        internal_visit = browser.visit(f"{domain}{internal_path}")
        if internal_visit.unreachable:
            continue
        internal_report.add_site(
            classify_site(domain, records_from_visit(internal_visit),
                          model=LifetimeModel.ACTUAL)
        )
    return InternalPagesComparison(landing=landing_report,
                                   internal=internal_report)
