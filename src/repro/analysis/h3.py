"""HTTP/3 coalescing analysis: an h3-rollout study vs. its h2 baseline.

The paper measures an h2-only web; :mod:`repro.h3` models the alt-svc
rollout that has happened since.  This report quantifies what that
rollout does to the paper's observables by diffing two studies of the
*same* configuration — one under ``h3_profile="none"``, one under a
named adoption profile — along three axes:

* **protocol split** — per dataset: how many connections negotiated h2
  vs. upgraded to h3 under the rollout (the clean run is h2-only by
  construction);
* **reuse impact** — per dataset: redundant connections and redundant
  shares, baseline vs. h3, with the percentage-point delta, plus the
  per-protocol CERT / IP / CRED attribution split (an h3 session can
  only ride an h3 witness, so the causes are counted per protocol);
* **coalescing potential** — the :mod:`repro.perf.whatif`
  counterfactual over the Alexa common sites: connections, setup time
  and total time a perfectly coalescing client would still save under
  each run — the "what if every advertised endpoint coalesced?"
  estimate the paper leaves to future work.

Both studies must share seed and scale; the report refuses apples-to-
oranges inputs instead of rendering misleading deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.study import Study
from repro.core.causes import Cause
from repro.perf.whatif import WhatIfResult, whatif_site
from repro.util.formatting import align_table

__all__ = ["H3Result", "h3_report"]


def _pp(delta: float) -> str:
    """A signed percentage-point delta cell (never renders "-0.0")."""
    value = round(delta * 100, 1) + 0.0
    return f"{value:+.1f} pp"


@dataclass(frozen=True)
class H3Result:
    """The rendered-ready diff of one h3-rollout study against baseline."""

    baseline: Study
    h3: Study

    @property
    def profile_name(self) -> str:
        return self.h3.config.h3_profile

    # ------------------------------------------------------------------
    def shared_datasets(self) -> list[str]:
        """Dataset keys present in both studies, baseline order."""
        return [
            name for name in self.baseline.datasets
            if name in self.h3.datasets
        ]

    def protocol_rows(self) -> list[list[str]]:
        rows = []
        for name in self.shared_datasets():
            base = self.baseline.datasets[name].report
            h3 = self.h3.datasets[name].report
            total = h3.h2_connections + h3.h3_connections
            share = h3.h3_connections / total if total else 0.0
            rows.append([
                name,
                str(base.h2_connections),
                str(h3.h2_connections),
                str(h3.h3_connections),
                f"{share:.1%}",
            ])
        return rows

    def reuse_rows(self) -> list[list[str]]:
        rows = []
        for name in self.shared_datasets():
            base = self.baseline.datasets[name].report
            h3 = self.h3.datasets[name].report
            base_total = base.h2_connections + base.h3_connections
            h3_total = h3.h2_connections + h3.h3_connections
            base_share = (
                base.redundant_connections / base_total if base_total else 0.0
            )
            h3_share = (
                h3.redundant_connections / h3_total if h3_total else 0.0
            )
            rows.append([
                name,
                str(base.redundant_connections),
                str(h3.redundant_connections),
                f"{base_share:.1%}",
                f"{h3_share:.1%}",
                _pp(h3_share - base_share),
            ])
        return rows

    def cause_rows(self) -> list[list[str]]:
        """The CERT / IP / CRED split of the h3 run, per protocol."""
        rows = []
        for name in self.shared_datasets():
            attribution = self.h3.datasets[name].attribution
            for protocol in sorted(attribution.protocol_causes):
                counter = attribution.protocol_causes[protocol]
                for cause in (Cause.CERT, Cause.IP, Cause.CRED):
                    count = counter.get(cause.value, 0)
                    if count == 0:
                        continue
                    rows.append([name, protocol, cause.value, str(count)])
        return rows

    # ------------------------------------------------------------------
    def _whatif(self, study: Study) -> list[WhatIfResult]:
        """Coalesced-counterfactual estimates over the Alexa common sites."""
        dataset = study.datasets.get("alexa")
        if dataset is None:
            return []
        results = []
        for site in study.alexa_common_sites:
            classification = dataset.classifications.get(site)
            if classification is None:
                continue
            results.append(whatif_site(
                site, list(classification.records), classification
            ))
        return results

    def whatif_rows(self) -> list[list[str]]:
        rows = []
        for label, study in (
            ("baseline", self.baseline),
            (f"h3 ({self.profile_name})", self.h3),
        ):
            estimates = self._whatif(study)
            sites = len(estimates)
            saved = sum(e.connections_saved for e in estimates)
            setup = sum(e.setup_time_saved_s for e in estimates)
            total = sum(e.total_time_saved_s for e in estimates)
            relative = (
                sum(e.relative_saving for e in estimates) / sites
                if sites else 0.0
            )
            rows.append([
                label, str(sites), str(saved),
                f"{setup:.2f} s", f"{total:.2f} s", f"{relative:.1%}",
            ])
        return rows

    # ------------------------------------------------------------------
    def render(self) -> str:
        config = self.h3.config
        parts = [
            f"HTTP/3 rollout report — h3 profile '{self.profile_name}' vs. "
            f"h2 baseline (seed={config.seed}, n_sites={config.n_sites})",
            "",
            "Protocol split per dataset (connection counts)",
            align_table(
                self.protocol_rows(),
                header=["Dataset", "h2 base", "h2 h3run", "h3 h3run",
                        "h3 share"],
            ),
            "",
            "Reuse impact per dataset (redundant connections)",
            align_table(
                self.reuse_rows(),
                header=["Dataset", "red base", "red h3", "share base",
                        "share h3", "delta"],
            ),
            "",
            "Attribution by protocol (h3 run, redundant connections by cause)",
        ]
        causes = self.cause_rows()
        if causes:
            parts.append(align_table(
                causes, header=["Dataset", "Protocol", "Cause", "Count"]
            ))
        else:
            parts.append("  (no redundant connections attributed)")
        parts += [
            "",
            "Coalescing potential (what-if: perfect coalescing, Alexa "
            "common sites)",
            align_table(
                self.whatif_rows(),
                header=["Run", "Sites", "Conns saved", "Setup saved",
                        "Total saved", "Rel. saving"],
            ),
        ]
        # Degraded coverage (quarantined shards) would silently bias
        # every delta above, so a partial run is called out explicitly.
        for label, study in (
            ("baseline", self.baseline), ("h3", self.h3)
        ):
            coverage = study.coverage
            if coverage is not None and not coverage.complete:
                parts += [
                    "",
                    f"Coverage caveat: {label} run is "
                    f"{coverage.describe()}",
                ]
        return "\n".join(parts)


def h3_report(baseline: Study, h3: Study) -> H3Result:
    """Diff the ``h3`` study against its h2-only ``baseline``.

    ``baseline`` must be the same configuration with
    ``h3_profile="none"``; anything else would attribute ordinary
    configuration drift to the rollout.
    """
    if baseline.config.h3_profile != "none":
        raise ValueError(
            f"baseline study runs h3 profile "
            f"{baseline.config.h3_profile!r}, expected 'none'"
        )
    if replace(baseline.config, h3_profile="none") != replace(
        h3.config, h3_profile="none"
    ):
        raise ValueError(
            "baseline and h3 studies differ beyond h3_profile; "
            "their deltas would not be attributable to the rollout"
        )
    return H3Result(baseline=baseline, h3=h3)
