"""The full-study driver.

One :class:`Study` object runs everything the paper's evaluation needs,
in the paper's order:

1. generate the synthetic web (one seed → one world);
2. the HTTP Archive crawl (3 loads/site, median HAR, §4.3 noise) from
   the US vantage point, classified under the endless and immediate
   lifetime models;
3. two Alexa crawls from the German vantage point — Fetch-compliant and
   privacy-mode-patched — restricted to the runs' common reachable
   sites, classified with actual NetLog lifetimes (plus the endless
   variant);
4. the corpora overlap (Appendix A.3);
5. the DNS load-balancing study (Appendix A.4).

Every table and figure renderer consumes a Study; benches construct one
small Study per session and reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property

from repro.crawl.alexa import AlexaCrawler, AlexaRun
from repro.crawl.classify import ClassifiedDataset
from repro.crawl.httparchive import HarCorpus, HttpArchiveCrawler
from repro.crawl.overlap import overlap_datasets
from repro.core.session import LifetimeModel
from repro.evolve.policy import evolution_policy
from repro.faults.plan import fault_profile, merge_counts
from repro.dnsstudy.study import DnsLoadBalancingStudy, DnsStudyResult
from repro.runtime import (
    Executor,
    StageTimings,
    ecosystem_for,
    ecosystem_is_cached,
    make_executor,
    null_timings,
)
from repro.store import StudyCache
from repro.web.ecosystem import Ecosystem, EcosystemConfig

__all__ = ["StudyConfig", "Study", "DATASET_LABELS"]

#: Paper-facing names of the Table 1 dataset columns.
DATASET_LABELS: dict[str, str] = {
    "har-endless": "HAR Endless",
    "har-immediate": "HAR Immediate",
    "alexa-endless": "Alexa Endless",
    "alexa": "Alexa",
    "alexa-nofetch": "Alexa w/o Fetch",
    "har-overlap": "HAR Overlap Endless",
    "alexa-overlap": "Alexa Overlap Endless",
}

#: Alexa browser variants a study may crawl.
_ALEXA_VARIANTS = ("fetch", "nofetch")


@dataclass(frozen=True)
class StudyConfig:
    """Scale and seed of one full reproduction run."""

    seed: int = 7
    n_sites: int = 1200
    #: Share of the universe whose top ranks form the Alexa list.
    alexa_share: float = 0.30
    #: Sampling share of the universe the HTTP Archive crawls.
    ha_sample_share: float = 0.85
    #: Simulated duration of the DNS study.
    dns_study_days: float = 2.0
    ecosystem_overrides: dict = field(default_factory=dict)
    #: Execution substrate for the per-site pipeline stages: "serial",
    #: "thread" or "process", optionally with a worker count
    #: ("process:8").  Results are executor-independent by construction;
    #: only wall-clock time changes.
    executor: str = "serial"
    #: Worker count for pool executors (None: picked per machine).
    parallelism: int | None = None
    #: Lifetime models the HAR corpus is classified under (dataset
    #: ``har-<model>`` each); a sweep axis for the §4.1 model ablation.
    har_models: tuple[str, ...] = ("endless", "immediate")
    #: Which Alexa browser variants are crawled: "fetch" (the
    #: Fetch-compliant run) and/or "nofetch" (privacy-mode patched,
    #: §5.3.3); a sweep axis for the Fetch toggle.
    alexa_variants: tuple[str, ...] = ("fetch", "nofetch")
    #: Named fault profile injected into every crawl visit (see
    #: :mod:`repro.faults`); a first-class sweep/cache axis.  The
    #: default ``"none"`` compiles to no plan at all, leaving every
    #: layer on its pre-fault code path (the golden digest pins this).
    fault_profile: str = "none"
    #: How many churn epochs of ``evolution_policy`` the world is
    #: advanced through before measuring (see :mod:`repro.evolve`); a
    #: first-class study/sweep/cache axis.  0 measures the pristine
    #: world every pre-evolution study saw (the golden digest pins it).
    epochs: int = 0
    #: Named ecosystem-churn policy for the evolution epochs; the
    #: default ``"none"`` never enters the evolution engine at all.
    evolution_policy: str = "none"

    def make_executor(self) -> "Executor":
        return make_executor(self.executor, self.parallelism)

    def ecosystem_config(self) -> EcosystemConfig:
        return EcosystemConfig(
            seed=self.seed,
            n_sites=self.n_sites,
            evolution_policy=self.evolution_policy,
            epoch=self.epochs,
            **self.ecosystem_overrides,
        )

    def validate(self) -> None:
        """Reject bad executor specs, lifetime models and Alexa variants.

        Everything a sweep axis can set is checked here, so grid cells
        fail fast (and CLI-cleanly) before any study work starts.
        """
        make_executor(self.executor, self.parallelism)  # raises on bad specs
        for model in self.har_models:
            LifetimeModel(model)  # raises ValueError on unknown names
        if not self.har_models:
            raise ValueError("har_models must name at least one model")
        if len(set(self.har_models)) != len(self.har_models):
            raise ValueError(f"duplicate har_models in {self.har_models!r}")
        unknown = set(self.alexa_variants) - set(_ALEXA_VARIANTS)
        if unknown or not self.alexa_variants:
            raise ValueError(
                f"alexa_variants must be a non-empty subset of "
                f"{_ALEXA_VARIANTS}, got {self.alexa_variants!r}"
            )
        if len(set(self.alexa_variants)) != len(self.alexa_variants):
            raise ValueError(
                f"duplicate alexa_variants in {self.alexa_variants!r}"
            )
        fault_profile(self.fault_profile)  # raises ValueError on unknowns
        evolution_policy(self.evolution_policy)  # raises on unknowns
        if self.epochs < 0:
            raise ValueError(f"epochs must be >= 0, got {self.epochs}")
        overlap = {"evolution_policy", "epoch"} & set(self.ecosystem_overrides)
        if overlap:
            raise ValueError(
                f"set evolution via StudyConfig.epochs/evolution_policy, "
                f"not ecosystem_overrides ({sorted(overlap)})"
            )

    def small(self) -> "StudyConfig":
        """A scaled-down copy for quick tests.

        Built with :func:`dataclasses.replace`, so new config fields
        carry over automatically instead of being silently dropped.
        """
        return replace(
            self,
            n_sites=min(self.n_sites, 200),
            dns_study_days=0.25,
            ecosystem_overrides=dict(self.ecosystem_overrides),
        )


@dataclass
class Study:
    """All measurement artefacts of one reproduction run.

    The two Alexa runs are ``None`` when the config's
    ``alexa_variants`` excludes them (sweep ablations); the default
    config always produces both.
    """

    config: StudyConfig
    ecosystem: Ecosystem
    har_corpus: HarCorpus
    alexa_run: AlexaRun | None
    alexa_nofetch_run: AlexaRun | None
    alexa_common_sites: list[str]
    datasets: dict[str, ClassifiedDataset]
    timings: StageTimings = field(default_factory=null_timings)

    @classmethod
    def run(
        cls,
        config: StudyConfig | None = None,
        *,
        executor: Executor | None = None,
        timings: StageTimings | None = None,
        cache: StudyCache | None = None,
    ) -> "Study":
        """Execute the full pipeline for ``config``.

        ``executor`` overrides the config's executor spec; ``timings``
        (see :mod:`repro.runtime.profile`) records per-stage wall time;
        ``cache`` (see :mod:`repro.store`) loads crawl and
        classification artefacts produced by earlier identical runs
        instead of recomputing them — cached stages record zero items.
        """
        config = config or StudyConfig()
        config.validate()
        owns_executor = executor is None
        executor = executor if executor is not None else config.make_executor()
        timings = timings if timings is not None else null_timings()
        try:
            return cls._run(config, executor, timings, cache)
        finally:
            if owns_executor:
                executor.close()

    @classmethod
    def _run(
        cls,
        config: StudyConfig,
        executor: Executor,
        timings: StageTimings,
        cache: StudyCache | None = None,
    ) -> "Study":
        eco_config = config.ecosystem_config()
        world_cached = ecosystem_is_cached(eco_config)
        with timings.stage(
            "generate-ecosystem", items=0 if world_cached else config.n_sites
        ):
            ecosystem = ecosystem_for(eco_config)
        asdb = ecosystem.asdb

        def crawl_plan(kind, make_key, n_items: int) -> tuple[str | None, int]:
            """The (precomputed key, timed item count) of a crawl stage.

            ``make_key`` is a thunk so uncached runs never hash the
            stage configuration at all; cached runs hash it exactly
            once and pass the key down into the stage entry point.
            Cached stages record zero items.
            """
            if cache is None:
                return None, n_items
            key = make_key()
            return key, 0 if cache.contains(kind, key) else n_items

        ha_crawler = HttpArchiveCrawler(
            ecosystem=ecosystem, seed=config.seed + 100,
            fault_profile=config.fault_profile,
        )
        ha_domains = ecosystem.httparchive_sample(
            config.ha_sample_share, seed=config.seed + 1
        )
        ha_key, ha_items = crawl_plan(
            "har-crawl", lambda: ha_crawler.stage_key(ha_domains),
            len(ha_domains),
        )
        with timings.stage("crawl-httparchive", items=ha_items):
            har_corpus = ha_crawler.crawl(
                ha_domains, executor=executor, cache=cache, cache_key=ha_key
            )

        alexa_count = max(1, int(config.n_sites * config.alexa_share))
        alexa_domains = ecosystem.alexa_list(alexa_count)
        alexa_crawler = AlexaCrawler(
            ecosystem=ecosystem, seed=config.seed + 200,
            fault_profile=config.fault_profile,
        )
        alexa_run: AlexaRun | None = None
        alexa_nofetch: AlexaRun | None = None
        if "fetch" in config.alexa_variants:
            fetch_key, fetch_items = crawl_plan(
                "alexa-crawl",
                lambda: alexa_crawler.stage_key(
                    alexa_domains, run_name="alexa-fetch"
                ),
                len(alexa_domains),
            )
            with timings.stage("crawl-alexa-fetch", items=fetch_items):
                alexa_run = alexa_crawler.run(
                    alexa_domains, run_name="alexa-fetch", executor=executor,
                    cache=cache, cache_key=fetch_key,
                )
        if "nofetch" in config.alexa_variants:
            nofetch_key, nofetch_items = crawl_plan(
                "alexa-crawl",
                lambda: alexa_crawler.stage_key(
                    alexa_domains, run_name="alexa-nofetch",
                    ignore_privacy_mode=True, run_offset=500_000.0,
                ),
                len(alexa_domains),
            )
            with timings.stage("crawl-alexa-nofetch", items=nofetch_items):
                alexa_nofetch = alexa_crawler.run(
                    alexa_domains,
                    run_name="alexa-nofetch",
                    ignore_privacy_mode=True,
                    run_offset=500_000.0,
                    executor=executor,
                    cache=cache,
                    cache_key=nofetch_key,
                )
        # "We review the intersection of websites for comparability."
        reachable_sets = [
            set(run.reachable_sites)
            for run in (alexa_run, alexa_nofetch)
            if run is not None
        ]
        common = sorted(set.intersection(*reachable_sets))

        # One classification plan entry per dataset — the single source
        # of truth for the stage's item accounting AND the classify
        # calls, so the two cannot drift.  Each entry carries the key
        # (computed at most once, only when a cache is in play), the
        # item count, and the classify thunk the key is passed into.
        plan: list[tuple[str, int, str | None, object]] = []
        for model_value in config.har_models:
            model = LifetimeModel(model_value)
            name = f"har-{model_value}"
            key = (
                har_corpus.classify_cache_key(model, name)
                if cache is not None else None
            )
            plan.append((
                name, len(har_corpus.hars), key,
                lambda model=model, name=name, key=key: har_corpus.classify(
                    model=model, asdb=asdb, name=name, executor=executor,
                    cache=cache, cache_key=key,
                ),
            ))
        alexa_datasets: list[tuple[AlexaRun, str, LifetimeModel]] = []
        if alexa_run is not None:
            alexa_datasets += [
                (alexa_run, "alexa-endless", LifetimeModel.ENDLESS),
                (alexa_run, "alexa", LifetimeModel.ACTUAL),
            ]
        if alexa_nofetch is not None:
            alexa_datasets.append(
                (alexa_nofetch, "alexa-nofetch", LifetimeModel.ACTUAL)
            )
        for run, name, model in alexa_datasets:
            key = (
                run.classify_cache_key(model, name, common)
                if cache is not None else None
            )
            plan.append((
                name, len(common), key,
                lambda run=run, model=model, name=name, key=key: run.classify(
                    model=model, asdb=asdb, name=name, sites=common,
                    executor=executor, cache=cache, cache_key=key,
                ),
            ))
        n_classified = sum(
            items for _, items, key, _ in plan
            if key is None or not cache.contains("classify", key)
        )
        with timings.stage("classify-datasets", items=n_classified):
            datasets = {name: classify() for name, _, _, classify in plan}
        if "har-endless" in datasets and "alexa-endless" in datasets:
            with timings.stage("overlap"):
                har_overlap, alexa_overlap = overlap_datasets(
                    datasets["har-endless"], datasets["alexa-endless"]
                )
                datasets["har-overlap"] = har_overlap
                datasets["alexa-overlap"] = alexa_overlap

        return cls(
            config=config,
            ecosystem=ecosystem,
            har_corpus=har_corpus,
            alexa_run=alexa_run,
            alexa_nofetch_run=alexa_nofetch,
            alexa_common_sites=common,
            datasets=datasets,
            timings=timings,
        )

    # ------------------------------------------------------------------
    def dataset(self, key: str) -> ClassifiedDataset:
        return self.datasets[key]

    def fault_counts(self) -> dict[str, int]:
        """Injected-fault strikes across every crawl, by fault kind.

        Empty for the default ``fault_profile="none"``; the resilience
        report renders this as its failure-taxonomy table.
        """
        totals: dict[str, int] = dict(self.har_corpus.fault_counts)
        for run in (self.alexa_run, self.alexa_nofetch_run):
            if run is not None:
                merge_counts(totals, tuple(run.fault_counts.items()))
        return totals

    @cached_property
    def dns_study(self) -> DnsStudyResult:
        """The Appendix A.4 resolver study (computed on first use)."""
        study = DnsLoadBalancingStudy(
            ecosystem=self.ecosystem,
            duration_s=self.config.dns_study_days * 24 * 3600.0,
        )
        return study.run()

    def connection_lifetimes(self) -> list[float]:
        """Lifetimes of Alexa connections that closed before test end."""
        lifetimes = []
        if self.alexa_run is None:
            return lifetimes
        for domain in self.alexa_common_sites:
            measurement = self.alexa_run.measurements[domain]
            for record in measurement.records:
                if record.protocol != "h2":
                    continue
                lifetime = record.lifetime()
                if lifetime is not None:
                    lifetimes.append(lifetime)
        return lifetimes

    def early_closed_lifetimes(self) -> list[float]:
        """Lifetimes of sessions closed by the server (GOAWAY) only."""
        lifetimes = []
        if self.alexa_run is None:
            return lifetimes
        for domain in self.alexa_common_sites:
            measurement = self.alexa_run.measurements[domain]
            goaway_ids = set(measurement.goaway_connection_ids)
            if not goaway_ids:
                continue
            for record in measurement.records:
                if record.connection_id in goaway_ids:
                    lifetime = record.lifetime()
                    if lifetime is not None:
                        lifetimes.append(lifetime)
        return lifetimes
