"""The full-study driver.

One :class:`Study` object runs everything the paper's evaluation needs,
in the paper's order:

1. generate the synthetic web (one seed → one world);
2. the HTTP Archive crawl (3 loads/site, median HAR, §4.3 noise) from
   the US vantage point, classified under the endless and immediate
   lifetime models;
3. two Alexa crawls from the German vantage point — Fetch-compliant and
   privacy-mode-patched — restricted to the runs' common reachable
   sites, classified with actual NetLog lifetimes (plus the endless
   variant);
4. the corpora overlap (Appendix A.3);
5. the DNS load-balancing study (Appendix A.4).

Every table and figure renderer consumes a Study; benches construct one
small Study per session and reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property

from repro.crawl.alexa import AlexaCrawler, AlexaRun
from repro.crawl.classify import ClassifiedDataset, merge_classified_datasets
from repro.crawl.httparchive import HarCorpus, HttpArchiveCrawler
from repro.crawl.overlap import overlap_datasets
from repro.crawl.shards import pending_items
from repro.core.session import LifetimeModel
from repro.evolve.policy import evolution_policy
from repro.faults.plan import fault_profile, merge_counts
from repro.h3.plan import h3_profile
from repro.dnsstudy.study import DnsLoadBalancingStudy, DnsStudyResult
from repro.runlog import RunContext, RunCoverage
from repro.runtime import (
    Executor,
    StageTimings,
    ecosystem_for,
    ecosystem_is_cached,
    make_executor,
    null_timings,
)
from repro.store import StudyCache
from repro.web.ecosystem import Ecosystem, EcosystemConfig

__all__ = ["StudyConfig", "Study", "DATASET_LABELS"]

#: Paper-facing names of the Table 1 dataset columns.
DATASET_LABELS: dict[str, str] = {
    "har-endless": "HAR Endless",
    "har-immediate": "HAR Immediate",
    "alexa-endless": "Alexa Endless",
    "alexa": "Alexa",
    "alexa-nofetch": "Alexa w/o Fetch",
    "har-overlap": "HAR Overlap Endless",
    "alexa-overlap": "Alexa Overlap Endless",
}

#: Alexa browser variants a study may crawl.
_ALEXA_VARIANTS = ("fetch", "nofetch")


@dataclass(frozen=True)
class StudyConfig:
    """Scale and seed of one full reproduction run."""

    seed: int = 7
    n_sites: int = 1200
    #: Share of the universe whose top ranks form the Alexa list.
    alexa_share: float = 0.30
    #: Sampling share of the universe the HTTP Archive crawls.
    ha_sample_share: float = 0.85
    #: Simulated duration of the DNS study.
    dns_study_days: float = 2.0
    ecosystem_overrides: dict = field(default_factory=dict)
    #: Execution substrate for the per-site pipeline stages: "serial",
    #: "thread" or "process", optionally with a worker count
    #: ("process:8").  Results are executor-independent by construction;
    #: only wall-clock time changes.
    executor: str = "serial"
    #: Worker count for pool executors (None: picked per machine).
    parallelism: int | None = None
    #: Lifetime models the HAR corpus is classified under (dataset
    #: ``har-<model>`` each); a sweep axis for the §4.1 model ablation.
    har_models: tuple[str, ...] = ("endless", "immediate")
    #: Which Alexa browser variants are crawled: "fetch" (the
    #: Fetch-compliant run) and/or "nofetch" (privacy-mode patched,
    #: §5.3.3); a sweep axis for the Fetch toggle.
    alexa_variants: tuple[str, ...] = ("fetch", "nofetch")
    #: Named fault profile injected into every crawl visit (see
    #: :mod:`repro.faults`); a first-class sweep/cache axis.  The
    #: default ``"none"`` compiles to no plan at all, leaving every
    #: layer on its pre-fault code path (the golden digest pins this).
    fault_profile: str = "none"
    #: How many churn epochs of ``evolution_policy`` the world is
    #: advanced through before measuring (see :mod:`repro.evolve`); a
    #: first-class study/sweep/cache axis.  0 measures the pristine
    #: world every pre-evolution study saw (the golden digest pins it).
    epochs: int = 0
    #: Named ecosystem-churn policy for the evolution epochs; the
    #: default ``"none"`` never enters the evolution engine at all.
    evolution_policy: str = "none"
    #: Named alt-svc/HTTP-3 adoption profile for the generated world
    #: (see :mod:`repro.h3`); a first-class study/sweep/cache axis.
    #: The default ``"none"`` compiles to no plan at all, leaving the
    #: world and every browser on their pre-h3 code paths (the clean
    #: golden digest pins this).
    h3_profile: str = "none"
    #: How many deterministic site shards each crawl/classification
    #: stage is partitioned into (see :mod:`repro.crawl.shards`).  A
    #: site's shard is a hash of the domain alone, and per-shard
    #: artefacts cache under per-site-set keys, so sharded studies
    #: recompute incrementally — including across evolution epochs,
    #: where only ledger-touched shards recrawl.  Output is
    #: shard-count-invariant: the N-shard fold digests byte-identical
    #: to the 1-shard (monolithic) study.
    shards: int = 1

    def make_executor(self) -> "Executor":
        return make_executor(self.executor, self.parallelism)

    def ecosystem_config(self) -> EcosystemConfig:
        return EcosystemConfig(
            seed=self.seed,
            n_sites=self.n_sites,
            evolution_policy=self.evolution_policy,
            epoch=self.epochs,
            h3_profile=self.h3_profile,
            **self.ecosystem_overrides,
        )

    def validate(self) -> None:
        """Reject bad executor specs, lifetime models and Alexa variants.

        Everything a sweep axis can set is checked here, so grid cells
        fail fast (and CLI-cleanly) before any study work starts.
        """
        make_executor(self.executor, self.parallelism)  # raises on bad specs
        for model in self.har_models:
            LifetimeModel(model)  # raises ValueError on unknown names
        if not self.har_models:
            raise ValueError("har_models must name at least one model")
        if len(set(self.har_models)) != len(self.har_models):
            raise ValueError(f"duplicate har_models in {self.har_models!r}")
        unknown = set(self.alexa_variants) - set(_ALEXA_VARIANTS)
        if unknown or not self.alexa_variants:
            raise ValueError(
                f"alexa_variants must be a non-empty subset of "
                f"{_ALEXA_VARIANTS}, got {self.alexa_variants!r}"
            )
        if len(set(self.alexa_variants)) != len(self.alexa_variants):
            raise ValueError(
                f"duplicate alexa_variants in {self.alexa_variants!r}"
            )
        fault_profile(self.fault_profile)  # raises ValueError on unknowns
        evolution_policy(self.evolution_policy)  # raises on unknowns
        h3_profile(self.h3_profile)  # raises ValueError on unknowns
        if self.epochs < 0:
            raise ValueError(f"epochs must be >= 0, got {self.epochs}")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        overlap = {
            "evolution_policy", "epoch", "h3_profile",
        } & set(self.ecosystem_overrides)
        if overlap:
            raise ValueError(
                f"set scenario axes via StudyConfig (epochs, "
                f"evolution_policy, h3_profile), not ecosystem_overrides "
                f"({sorted(overlap)})"
            )

    def small(self) -> "StudyConfig":
        """A scaled-down copy for quick tests.

        Built with :func:`dataclasses.replace`, so new config fields
        carry over automatically instead of being silently dropped.
        """
        return replace(
            self,
            n_sites=min(self.n_sites, 200),
            dns_study_days=0.25,
            ecosystem_overrides=dict(self.ecosystem_overrides),
        )


@dataclass
class Study:
    """All measurement artefacts of one reproduction run.

    The two Alexa runs are ``None`` when the config's
    ``alexa_variants`` excludes them (sweep ablations); the default
    config always produces both.
    """

    config: StudyConfig
    ecosystem: Ecosystem
    har_corpus: HarCorpus
    alexa_run: AlexaRun | None
    alexa_nofetch_run: AlexaRun | None
    alexa_common_sites: list[str]
    datasets: dict[str, ClassifiedDataset]
    timings: StageTimings = field(default_factory=null_timings)
    #: Shard coverage of the run (see :mod:`repro.runlog`): ``None``
    #: for cacheless runs, else complete-or-partial accounting that the
    #: digest and every report fold in when shards were quarantined.
    coverage: RunCoverage | None = None

    @classmethod
    def run(
        cls,
        config: StudyConfig | None = None,
        *,
        executor: Executor | None = None,
        timings: StageTimings | None = None,
        cache: StudyCache | None = None,
        runlog: RunContext | None = None,
        resume: bool = False,
        strict: bool = False,
    ) -> "Study":
        """Execute the full pipeline for ``config``.

        ``executor`` overrides the config's executor spec; ``timings``
        (see :mod:`repro.runtime.profile`) records per-stage wall time;
        ``cache`` (see :mod:`repro.store`) loads crawl and
        classification artefacts produced by earlier identical runs
        instead of recomputing them — cached stages record zero items.

        With a cache the run is journalled through a :class:`RunContext`
        (crash-safe, retrying, quarantining; see :mod:`repro.runlog`);
        ``resume`` replays a prior interrupted journal and skips its
        finished shards, ``strict`` restores fail-fast on the first
        shard failure.  Pass an explicit ``runlog`` to share one
        context; the caller then owns its ``finish()``/``close()``.
        """
        config = config or StudyConfig()
        config.validate()
        if resume and cache is None:
            raise ValueError("resume requires a cache to journal into")
        owns_executor = executor is None
        executor = executor if executor is not None else config.make_executor()
        timings = timings if timings is not None else null_timings()
        owns_runlog = runlog is None and cache is not None
        if owns_runlog:
            runlog = RunContext.for_study(
                config, cache, resume=resume, strict=strict
            )
        try:
            study = cls._run(config, executor, timings, cache, runlog)
            if runlog is not None:
                study.coverage = (
                    runlog.finish() if owns_runlog else runlog.coverage()
                )
            return study
        finally:
            if owns_runlog and runlog is not None:
                runlog.close()
            if owns_executor:
                executor.close()

    @classmethod
    def _run(
        cls,
        config: StudyConfig,
        executor: Executor,
        timings: StageTimings,
        cache: StudyCache | None = None,
        runlog: RunContext | None = None,
    ) -> "Study":
        eco_config = config.ecosystem_config()
        world_cached = ecosystem_is_cached(eco_config)
        with timings.stage(
            "generate-ecosystem", items=0 if world_cached else config.n_sites
        ):
            ecosystem = ecosystem_for(eco_config)
        asdb = ecosystem.asdb
        n_shards = config.shards

        ha_crawler = HttpArchiveCrawler(
            ecosystem=ecosystem, seed=config.seed + 100,
            fault_profile=config.fault_profile,
        )
        ha_domains = ecosystem.httparchive_sample(
            config.ha_sample_share, seed=config.seed + 1
        )
        # Each crawl plans its deterministic shard partition up front
        # (one shard on the default config): per-shard keys are hashed
        # at most once, cached shards record zero items, and the same
        # plan drives the crawl, the per-shard classifications and the
        # item accounting, so the three cannot drift.
        ha_plan = ha_crawler.plan_shards(
            ha_domains, shards=n_shards, cache=cache
        )
        with timings.stage("crawl-httparchive", items=pending_items(ha_plan)):
            har_corpus = ha_crawler.crawl(
                ha_domains, executor=executor, cache=cache, plan=ha_plan,
                runlog=runlog,
            )

        alexa_count = max(1, int(config.n_sites * config.alexa_share))
        alexa_domains = ecosystem.alexa_list(alexa_count)
        alexa_crawler = AlexaCrawler(
            ecosystem=ecosystem, seed=config.seed + 200,
            fault_profile=config.fault_profile,
        )
        alexa_run: AlexaRun | None = None
        alexa_nofetch: AlexaRun | None = None
        fetch_plan = nofetch_plan = None
        if "fetch" in config.alexa_variants:
            fetch_plan = alexa_crawler.plan_shards(
                alexa_domains, shards=n_shards, run_name="alexa-fetch",
                cache=cache,
            )
            with timings.stage(
                "crawl-alexa-fetch", items=pending_items(fetch_plan)
            ):
                alexa_run = alexa_crawler.run(
                    alexa_domains, run_name="alexa-fetch", executor=executor,
                    cache=cache, plan=fetch_plan, runlog=runlog,
                )
        if "nofetch" in config.alexa_variants:
            nofetch_plan = alexa_crawler.plan_shards(
                alexa_domains, shards=n_shards, run_name="alexa-nofetch",
                ignore_privacy_mode=True, run_offset=500_000.0, cache=cache,
            )
            with timings.stage(
                "crawl-alexa-nofetch", items=pending_items(nofetch_plan)
            ):
                alexa_nofetch = alexa_crawler.run(
                    alexa_domains,
                    run_name="alexa-nofetch",
                    ignore_privacy_mode=True,
                    run_offset=500_000.0,
                    executor=executor,
                    cache=cache,
                    plan=nofetch_plan,
                    runlog=runlog,
                )
        # "We review the intersection of websites for comparability."
        reachable_sets = [
            set(run.reachable_sites)
            for run in (alexa_run, alexa_nofetch)
            if run is not None
        ]
        common = sorted(set.intersection(*reachable_sets))

        # One classification job per (dataset, crawl shard): each job
        # classifies its shard's sub-corpus under the shard's own cache
        # key, and the per-dataset fold merges the partials.  With one
        # shard the single partial *is* the dataset — the monolithic
        # path, byte for byte.
        dataset_specs: list[tuple[str, LifetimeModel, list]] = []
        for model_value in config.har_models:
            model = LifetimeModel(model_value)
            name = f"har-{model_value}"
            shard_jobs = []
            for shard in ha_plan:
                # A quarantined crawl shard has no data in the corpus:
                # classifying its (empty) view would poison the cache
                # under the full shard's classify key, so the dataset
                # simply folds without it.
                if runlog is not None and runlog.is_quarantined(shard.key):
                    continue
                view = har_corpus.shard_view(shard)
                key = (
                    view.classify_cache_key(model, name)
                    if cache is not None else None
                )
                shard_jobs.append((
                    len(view.hars), key,
                    lambda view=view, model=model, name=name, key=key:
                        view.classify(
                            model=model, asdb=asdb, name=name,
                            executor=executor, cache=cache, cache_key=key,
                        ),
                ))
            dataset_specs.append((name, model, shard_jobs))
        alexa_datasets: list[tuple[AlexaRun, list, str, LifetimeModel]] = []
        if alexa_run is not None:
            alexa_datasets += [
                (alexa_run, fetch_plan, "alexa-endless", LifetimeModel.ENDLESS),
                (alexa_run, fetch_plan, "alexa", LifetimeModel.ACTUAL),
            ]
        if alexa_nofetch is not None:
            alexa_datasets.append(
                (alexa_nofetch, nofetch_plan, "alexa-nofetch",
                 LifetimeModel.ACTUAL)
            )
        for run, run_plan, name, model in alexa_datasets:
            shard_jobs = []
            for shard in run_plan:
                if runlog is not None and runlog.is_quarantined(shard.key):
                    continue
                members = set(shard.domains)
                sites = [site for site in common if site in members]
                view = run.shard_view(shard)
                key = (
                    view.classify_cache_key(model, name, sites)
                    if cache is not None else None
                )
                shard_jobs.append((
                    len(sites), key,
                    lambda view=view, model=model, name=name, key=key,
                    sites=sites:
                        view.classify(
                            model=model, asdb=asdb, name=name, sites=sites,
                            executor=executor, cache=cache, cache_key=key,
                        ),
                ))
            dataset_specs.append((name, model, shard_jobs))
        n_classified = sum(
            items
            for _, _, shard_jobs in dataset_specs
            for items, key, _ in shard_jobs
            if key is None or not cache.contains("classify", key)
        )
        with timings.stage("classify-datasets", items=n_classified):
            datasets = {}
            for name, model, shard_jobs in dataset_specs:
                partials = [job() for _, _, job in shard_jobs]
                if len(partials) == 1:
                    datasets[name] = partials[0]
                else:
                    datasets[name] = merge_classified_datasets(
                        name, model, partials, asdb=asdb
                    )
        if "har-endless" in datasets and "alexa-endless" in datasets:
            with timings.stage("overlap"):
                har_overlap, alexa_overlap = overlap_datasets(
                    datasets["har-endless"], datasets["alexa-endless"]
                )
                datasets["har-overlap"] = har_overlap
                datasets["alexa-overlap"] = alexa_overlap

        return cls(
            config=config,
            ecosystem=ecosystem,
            har_corpus=har_corpus,
            alexa_run=alexa_run,
            alexa_nofetch_run=alexa_nofetch,
            alexa_common_sites=common,
            datasets=datasets,
            timings=timings,
        )

    # ------------------------------------------------------------------
    def dataset(self, key: str) -> ClassifiedDataset:
        return self.datasets[key]

    def fault_counts(self) -> dict[str, int]:
        """Injected-fault strikes across every crawl, by fault kind.

        Empty for the default ``fault_profile="none"``; the resilience
        report renders this as its failure-taxonomy table.
        """
        totals: dict[str, int] = dict(self.har_corpus.fault_counts)
        for run in (self.alexa_run, self.alexa_nofetch_run):
            if run is not None:
                merge_counts(totals, tuple(run.fault_counts.items()))
        return totals

    @cached_property
    def dns_study(self) -> DnsStudyResult:
        """The Appendix A.4 resolver study (computed on first use)."""
        study = DnsLoadBalancingStudy(
            ecosystem=self.ecosystem,
            duration_s=self.config.dns_study_days * 24 * 3600.0,
        )
        return study.run()

    def connection_lifetimes(self) -> list[float]:
        """Lifetimes of Alexa connections that closed before test end."""
        lifetimes = []
        if self.alexa_run is None:
            return lifetimes
        for domain in self.alexa_common_sites:
            measurement = self.alexa_run.measurements[domain]
            for record in measurement.records:
                if record.protocol != "h2":
                    continue
                lifetime = record.lifetime()
                if lifetime is not None:
                    lifetimes.append(lifetime)
        return lifetimes

    def early_closed_lifetimes(self) -> list[float]:
        """Lifetimes of sessions closed by the server (GOAWAY) only."""
        lifetimes = []
        if self.alexa_run is None:
            return lifetimes
        for domain in self.alexa_common_sites:
            measurement = self.alexa_run.measurements[domain]
            goaway_ids = set(measurement.goaway_connection_ids)
            if not goaway_ids:
                continue
            for record in measurement.records:
                if record.connection_id in goaway_ids:
                    lifetime = record.lifetime()
                    if lifetime is not None:
                        lifetimes.append(lifetime)
        return lifetimes
