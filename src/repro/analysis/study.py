"""The full-study driver.

One :class:`Study` object runs everything the paper's evaluation needs,
in the paper's order:

1. generate the synthetic web (one seed → one world);
2. the HTTP Archive crawl (3 loads/site, median HAR, §4.3 noise) from
   the US vantage point, classified under the endless and immediate
   lifetime models;
3. two Alexa crawls from the German vantage point — Fetch-compliant and
   privacy-mode-patched — restricted to the runs' common reachable
   sites, classified with actual NetLog lifetimes (plus the endless
   variant);
4. the corpora overlap (Appendix A.3);
5. the DNS load-balancing study (Appendix A.4).

Every table and figure renderer consumes a Study; benches construct one
small Study per session and reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.crawl.alexa import AlexaCrawler, AlexaRun
from repro.crawl.classify import ClassifiedDataset
from repro.crawl.httparchive import HarCorpus, HttpArchiveCrawler
from repro.crawl.overlap import overlap_datasets
from repro.core.session import LifetimeModel
from repro.dnsstudy.study import DnsLoadBalancingStudy, DnsStudyResult
from repro.runtime import Executor, StageTimings, make_executor, null_timings
from repro.web.ecosystem import Ecosystem, EcosystemConfig

__all__ = ["StudyConfig", "Study", "DATASET_LABELS"]

#: Paper-facing names of the Table 1 dataset columns.
DATASET_LABELS: dict[str, str] = {
    "har-endless": "HAR Endless",
    "har-immediate": "HAR Immediate",
    "alexa-endless": "Alexa Endless",
    "alexa": "Alexa",
    "alexa-nofetch": "Alexa w/o Fetch",
    "har-overlap": "HAR Overlap Endless",
    "alexa-overlap": "Alexa Overlap Endless",
}


@dataclass(frozen=True)
class StudyConfig:
    """Scale and seed of one full reproduction run."""

    seed: int = 7
    n_sites: int = 1200
    #: Share of the universe whose top ranks form the Alexa list.
    alexa_share: float = 0.30
    #: Sampling share of the universe the HTTP Archive crawls.
    ha_sample_share: float = 0.85
    #: Simulated duration of the DNS study.
    dns_study_days: float = 2.0
    ecosystem_overrides: dict = field(default_factory=dict)
    #: Execution substrate for the per-site pipeline stages: "serial",
    #: "thread" or "process", optionally with a worker count
    #: ("process:8").  Results are executor-independent by construction;
    #: only wall-clock time changes.
    executor: str = "serial"
    #: Worker count for pool executors (None: picked per machine).
    parallelism: int | None = None

    def make_executor(self) -> "Executor":
        return make_executor(self.executor, self.parallelism)

    def ecosystem_config(self) -> EcosystemConfig:
        return EcosystemConfig(
            seed=self.seed, n_sites=self.n_sites, **self.ecosystem_overrides
        )

    def small(self) -> "StudyConfig":
        """A scaled-down copy for quick tests."""
        return StudyConfig(
            seed=self.seed,
            n_sites=min(self.n_sites, 200),
            alexa_share=self.alexa_share,
            ha_sample_share=self.ha_sample_share,
            dns_study_days=0.25,
            ecosystem_overrides=dict(self.ecosystem_overrides),
            executor=self.executor,
            parallelism=self.parallelism,
        )


@dataclass
class Study:
    """All measurement artefacts of one reproduction run."""

    config: StudyConfig
    ecosystem: Ecosystem
    har_corpus: HarCorpus
    alexa_run: AlexaRun
    alexa_nofetch_run: AlexaRun
    alexa_common_sites: list[str]
    datasets: dict[str, ClassifiedDataset]
    timings: StageTimings = field(default_factory=null_timings)

    @classmethod
    def run(
        cls,
        config: StudyConfig | None = None,
        *,
        executor: Executor | None = None,
        timings: StageTimings | None = None,
    ) -> "Study":
        """Execute the full pipeline for ``config``.

        ``executor`` overrides the config's executor spec; ``timings``
        (see :mod:`repro.runtime.profile`) records per-stage wall time.
        """
        config = config or StudyConfig()
        owns_executor = executor is None
        executor = executor if executor is not None else config.make_executor()
        timings = timings if timings is not None else null_timings()
        try:
            return cls._run(config, executor, timings)
        finally:
            if owns_executor:
                executor.close()

    @classmethod
    def _run(
        cls, config: StudyConfig, executor: Executor, timings: StageTimings
    ) -> "Study":
        with timings.stage("generate-ecosystem", items=config.n_sites):
            ecosystem = Ecosystem.generate(config.ecosystem_config())
        asdb = ecosystem.asdb

        ha_crawler = HttpArchiveCrawler(ecosystem=ecosystem, seed=config.seed + 100)
        ha_domains = ecosystem.httparchive_sample(
            config.ha_sample_share, seed=config.seed + 1
        )
        with timings.stage("crawl-httparchive", items=len(ha_domains)):
            har_corpus = ha_crawler.crawl(ha_domains, executor=executor)

        alexa_count = max(1, int(config.n_sites * config.alexa_share))
        alexa_domains = ecosystem.alexa_list(alexa_count)
        alexa_crawler = AlexaCrawler(ecosystem=ecosystem, seed=config.seed + 200)
        with timings.stage("crawl-alexa-fetch", items=len(alexa_domains)):
            alexa_run = alexa_crawler.run(
                alexa_domains, run_name="alexa-fetch", executor=executor
            )
        with timings.stage("crawl-alexa-nofetch", items=len(alexa_domains)):
            alexa_nofetch = alexa_crawler.run(
                alexa_domains,
                run_name="alexa-nofetch",
                ignore_privacy_mode=True,
                run_offset=500_000.0,
                executor=executor,
            )
        # "We review the intersection of websites for comparability."
        common = sorted(
            set(alexa_run.reachable_sites) & set(alexa_nofetch.reachable_sites)
        )

        n_classified = 2 * len(har_corpus.hars) + 3 * len(common)
        with timings.stage("classify-datasets", items=n_classified):
            datasets = {
                "har-endless": har_corpus.classify(
                    model=LifetimeModel.ENDLESS, asdb=asdb,
                    name="har-endless", executor=executor,
                ),
                "har-immediate": har_corpus.classify(
                    model=LifetimeModel.IMMEDIATE, asdb=asdb,
                    name="har-immediate", executor=executor,
                ),
                "alexa-endless": alexa_run.classify(
                    model=LifetimeModel.ENDLESS, asdb=asdb,
                    name="alexa-endless", sites=common, executor=executor,
                ),
                "alexa": alexa_run.classify(
                    model=LifetimeModel.ACTUAL, asdb=asdb,
                    name="alexa", sites=common, executor=executor,
                ),
                "alexa-nofetch": alexa_nofetch.classify(
                    model=LifetimeModel.ACTUAL, asdb=asdb,
                    name="alexa-nofetch", sites=common, executor=executor,
                ),
            }
        with timings.stage("overlap"):
            har_overlap, alexa_overlap = overlap_datasets(
                datasets["har-endless"], datasets["alexa-endless"]
            )
            datasets["har-overlap"] = har_overlap
            datasets["alexa-overlap"] = alexa_overlap

        return cls(
            config=config,
            ecosystem=ecosystem,
            har_corpus=har_corpus,
            alexa_run=alexa_run,
            alexa_nofetch_run=alexa_nofetch,
            alexa_common_sites=common,
            datasets=datasets,
            timings=timings,
        )

    # ------------------------------------------------------------------
    def dataset(self, key: str) -> ClassifiedDataset:
        return self.datasets[key]

    @cached_property
    def dns_study(self) -> DnsStudyResult:
        """The Appendix A.4 resolver study (computed on first use)."""
        study = DnsLoadBalancingStudy(
            ecosystem=self.ecosystem,
            duration_s=self.config.dns_study_days * 24 * 3600.0,
        )
        return study.run()

    def connection_lifetimes(self) -> list[float]:
        """Lifetimes of Alexa connections that closed before test end."""
        lifetimes = []
        for domain in self.alexa_common_sites:
            measurement = self.alexa_run.measurements[domain]
            for record in measurement.records:
                if record.protocol != "h2":
                    continue
                lifetime = record.lifetime()
                if lifetime is not None:
                    lifetimes.append(lifetime)
        return lifetimes

    def early_closed_lifetimes(self) -> list[float]:
        """Lifetimes of sessions closed by the server (GOAWAY) only."""
        lifetimes = []
        for domain in self.alexa_common_sites:
            measurement = self.alexa_run.measurements[domain]
            goaway_ids = set(measurement.goaway_connection_ids)
            if not goaway_ids:
                continue
            for record in measurement.records:
                if record.connection_id in goaway_ids:
                    lifetime = record.lifetime()
                    if lifetime is not None:
                        lifetimes.append(lifetime)
        return lifetimes
