"""Renderers for every table of the paper (Tables 1–12).

Each ``tableN`` function takes a :class:`~repro.analysis.study.Study`
and returns a :class:`TableResult` whose ``render()`` prints the same
rows/series the paper reports, in the paper's layout and number style.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.study import DATASET_LABELS, Study
from repro.core.attribution import AttributionIndex
from repro.core.causes import Cause
from repro.crawl.classify import ClassifiedDataset
from repro.dns.resolver import default_fleet
from repro.tls.issuers import (
    DIGICERT,
    GOOGLE_TRUST_SERVICES,
    LETS_ENCRYPT,
)
from repro.util.formatting import align_table, si_count

__all__ = [
    "TableResult",
    "table1", "table2", "table3", "table4", "table5", "table6",
    "table7", "table8", "table9", "table10", "table11", "table12",
    "ALL_TABLES",
]

#: Issuer abbreviations used in Table 4/10 ("LE", "GTS", "DCI").
_ISSUER_ABBREV = {
    LETS_ENCRYPT: "LE",
    GOOGLE_TRUST_SERVICES: "GTS",
    DIGICERT: "DCI",
}


@dataclass
class TableResult:
    """One rendered table plus its raw rows for programmatic checks."""

    table_id: str
    title: str
    header: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def render(self) -> str:
        body = align_table(self.rows, header=self.header)
        return f"{self.table_id}: {self.title}\n{body}"


# ----------------------------------------------------------------------
# Table 1 / Table 7 — cause counts per dataset
# ----------------------------------------------------------------------
def _cause_table(
    table_id: str, title: str, datasets: list[ClassifiedDataset]
) -> TableResult:
    header = ["Cause"]
    for dataset in datasets:
        label = DATASET_LABELS.get(dataset.name, dataset.name)
        header += [f"{label} Sites", f"{label} Conns."]
    rows = []
    for cause in (Cause.CERT, Cause.IP, Cause.CRED):
        row = [cause.value]
        for dataset in datasets:
            counts = dataset.report.by_cause[cause]
            row += [si_count(counts.sites), si_count(counts.connections)]
        rows.append(row)
    redundant = ["Redund."]
    total = ["Total"]
    for dataset in datasets:
        report = dataset.report
        redundant += [
            si_count(report.redundant_sites),
            si_count(report.redundant_connections),
        ]
        total += [si_count(report.h2_sites), si_count(report.h2_connections)]
    rows.append(redundant)
    rows.append(total)
    return TableResult(table_id=table_id, title=title, header=header, rows=rows)


def table1(study: Study) -> TableResult:
    """Counts of causes of redundant connections and affected websites."""
    keys = ["har-endless", "har-immediate", "alexa-endless", "alexa",
            "alexa-nofetch"]
    return _cause_table(
        "Table 1",
        "Counts of occurring causes of redundant connections and affected websites",
        [study.dataset(key) for key in keys],
    )


def table7(study: Study) -> TableResult:
    """The same counts on the HAR/Alexa overlap (Appendix A.3)."""
    return _cause_table(
        "Table 7",
        "Occurring causes for the overlap / intersection of the datasets",
        [study.dataset("har-overlap"), study.dataset("alexa-overlap")],
    )


# ----------------------------------------------------------------------
# Tables 2 / 8 / 12 — top origins for cause IP
# ----------------------------------------------------------------------
def _ip_origin_table(
    table_id: str,
    title: str,
    primary: ClassifiedDataset,
    secondary: ClassifiedDataset,
    *,
    top: int,
) -> TableResult:
    header = ["Origin", "HA ↑", "HA Conns.", "Alexa ↑", "Alexa Conns."]
    rows: list[list[str]] = []
    for attribution in primary.attribution.top_ip_origins(top):
        origin = attribution.origin
        secondary_attr = secondary.attribution.ip_origins.get(origin)
        rows.append(
            [
                origin,
                str(primary.attribution.ip_origin_rank(origin) or "-"),
                si_count(attribution.connections),
                str(secondary.attribution.ip_origin_rank(origin) or "-"),
                si_count(secondary_attr.connections) if secondary_attr else "",
            ]
        )
        for prev, count in attribution.top_previous(2):
            secondary_prev = (
                secondary_attr.previous.get(prev, 0) if secondary_attr else 0
            )
            rows.append(
                [
                    f"  prev: {prev}",
                    "",
                    si_count(count),
                    "",
                    si_count(secondary_prev) if secondary_prev else "",
                ]
            )
    return TableResult(table_id=table_id, title=title, header=header, rows=rows)


def table2(study: Study) -> TableResult:
    """Top 4 origins and reusable previous connections for cause IP."""
    return _ip_origin_table(
        "Table 2",
        "Top origins, their redundant connections and previous connections (IP)",
        study.dataset("har-endless"),
        study.dataset("alexa"),
        top=4,
    )


def table8(study: Study) -> TableResult:
    """Top 5 IP origins on the dataset overlap."""
    return _ip_origin_table(
        "Table 8",
        "Top origins for cause IP on the overlap",
        study.dataset("har-overlap"),
        study.dataset("alexa-overlap"),
        top=5,
    )


def table12(study: Study) -> TableResult:
    """Top 20 domains for the IP case (the appendix's long table)."""
    return _ip_origin_table(
        "Table 12",
        "Top 20 domains for the IP case",
        study.dataset("har-endless"),
        study.dataset("alexa"),
        top=20,
    )


# ----------------------------------------------------------------------
# Tables 3 / 9 — certificate issuers for cause CERT
# ----------------------------------------------------------------------
def _issuer_table(
    table_id: str,
    title: str,
    primary: AttributionIndex,
    secondary: AttributionIndex,
    *,
    top: int,
    use_all: bool = False,
) -> TableResult:
    header = ["Certificate Issuer", "HA Conns.", "HA Domains",
              "Alexa Conns.", "Alexa Domains"]
    primary_issuers = (
        primary.top_all_issuers(top) if use_all else primary.top_cert_issuers(top)
    )
    secondary_map = secondary.all_issuers if use_all else secondary.cert_issuers
    rows = []
    for attribution in primary_issuers:
        other = secondary_map.get(attribution.issuer)
        rows.append(
            [
                attribution.issuer,
                si_count(attribution.connections),
                si_count(len(attribution.domains)),
                si_count(other.connections) if other else "",
                si_count(len(other.domains)) if other else "",
            ]
        )
    return TableResult(table_id=table_id, title=title, header=header, rows=rows)


def table3(study: Study) -> TableResult:
    """Top issuers w.r.t. redundant connections of cause CERT."""
    return _issuer_table(
        "Table 3",
        "Top certificate issuers w.r.t. redundant connections of cause CERT",
        study.dataset("har-endless").attribution,
        study.dataset("alexa").attribution,
        top=7,
    )


def table9(study: Study) -> TableResult:
    """Top CERT issuers on the dataset overlap."""
    return _issuer_table(
        "Table 9",
        "Top certificate issuers (CERT) on the overlap",
        study.dataset("har-overlap").attribution,
        study.dataset("alexa-overlap").attribution,
        top=5,
    )


def table5(study: Study) -> TableResult:
    """Top 10 issuers over all connections (Appendix A.1)."""
    return _issuer_table(
        "Table 5",
        "Top 10 certificate issuers for all connections",
        study.dataset("har-endless").attribution,
        study.dataset("alexa").attribution,
        top=10,
        use_all=True,
    )


# ----------------------------------------------------------------------
# Tables 4 / 10 — domains for cause CERT
# ----------------------------------------------------------------------
def _cert_domain_table(
    table_id: str,
    title: str,
    primary: ClassifiedDataset,
    secondary: ClassifiedDataset,
    *,
    top: int,
) -> TableResult:
    header = ["Domain", "HA Conns.", "Alexa Conns.", "Issuer"]
    rows = []
    for attribution in primary.attribution.top_cert_domains(top):
        domain = attribution.origin
        other = secondary.attribution.cert_domains.get(domain)
        issuer = primary.attribution.cert_domain_issuer.get(domain, "")
        rows.append(
            [
                domain,
                si_count(attribution.connections),
                si_count(other.connections) if other else "",
                _ISSUER_ABBREV.get(issuer, issuer),
            ]
        )
        for prev, count in attribution.top_previous(1):
            rows.append([f"  prev: {prev}", si_count(count), "", ""])
    return TableResult(table_id=table_id, title=title, header=header, rows=rows)


def table4(study: Study) -> TableResult:
    """Top domains for redundant connections due to absent SANs (CERT)."""
    return _cert_domain_table(
        "Table 4",
        "Top domains for redundant connections to the same IPs (CERT)",
        study.dataset("har-endless"),
        study.dataset("alexa"),
        top=5,
    )


def table10(study: Study) -> TableResult:
    """Top CERT domains on the dataset overlap."""
    return _cert_domain_table(
        "Table 10",
        "Top CERT domains on the overlap",
        study.dataset("har-overlap"),
        study.dataset("alexa-overlap"),
        top=5,
    )


# ----------------------------------------------------------------------
# Table 6 — ASes for cause IP
# ----------------------------------------------------------------------
def table6(study: Study) -> TableResult:
    """Top 10 ASNs for connections of cause IP (Appendix A.2)."""
    header = ["AS", "HA Conns.", "HA Domains", "Alexa Conns.", "Alexa Domains"]
    primary = study.dataset("har-endless").attribution
    secondary = study.dataset("alexa").attribution
    secondary_counts = dict(
        (name, (connections, domains))
        for name, connections, domains in secondary.top_ip_ases(top=10_000)
    )
    rows = []
    for name, connections, domains in primary.top_ip_ases(10):
        other = secondary_counts.get(name)
        rows.append(
            [
                name,
                si_count(connections),
                si_count(domains),
                si_count(other[0]) if other else "",
                si_count(other[1]) if other else "",
            ]
        )
    return TableResult(
        table_id="Table 6",
        title="Top 10 ASNs for connections of cause IP",
        header=header,
        rows=rows,
    )


# ----------------------------------------------------------------------
# Table 11 — the resolver fleet
# ----------------------------------------------------------------------
def table11(study: Study) -> TableResult:
    """DNS resolvers used for the load-balancing study."""
    fleet = default_fleet(study.ecosystem.namespace)
    rows = [
        [resolver.info.ip, resolver.info.country, resolver.info.operator]
        for resolver in fleet
    ]
    return TableResult(
        table_id="Table 11",
        title="DNS resolvers used to analyze DNS-based load-balancing",
        header=["IP", "Country", "Operator"],
        rows=rows,
    )


ALL_TABLES = {
    "table1": table1, "table2": table2, "table3": table3, "table4": table4,
    "table5": table5, "table6": table6, "table7": table7, "table8": table8,
    "table9": table9, "table10": table10, "table11": table11, "table12": table12,
}
