"""Programmatic validation of a study against the paper's findings.

Every qualitative claim of the paper that the reproduction targets is
encoded as a named check with an expectation, the measured value, and a
tolerance.  ``validate_study`` runs all of them and returns a scorecard
— the machine-readable counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.figures import figure2
from repro.analysis.headline import headline
from repro.analysis.study import Study
from repro.core.causes import Cause

__all__ = ["CheckResult", "Scorecard", "validate_study"]


@dataclass(frozen=True)
class CheckResult:
    """One paper claim checked against the reproduction."""

    name: str
    claim: str
    expected: str
    measured: str
    passed: bool


@dataclass
class Scorecard:
    """All checks for one study."""

    checks: list[CheckResult]

    @property
    def passed(self) -> int:
        return sum(1 for check in self.checks if check.passed)

    @property
    def failed(self) -> list[CheckResult]:
        return [check for check in self.checks if not check.passed]

    @property
    def all_passed(self) -> bool:
        return not self.failed

    def render(self) -> str:
        lines = [f"Paper-shape scorecard: {self.passed}/{len(self.checks)} "
                 "checks passed"]
        for check in self.checks:
            status = "PASS" if check.passed else "FAIL"
            lines.append(f"  [{status}] {check.name}: expected "
                         f"{check.expected}, measured {check.measured}")
            if not check.passed:
                lines.append(f"         claim: {check.claim}")
        return "\n".join(lines)


def _check(
    checks: list[CheckResult],
    name: str,
    claim: str,
    expected: str,
    measured_value: object,
    predicate: Callable[[], bool],
) -> None:
    checks.append(
        CheckResult(
            name=name,
            claim=claim,
            expected=expected,
            measured=str(measured_value),
            passed=bool(predicate()),
        )
    )


def validate_study(study: Study) -> Scorecard:
    """Run every encoded paper claim against ``study``."""
    checks: list[CheckResult] = []
    har = study.dataset("har-endless").report
    har_imm = study.dataset("har-immediate").report
    alexa = study.dataset("alexa").report
    nofetch = study.dataset("alexa-nofetch").report
    stats = headline(study)

    _check(checks, "har-redundant-majority",
           "§5.1: 76% of HTTP Archive sites open redundant connections",
           "> 0.6", round(har.redundant_site_share(), 2),
           lambda: har.redundant_site_share() > 0.6)
    _check(checks, "alexa-redundant-majority",
           "§5.1: 95% of Alexa sites open redundant connections",
           "> 0.85", round(alexa.redundant_site_share(), 2),
           lambda: alexa.redundant_site_share() > 0.85)
    _check(checks, "alexa-exceeds-har",
           "§5.1: Alexa shows more redundancy than the HTTP Archive",
           "alexa > har", f"{alexa.redundant_site_share():.2f} vs "
                          f"{har.redundant_site_share():.2f}",
           lambda: alexa.redundant_site_share() > har.redundant_site_share())
    _check(checks, "immediate-lower-bound",
           "§4.2.1: the immediate model is a lower bound",
           "immediate < endless",
           f"{har_imm.redundant_connections} vs {har.redundant_connections}",
           lambda: har_imm.redundant_connections < har.redundant_connections)

    for key, report in (("har", har), ("alexa", alexa)):
        ip = report.by_cause[Cause.IP]
        cred = report.by_cause[Cause.CRED]
        cert = report.by_cause[Cause.CERT]
        _check(checks, f"{key}-cause-ordering-sites",
               "§5.2: IP > CRED > CERT by affected sites",
               "IP > CRED > CERT",
               f"{ip.sites}/{cred.sites}/{cert.sites}",
               lambda ip=ip, cred=cred, cert=cert:
               ip.sites > cred.sites > cert.sites)
        _check(checks, f"{key}-cause-ordering-conns",
               "§5.2: IP >> CRED > CERT by connections",
               "IP > 3*CRED > CERT",
               f"{ip.connections}/{cred.connections}/{cert.connections}",
               lambda ip=ip, cred=cred, cert=cert:
               ip.connections > 3 * cred.connections
               and cred.connections > cert.connections)

    _check(checks, "cred-vanishes",
           "§5.3.3: the CRED cases vanish completely under the patch",
           "0", nofetch.by_cause[Cause.CRED].connections,
           lambda: nofetch.by_cause[Cause.CRED].connections == 0)
    _check(checks, "patch-reduction",
           "§5.3.3: disabling the flag reduces redundancy by ~25%",
           "0.10-0.40", round(stats.redundant_reduction_share, 2),
           lambda: 0.10 <= stats.redundant_reduction_share <= 0.40)
    _check(checks, "lifetime-share",
           "§5.1: ~3.5% of connections close before test end",
           "< 0.1", round(stats.closed_connection_share, 3),
           lambda: stats.closed_connection_share < 0.1)
    _check(checks, "lifetime-median",
           "§5.1: median lifetime of closing connections is 122.2 s",
           "60-250 s", stats.median_closed_lifetime_s,
           lambda: stats.median_closed_lifetime_s is not None
           and 60 < stats.median_closed_lifetime_s < 250)

    attribution = study.dataset("har-endless").attribution
    top_origin = attribution.top_ip_origins(1)
    _check(checks, "top-ip-origin",
           "Table 2: www.google-analytics.com is the top IP origin",
           "www.google-analytics.com",
           top_origin[0].origin if top_origin else "none",
           lambda: bool(top_origin)
           and top_origin[0].origin == "www.google-analytics.com")
    top_ases = [name for name, _, _ in attribution.top_ip_ases(3)]
    _check(checks, "top-ip-as",
           "Table 6: GOOGLE is the top AS for cause IP",
           "GOOGLE", top_ases[0] if top_ases else "none",
           lambda: bool(top_ases) and top_ases[0] == "GOOGLE")
    cert_issuers = {a.issuer for a in attribution.top_cert_issuers(3)}
    _check(checks, "cert-issuers",
           "Table 3: GTS and Let's Encrypt lead the CERT issuers",
           "GTS or LE in top 3", ", ".join(sorted(cert_issuers)),
           lambda: bool({"Google Trust Services", "Let's Encrypt"}
                        & cert_issuers))
    cert_domains = {a.origin for a in attribution.top_cert_domains(6)}
    _check(checks, "klaviyo-cert-domain",
           "Table 4: fast.a.klaviyo.com among the top CERT domains",
           "present", "present" if "fast.a.klaviyo.com" in cert_domains
           else "absent",
           lambda: "fast.a.klaviyo.com" in cert_domains)

    figure = figure2(study)
    _check(checks, "figure2-dominance",
           "Figure 2: the Alexa curve dominates the HTTP Archive curve",
           "alexa >= har at x=3",
           f"{figure.share_with_at_least('alexa', 3):.2f} vs "
           f"{figure.share_with_at_least('har-endless', 3):.2f}",
           lambda: figure.share_with_at_least("alexa", 3)
           >= figure.share_with_at_least("har-endless", 3))

    dns = study.dns_study
    classes = {t.pair.domain: t.classification() for t in dns.timelines}
    _check(checks, "figure3-ga-never",
           "Figure 3: GA/GTM answers never overlap",
           "never", classes.get("www.google-analytics.com", "missing"),
           lambda: classes.get("www.google-analytics.com") == "never")
    _check(checks, "figure3-gstatic-sometimes",
           "Figure 3: gstatic pairs overlap sometimes",
           "sometimes", classes.get("www.gstatic.com", "missing"),
           lambda: classes.get("www.gstatic.com") == "sometimes")

    return Scorecard(checks=checks)
