"""Content digests over study results.

``study_digest`` hashes every classified dataset down to the individual
session-record level, so two studies digest equal **iff** their
measurement outputs are identical.  This is the anchor of the
determinism suite: serial, thread and process executors must produce
the same digest for the same seed, and different seeds must diverge.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from repro.core.classifier import SiteClassification
from repro.core.session import SessionRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.study import Study
    from repro.crawl.classify import ClassifiedDataset

__all__ = ["study_digest", "dataset_digest"]


def _record_key(record: SessionRecord) -> tuple:
    return (
        record.connection_id,
        record.domain,
        record.ip,
        record.port,
        record.sans,
        record.issuer,
        record.start,
        record.end,
        record.protocol,
        record.privacy_mode,
        tuple(
            (
                request.domain,
                request.status,
                request.finished_at,
                request.with_credentials,
                request.body_size,
                request.path,
                request.method,
            )
            for request in record.requests
        ),
    )


def _classification_key(classification: SiteClassification) -> tuple:
    return (
        classification.site,
        tuple(_record_key(record) for record in classification.records),
        tuple(
            (
                hit.cause.value,
                hit.record.connection_id,
                hit.previous.connection_id,
            )
            for hit in classification.hits
        ),
    )


def _feed(hasher, dataset: "ClassifiedDataset") -> None:
    hasher.update(repr((dataset.name, dataset.model.value)).encode())
    for site in sorted(dataset.classifications):
        key = _classification_key(dataset.classifications[site])
        hasher.update(repr(key).encode())


def dataset_digest(dataset: "ClassifiedDataset") -> str:
    """Hex digest of one dataset's full classified content."""
    hasher = hashlib.blake2b(digest_size=16)
    _feed(hasher, dataset)
    return hasher.hexdigest()


def study_digest(study: "Study") -> str:
    """Hex digest over all of a study's classified datasets.

    Byte-identical datasets — every record of every site of every
    dataset, plus the classifier's verdicts — produce the same digest;
    any divergence (ordering, timing, RNG drift) changes it.
    """
    hasher = hashlib.blake2b(digest_size=16)
    for key in sorted(study.datasets):
        hasher.update(repr(key).encode())
        _feed(hasher, study.datasets[key])
    return hasher.hexdigest()
