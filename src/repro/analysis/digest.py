"""Content digests over study results, mergeable across site shards.

``study_digest`` hashes every classified dataset down to the individual
session-record level, so two studies digest equal **iff** their
measurement outputs are identical.  This is the anchor of the
determinism suite: serial, thread and process executors must produce
the same digest for the same seed, and different seeds must diverge.

The digest is built as a **shard-and-fold**: a :class:`DigestPart`
holds one hashed byte chunk per site per dataset, partials over
disjoint site sets merge associatively (:func:`merge_digest_parts`),
and :func:`fold_study_digest` finalises the merged part by feeding the
chunks to ``blake2b`` in a canonical sorted order.  Because hashing a
concatenation equals sequential updates, the fold of N partials is
byte-identical to the monolithic digest for every N — including N=1,
which is how :func:`study_digest` itself is implemented.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.core.classifier import SiteClassification
from repro.core.session import SessionRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.study import Study
    from repro.crawl.classify import ClassifiedDataset
    from repro.runlog import RunCoverage

__all__ = [
    "DigestPart",
    "dataset_digest",
    "fold_study_digest",
    "merge_digest_parts",
    "partial_study_digest",
    "study_digest",
]


def _record_key(record: SessionRecord) -> tuple:
    return (
        record.connection_id,
        record.domain,
        record.ip,
        record.port,
        record.sans,
        record.issuer,
        record.start,
        record.end,
        record.protocol,
        record.privacy_mode,
        tuple(
            (
                request.domain,
                request.status,
                request.finished_at,
                request.with_credentials,
                request.body_size,
                request.path,
                request.method,
            )
            for request in record.requests
        ),
    )


def _classification_key(classification: SiteClassification) -> tuple:
    return (
        classification.site,
        tuple(_record_key(record) for record in classification.records),
        tuple(
            (
                hit.cause.value,
                hit.record.connection_id,
                hit.previous.connection_id,
            )
            for hit in classification.hits
        ),
    )


def _site_chunk(classification: SiteClassification) -> bytes:
    """The byte chunk one site contributes to its dataset's digest."""
    return repr(_classification_key(classification)).encode()


def _dataset_header(dataset: "ClassifiedDataset") -> bytes:
    return repr((dataset.name, dataset.model.value)).encode()


@dataclass(frozen=True)
class DigestPart:
    """A mergeable partial digest: per dataset, per-site hashed chunks.

    ``datasets`` maps each study dataset key to ``(header, chunks)``
    where ``header`` is the dataset's identity bytes and ``chunks``
    maps site -> that site's content chunk.  Parts over disjoint site
    sets merge without loss; a site appearing in two parts with
    *different* chunks is a partition error and raises on merge.
    """

    datasets: Mapping[str, tuple[bytes, Mapping[str, bytes]]] = field(
        default_factory=dict
    )

    def merge(self, other: "DigestPart") -> "DigestPart":
        merged: dict[str, tuple[bytes, dict[str, bytes]]] = {
            key: (header, dict(chunks))
            for key, (header, chunks) in self.datasets.items()
        }
        for key, (header, chunks) in other.datasets.items():
            if key not in merged:
                merged[key] = (header, dict(chunks))
                continue
            have_header, have_chunks = merged[key]
            if have_header != header:
                raise ValueError(
                    f"digest parts disagree on dataset {key!r} identity"
                )
            for site, chunk in chunks.items():
                if have_chunks.get(site, chunk) != chunk:
                    raise ValueError(
                        f"site {site!r} appears in two digest parts of "
                        f"dataset {key!r} with different content; the "
                        f"shard partition is not disjoint"
                    )
                have_chunks[site] = chunk
        return DigestPart(merged)


def partial_study_digest(
    datasets: Mapping[str, "ClassifiedDataset"],
    sites: Iterable[str] | None = None,
) -> DigestPart:
    """The :class:`DigestPart` of ``datasets``, optionally restricted
    to one shard's ``sites``.

    With ``sites=None`` the part covers everything, so
    ``fold_study_digest([partial_study_digest(study.datasets)])`` is
    the whole-study digest.  With a site filter, folding the parts of
    a disjoint site partition reproduces the same digest byte for
    byte, whatever the shard count or fold order.
    """
    wanted = None if sites is None else frozenset(sites)
    parts: dict[str, tuple[bytes, dict[str, bytes]]] = {}
    for key, dataset in datasets.items():
        chunks = {
            site: _site_chunk(classification)
            for site, classification in dataset.classifications.items()
            if wanted is None or site in wanted
        }
        parts[key] = (_dataset_header(dataset), chunks)
    return DigestPart(parts)


def merge_digest_parts(parts: Iterable[DigestPart]) -> DigestPart:
    """Associative, order-insensitive merge of digest parts."""
    merged = DigestPart()
    for part in parts:
        merged = merged.merge(part)
    return merged


def fold_study_digest(
    parts: Iterable[DigestPart],
    *,
    coverage: "RunCoverage | None" = None,
) -> str:
    """Finalise merged parts into the study digest hex string.

    Feeds the hasher exactly the way the monolithic digest does: each
    dataset key (sorted), then the dataset header, then each site's
    chunk in sorted site order.

    A *partial* ``coverage`` (quarantined shards) contributes its own
    trailing chunk, so a degraded run can never digest-collide with a
    complete run over the surviving sites.  Complete (or absent)
    coverage contributes nothing — the runlog layer stays inert and
    the golden digests unchanged.
    """
    merged = merge_digest_parts(parts)
    hasher = hashlib.blake2b(digest_size=16)
    for key in sorted(merged.datasets):
        header, chunks = merged.datasets[key]
        hasher.update(repr(key).encode())
        hasher.update(header)
        for site in sorted(chunks):
            hasher.update(chunks[site])
    if coverage is not None and coverage.shards_quarantined > 0:
        hasher.update(repr((
            "partial-coverage",
            coverage.shards_quarantined,
            tuple(sorted(coverage.excluded_domains)),
        )).encode())
    return hasher.hexdigest()


def dataset_digest(dataset: "ClassifiedDataset") -> str:
    """Hex digest of one dataset's full classified content."""
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(_dataset_header(dataset))
    for site in sorted(dataset.classifications):
        hasher.update(_site_chunk(dataset.classifications[site]))
    return hasher.hexdigest()


def study_digest(study: "Study") -> str:
    """Hex digest over all of a study's classified datasets.

    Byte-identical datasets — every record of every site of every
    dataset, plus the classifier's verdicts — produce the same digest;
    any divergence (ordering, timing, RNG drift) changes it.
    Implemented as the 1-part fold, so sharded and monolithic studies
    share one digest definition.  A study degraded by quarantined
    shards folds its coverage in (see :func:`fold_study_digest`).
    """
    return fold_study_digest(
        [partial_study_digest(study.datasets)],
        coverage=getattr(study, "coverage", None),
    )
