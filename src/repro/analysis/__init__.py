"""Analysis layer: the study driver plus every table/figure renderer."""

from repro.analysis.ablation import (
    MitigationComparison,
    MitigationOutcome,
    compare_mitigations,
)
from repro.analysis.digest import dataset_digest, study_digest
from repro.analysis.figures import Figure2Result, Figure3Result, figure2, figure3
from repro.analysis.h3 import H3Result, h3_report
from repro.analysis.headline import HeadlineStats, headline
from repro.analysis.longitudinal import (
    EpochSnapshot,
    LongitudinalResult,
    longitudinal_report,
    snapshot_study,
)
from repro.analysis.resilience import ResilienceResult, resilience_report
from repro.analysis.robustness import robustness_report
from repro.analysis.study import DATASET_LABELS, Study, StudyConfig
from repro.analysis.tables import (
    ALL_TABLES,
    TableResult,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    table10,
    table11,
    table12,
)

__all__ = [
    "MitigationComparison",
    "MitigationOutcome",
    "compare_mitigations",
    "dataset_digest",
    "study_digest",
    "Figure2Result",
    "Figure3Result",
    "figure2",
    "figure3",
    "H3Result",
    "h3_report",
    "HeadlineStats",
    "headline",
    "EpochSnapshot",
    "LongitudinalResult",
    "longitudinal_report",
    "snapshot_study",
    "ResilienceResult",
    "resilience_report",
    "robustness_report",
    "DATASET_LABELS",
    "Study",
    "StudyConfig",
    "ALL_TABLES",
    "TableResult",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "table11",
    "table12",
]
