"""Cross-run robustness of the paper's headline numbers.

§4.3 of the paper discusses load-to-load noise; a single crawl
configuration cannot show whether our reproduced Table 1 / §5.1 numbers
are stable or flukes of one seed.  This report aggregates a sweep's
cells *across seeds* (per variant group): min / mean / max of every
headline statistic, and per-dataset Table-1 count spreads, rendered in
the same ``align_table`` style as the paper tables.

The report consumes the compact :class:`~repro.sweep.runner.SweepResult`
summaries only — it never holds whole studies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from repro.util.formatting import align_table, si_count

if TYPE_CHECKING:  # pragma: no cover - avoid a runtime analysis<->sweep cycle
    from repro.sweep.runner import CellResult, SweepResult

__all__ = ["robustness_report"]

#: Headline statistics aggregated across seeds: (row label, attribute,
#: formatter).  ``median_closed_lifetime_s`` may be None per cell.
_HEADLINE_ROWS: tuple[tuple[str, str, str], ...] = (
    ("HAR endless redundant share", "har_endless_redundant_share", "share"),
    ("HAR immediate redundant share", "har_immediate_redundant_share", "share"),
    ("Alexa redundant share", "alexa_redundant_share", "share"),
    ("Alexa endless redundant share", "alexa_endless_redundant_share", "share"),
    ("HAR sites >= 2 redundant", "har_share_two_or_more", "share"),
    ("Alexa sites >= 6 redundant", "alexa_share_six_or_more", "share"),
    ("Closed-connection share", "closed_connection_share", "share"),
    ("Median closed lifetime", "median_closed_lifetime_s", "seconds"),
    ("CRED conns (Fetch)", "cred_connections_with_fetch", "count"),
    ("CRED conns (patched)", "cred_connections_without_fetch", "count"),
    ("Redundancy reduction (patch)", "redundant_reduction_share", "share"),
)

#: Per-dataset Table-1 metrics: (row label, extractor).
_DATASET_METRICS: tuple[tuple[str, Callable], ...] = (
    ("CERT conns", lambda s: s.cause_connections.get("CERT", 0)),
    ("IP conns", lambda s: s.cause_connections.get("IP", 0)),
    ("CRED conns", lambda s: s.cause_connections.get("CRED", 0)),
    ("Redund. conns", lambda s: s.redundant_connections),
    ("Redund. sites", lambda s: s.redundant_sites),
    ("Total h2 conns", lambda s: s.h2_connections),
)


def _format(value: float, style: str) -> str:
    if style == "share":
        return f"{value:.1%}"
    if style == "seconds":
        return f"{value:.1f} s"
    return si_count(value)


def _spread(values: list[float], style: str) -> list[str]:
    """min / mean / max / spread cells for one statistic."""
    low, high = min(values), max(values)
    mean = sum(values) / len(values)
    return [
        _format(low, style),
        _format(mean, style),
        _format(high, style),
        _format(high - low, style),
    ]


def _headline_table(cells: "list[CellResult]") -> str:
    with_stats = [cell for cell in cells if cell.headline is not None]
    if not with_stats:
        return ("  (no cell produced headline statistics — variant "
                "ablates a required dataset)")
    rows = []
    for label, attribute, style in _HEADLINE_ROWS:
        values = [
            getattr(cell.headline, attribute) for cell in with_stats
        ]
        values = [value for value in values if value is not None]
        if not values:
            rows.append([label, "n/a", "n/a", "n/a", "n/a"])
            continue
        rows.append([label] + _spread(values, style))
    return align_table(rows, header=["Statistic", "Min", "Mean", "Max", "Spread"])


def _dataset_table(cells: "list[CellResult]") -> str:
    names: list[str] = []
    for cell in cells:
        for name in cell.datasets:
            if name not in names:
                names.append(name)
    rows = []
    for name in names:
        summaries = [
            cell.datasets[name] for cell in cells if name in cell.datasets
        ]
        for label, extract in _DATASET_METRICS:
            values = [float(extract(summary)) for summary in summaries]
            rows.append([name, label] + _spread(values, "count"))
    return align_table(
        rows, header=["Dataset", "Metric", "Min", "Mean", "Max", "Spread"]
    )


def _digest_lines(cells: "list[CellResult]") -> Iterable[str]:
    for cell in cells:
        partial = (
            "  PARTIAL"
            if cell.coverage is not None and not cell.coverage.complete
            else ""
        )
        yield f"    seed={cell.cell.seed}: {cell.digest}{partial}"


def _coverage_lines(cells: "list[CellResult]") -> Iterable[str]:
    """Coverage caveats for degraded cells (nothing when all complete)."""
    for cell in cells:
        coverage = cell.coverage
        if coverage is None or coverage.complete:
            continue
        yield (
            f"    seed={cell.cell.seed}: {coverage.describe()} — excluded: "
            + ", ".join(coverage.excluded_domains)
        )


def robustness_report(result: "SweepResult") -> str:
    """Render the cross-seed robustness report for one sweep."""
    spec = result.spec
    variant_groups = result.by_variant()
    header = (
        f"Robustness report — {len(result.cells)} cells "
        f"({len(spec.seeds)} seeds x {len(variant_groups)} variants)"
    )
    lines = [header, f"Seeds: {', '.join(str(seed) for seed in spec.seeds)}"]
    if spec.axes:
        axes = "; ".join(
            f"{name} in {list(values)!r}" for name, values in spec.axes
        )
        lines.append(f"Grid: {axes}")
    for label, cells in variant_groups:
        lines.append("")
        lines.append(f"== Variant: {label} ({len(cells)} cells) ==")
        lines.append("Headline statistics across seeds:")
        lines.append(_headline_table(cells))
        lines.append("")
        lines.append("Table 1 counts across seeds:")
        lines.append(_dataset_table(cells))
        lines.append("  Study digests:")
        lines.extend(_digest_lines(cells))
        caveats = list(_coverage_lines(cells))
        if caveats:
            lines.append("  Coverage caveats (quarantined shards):")
            lines.extend(caveats)
    return "\n".join(lines)
