"""Exporters: tables and figures as Markdown / CSV.

The text renderers target terminals; these exporters target documents
and downstream tooling (spreadsheets, plotting scripts).
"""

from __future__ import annotations

import csv
import io

from repro.analysis.figures import Figure2Result
from repro.analysis.tables import TableResult

__all__ = ["table_to_markdown", "table_to_csv", "figure2_to_csv"]


def table_to_markdown(table: TableResult) -> str:
    """Render a :class:`TableResult` as a GitHub-flavoured table."""
    def row(cells: list[str]) -> str:
        return "| " + " | ".join(cell.replace("|", "\\|") for cell in cells) + " |"

    lines = [f"**{table.table_id}: {table.title}**", ""]
    lines.append(row(table.header))
    lines.append("|" + "|".join("---" for _ in table.header) + "|")
    lines.extend(row(cells) for cells in table.rows)
    return "\n".join(lines)


def table_to_csv(table: TableResult) -> str:
    """Render a :class:`TableResult` as CSV (header + rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.header)
    writer.writerows(table.rows)
    return buffer.getvalue()


def figure2_to_csv(figure: Figure2Result) -> str:
    """Figure 2 series as long-format CSV: dataset,x,share."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["dataset", "redundant_connections", "share_at_least"])
    for dataset, points in figure.series.items():
        for x, share in points:
            writer.writerow([dataset, x, f"{share:.6f}"])
    return buffer.getvalue()
