"""Faulted-vs-baseline resilience comparison.

The fault-injection engine (:mod:`repro.faults`) perturbs the network
under a study; this report quantifies what the perturbation did to the
paper's observables.  It diffs two studies of the *same* configuration
— one under ``fault_profile="none"``, one under a named profile — along
three axes:

* **reuse impact** — per dataset: HTTP/2 connection counts, redundant
  connections and the redundant shares, baseline vs. faulted, with the
  percentage-point delta (does flaky infrastructure create or destroy
  reuse opportunities?);
* **attribution shifts** — the Table-1 cause split (CERT / IP / CRED)
  under both runs, because e.g. narrowed DNS answers move redundancy
  out of cause IP while broken TLS removes whole coalescing candidates;
* **failure taxonomy** — every injected fault kind with its strike
  count, plus the crawl-level reachability deltas the strikes caused.

Both studies must share seed and scale; the report refuses apples-to-
oranges inputs instead of rendering misleading deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.study import Study
from repro.core.causes import Cause
from repro.util.formatting import align_table

__all__ = ["ResilienceResult", "resilience_report"]


def _pp(delta: float) -> str:
    """A signed percentage-point delta cell (never renders "-0.0")."""
    value = round(delta * 100, 1) + 0.0
    return f"{value:+.1f} pp"


@dataclass(frozen=True)
class ResilienceResult:
    """The rendered-ready diff of one faulted study against baseline."""

    baseline: Study
    faulted: Study

    @property
    def profile_name(self) -> str:
        return self.faulted.config.fault_profile

    # ------------------------------------------------------------------
    def shared_datasets(self) -> list[str]:
        """Dataset keys present in both studies, baseline order."""
        return [
            name for name in self.baseline.datasets
            if name in self.faulted.datasets
        ]

    def reuse_rows(self) -> list[list[str]]:
        rows = []
        for name in self.shared_datasets():
            base = self.baseline.datasets[name].report
            fault = self.faulted.datasets[name].report
            base_share = (
                base.redundant_connections / base.h2_connections
                if base.h2_connections else 0.0
            )
            fault_share = (
                fault.redundant_connections / fault.h2_connections
                if fault.h2_connections else 0.0
            )
            rows.append([
                name,
                str(base.h2_connections),
                str(fault.h2_connections),
                str(base.redundant_connections),
                str(fault.redundant_connections),
                f"{base_share:.1%}",
                f"{fault_share:.1%}",
                _pp(fault_share - base_share),
            ])
        return rows

    def attribution_rows(self) -> list[list[str]]:
        rows = []
        for name in self.shared_datasets():
            base = self.baseline.datasets[name].report
            fault = self.faulted.datasets[name].report
            for cause in (Cause.CERT, Cause.IP, Cause.CRED):
                before = base.by_cause[cause].connections
                after = fault.by_cause[cause].connections
                if before == 0 and after == 0:
                    continue
                rows.append([
                    name, cause.value, str(before), str(after),
                    f"{after - before:+d}",
                ])
        return rows

    def taxonomy_rows(self) -> list[list[str]]:
        counts = self.faulted.fault_counts()
        return [
            [kind, str(count)] for kind, count in sorted(counts.items())
        ]

    def reachability_rows(self) -> list[list[str]]:
        rows = [[
            "HTTP Archive unreachable",
            str(len(self.baseline.har_corpus.unreachable)),
            str(len(self.faulted.har_corpus.unreachable)),
        ]]
        for attribute, label in (
            ("alexa_run", "Alexa (fetch) unreachable"),
            ("alexa_nofetch_run", "Alexa (nofetch) unreachable"),
        ):
            base_run = getattr(self.baseline, attribute)
            fault_run = getattr(self.faulted, attribute)
            if base_run is None or fault_run is None:
                continue
            rows.append([
                label,
                str(base_run.unreachable_count),
                str(fault_run.unreachable_count),
            ])
        rows.append([
            "Alexa common sites",
            str(len(self.baseline.alexa_common_sites)),
            str(len(self.faulted.alexa_common_sites)),
        ])
        return rows

    # ------------------------------------------------------------------
    def render(self) -> str:
        config = self.faulted.config
        parts = [
            f"Resilience report — fault profile '{self.profile_name}' vs. "
            f"baseline (seed={config.seed}, n_sites={config.n_sites})",
            "",
            "Reuse impact per dataset",
            align_table(
                self.reuse_rows(),
                header=["Dataset", "h2 base", "h2 fault", "red base",
                        "red fault", "share base", "share fault", "delta"],
            ),
            "",
            "Attribution shifts (redundant connections by cause)",
            align_table(
                self.attribution_rows(),
                header=["Dataset", "Cause", "Base", "Fault", "Delta"],
            ),
            "",
            "Failure taxonomy (injected fault strikes)",
        ]
        taxonomy = self.taxonomy_rows()
        if taxonomy:
            parts.append(
                align_table(taxonomy, header=["Fault kind", "Strikes"])
            )
        else:
            parts.append("  (the fault plan never fired)")
        parts += [
            "",
            "Reachability",
            align_table(
                self.reachability_rows(),
                header=["Metric", "Baseline", "Faulted"],
            ),
        ]
        # Degraded coverage (quarantined shards) would silently bias
        # every delta above, so a partial run is called out explicitly.
        for label, study in (
            ("baseline", self.baseline), ("faulted", self.faulted)
        ):
            coverage = study.coverage
            if coverage is not None and not coverage.complete:
                parts += [
                    "",
                    f"Coverage caveat: {label} run is "
                    f"{coverage.describe()}",
                ]
        return "\n".join(parts)


def resilience_report(baseline: Study, faulted: Study) -> ResilienceResult:
    """Diff ``faulted`` against ``baseline``.

    ``baseline`` must be the same configuration with
    ``fault_profile="none"``; anything else would attribute ordinary
    configuration drift to the fault engine.
    """
    if baseline.config.fault_profile != "none":
        raise ValueError(
            f"baseline study runs fault profile "
            f"{baseline.config.fault_profile!r}, expected 'none'"
        )
    if replace(baseline.config, fault_profile="none") != replace(
        faulted.config, fault_profile="none"
    ):
        raise ValueError(
            "baseline and faulted studies differ beyond fault_profile; "
            "their deltas would not be attributable to the faults"
        )
    return ResilienceResult(baseline=baseline, faulted=faulted)
