"""Per-unit epoch plans: the RNG discipline of the evolution engine.

An :class:`EpochPlan` compiles one :class:`~repro.evolve.policy.EvolutionPolicy`
for one ``(seed, epoch, domain)`` triple, exactly the way a
:class:`~repro.faults.FaultPlan` compiles a fault profile for one
``(seed, run, domain)``.  Every mutation decision the engine makes for
a unit (a website, a DNS entry) draws from that unit's plan, and each
:class:`~repro.evolve.policy.ChurnKind` owns an independent stream, so

* epochs are **reproducible** — the evolved world is a pure function of
  ``(ecosystem config, policy, epoch)``, rebuildable inside any process
  worker;
* units are **independent** — churn striking one domain never shifts
  another domain's draws;
* kinds are **independent** — tuning one mutation's rate leaves every
  other kind's draw sequence untouched.

The empty policy (``"none"``) compiles to ``None`` so the engine's
callers short-circuit before touching any RNG — a world evolved under
``"none"`` is byte-identical to one generated before this module
existed (the pinned clean golden digest proves it).

>>> from repro.evolve.plan import EpochPlan
>>> EpochPlan.compile("none", seed=7, epoch=3, domain="site000001.com") is None
True
>>> plan = EpochPlan.compile("mixed", seed=7, epoch=1, domain="site000001.com")
>>> again = EpochPlan.compile("mixed", seed=7, epoch=1, domain="site000001.com")
>>> from repro.evolve.policy import ChurnKind
>>> plan.fires(ChurnKind.CERT_ROTATE) == again.fires(ChurnKind.CERT_ROTATE)
True
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.evolve.policy import ChurnKind, EvolutionPolicy, evolution_policy
from repro.faults.plan import merge_counts
from repro.util.rng import stable_hash

__all__ = ["EpochPlan", "merge_churn"]

#: Fold one unit's fired-count tuple into a running ledger dict — the
#: identical operation the fault taxonomy uses, so it IS that function.
merge_churn = merge_counts


@dataclass
class EpochPlan:
    """A policy compiled for one unit (domain) of one epoch.

    The plan owns one :class:`random.Random` stream *per churn kind*,
    each seeded from ``(policy, kind, seed, epoch, domain)``, plus a
    fired-count tally the engine aggregates into the per-epoch churn
    ledger the longitudinal report renders.
    """

    policy: EvolutionPolicy
    seed: int
    epoch: int
    domain: str
    # thread-safe: one EpochPlan per (domain, epoch), consulted only by
    # the single-threaded epoch application inside world generation.
    _streams: dict[ChurnKind, random.Random] = field(
        default_factory=dict, repr=False
    )
    # thread-safe: per-(domain, epoch), like _streams above.
    _fired: dict[ChurnKind, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for spec in self.policy.specs:
            self._streams[spec.kind] = random.Random(
                stable_hash(
                    "evolve", self.policy.name, spec.kind.value,
                    self.seed, self.epoch, self.domain,
                )
            )

    @classmethod
    def compile(
        cls, policy: EvolutionPolicy | str, *, seed: int, epoch: int,
        domain: str,
    ) -> "EpochPlan | None":
        """Compile ``policy`` for one unit; empty policies yield ``None``.

        Returning ``None`` (not an inert plan object) is what makes the
        evolution machinery provably free when unused: the engine is
        never even entered for the ``"none"`` policy or for epoch 0.
        """
        if isinstance(policy, str):
            policy = evolution_policy(policy)
        if policy.empty:
            return None
        return cls(policy=policy, seed=seed, epoch=epoch, domain=domain)

    # ------------------------------------------------------------------
    def fires(self, kind: ChurnKind) -> bool:
        """Draw once: does mutation ``kind`` apply to this unit?"""
        spec = self.policy.spec_for(kind)
        if spec is None or spec.rate <= 0.0:
            return False
        if self._streams[kind].random() >= spec.rate:
            return False
        self._fired[kind] = self._fired.get(kind, 0) + 1
        return True

    def param(self, kind: ChurnKind, default: float = 0.0) -> float:
        """The magnitude configured for ``kind`` (policy-level)."""
        spec = self.policy.spec_for(kind)
        return spec.param if spec is not None else default

    def rng(self, kind: ChurnKind) -> random.Random:
        """The kind's stream, for magnitude draws beyond fire/param
        (which issuer, which hoster, shuffle orders, ...)."""
        return self._streams[kind]

    def counts(self) -> tuple[tuple[str, int], ...]:
        """Fired counts as a stable ``(kind, n)`` tuple for the ledger."""
        return tuple(
            sorted((kind.value, n) for kind, n in self._fired.items())
        )
