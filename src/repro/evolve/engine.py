"""The temporal evolution engine: one world, N epochs of churn.

:func:`evolve_ecosystem` advances a freshly generated world through
``config.epoch`` epochs of the named churn policy.  Each epoch makes
two deterministic passes:

1. **site pass** — every website, in rank order, compiles an
   :class:`~repro.evolve.plan.EpochPlan` for ``(seed, epoch, domain)``
   and applies whichever site-level mutations fire: shard
   consolidation, certificate rotation / SAN splits / SAN merges,
   credential re-keying, fleet migration, ORIGIN-frame flips;
2. **DNS pass** — every address entry, in sorted name order, applies
   the answer-pool mutations: reshuffles, salt re-keys, narrowing.

Because the passes run single-threaded at world-build time and every
decision draws from per-``(policy, kind, seed, epoch, domain)`` streams,
the evolved world is a pure function of its
:class:`~repro.web.ecosystem.EcosystemConfig` — which is exactly what
lets process-pool workers rebuild it independently and still produce
digest-identical studies (``tests/evolve/test_evolve_differential.py``).

Site root domains never change and no site is ever added or removed,
so every epoch of a longitudinal run crawls the *same* site list: the
per-epoch deltas the report shows are attributable to churn alone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.evolve.plan import EpochPlan, merge_churn
from repro.evolve.policy import ChurnKind, EvolutionPolicy, evolution_policy
from repro.web.resources import RequestMode, ResourceType
from repro.web.website import ShardingStyle, Website

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.web.ecosystem import Ecosystem

__all__ = ["advance_epoch", "evolve_ecosystem"]


def evolve_ecosystem(ecosystem: "Ecosystem") -> None:
    """Apply epochs ``1..config.epoch`` of the config's churn policy.

    Called by :meth:`Ecosystem.generate` as the last build step; the
    caller guarantees ``epoch > 0`` and a non-``"none"`` policy, so the
    pristine path never reaches this module at all.

    Alongside the churn-count ledger, every epoch records the set of
    *touched names* — site root domains whose measurable state the
    epoch mutated, plus any non-site (shared service) names it churned.
    That record is what lets the sharded study cache decide, per site
    shard, whether an epoch-N artefact is still valid at epoch N+1
    (:meth:`Ecosystem.evolution_token`).
    """
    policy = evolution_policy(ecosystem.config.evolution_policy)
    ledger = list(ecosystem.evolution_ledger)
    touched_log = list(ecosystem.evolution_touched)
    for epoch in range(1, ecosystem.config.epoch + 1):
        touched: set[str] = set()
        counts = advance_epoch(ecosystem, policy, epoch, touched=touched)
        ledger.append((epoch, tuple(sorted(counts.items()))))
        touched_log.append((epoch, tuple(sorted(touched))))
    ecosystem.evolution_ledger = tuple(ledger)
    ecosystem.evolution_touched = tuple(touched_log)


def advance_epoch(
    ecosystem: "Ecosystem",
    policy: EvolutionPolicy | str,
    epoch: int,
    *,
    touched: set[str] | None = None,
) -> dict[str, int]:
    """Apply one epoch of ``policy`` in place; returns the churn counts.

    When ``touched`` is given, every name the epoch mutated is added to
    it: site roots for site-pass churn, and — for DNS-pass churn — the
    owning site root when the churned entry belongs to a site (root or
    shard), or the raw name for shared (service) entries.  Recording is
    conservative: a plan that fired counts as touching its domain even
    when the mutation was a structural no-op.
    """
    if isinstance(policy, str):
        policy = evolution_policy(policy)
    totals: dict[str, int] = {}
    if policy.empty:
        return totals
    seed = ecosystem.config.seed
    # Owner map from the pre-pass world: shard domains normalise to
    # their site root.  Built before SHARD_DROP can remove shards.
    owners: dict[str, str] = {}
    for site in ecosystem.websites:
        owners[site.domain] = site.domain
        for shard in site.shard_domains():
            owners[shard] = site.domain
    for site in ecosystem.websites:
        plan = EpochPlan.compile(
            policy, seed=seed, epoch=epoch, domain=site.domain
        )
        _evolve_site(ecosystem, site, plan)
        counts = plan.counts()
        if counts and touched is not None:
            touched.add(site.domain)
        merge_churn(totals, counts)
    for name in ecosystem.namespace.names():
        plan = EpochPlan.compile(policy, seed=seed, epoch=epoch, domain=name)
        _evolve_dns_entry(ecosystem, name, plan)
        counts = plan.counts()
        if counts and touched is not None:
            touched.add(owners.get(name, name))
        merge_churn(totals, counts)
    return totals


# ----------------------------------------------------------------------
# Site pass
# ----------------------------------------------------------------------
def _evolve_site(ecosystem: "Ecosystem", site: Website, plan: EpochPlan) -> None:
    """Apply every site-level mutation that fires for ``site``.

    Order matters and is fixed: consolidation first (so certificate and
    hosting churn see the post-consolidation shape), then SAN edits,
    then hosting moves, then credential re-keys.  The domain list is
    computed once, after consolidation — nothing below changes it.
    """
    if plan.fires(ChurnKind.SHARD_DROP):
        _drop_shards(ecosystem, site)
    domains = [site.domain] + site.shard_domains()
    if plan.fires(ChurnKind.CERT_MERGE):
        _merge_certificates(ecosystem, site, domains)
    if plan.fires(ChurnKind.CERT_SPLIT):
        _split_certificates(ecosystem, site, domains)
    if plan.fires(ChurnKind.CERT_ROTATE):
        _rotate_certificates(ecosystem, domains)
    if plan.fires(ChurnKind.CDN_MIGRATE):
        _migrate_site(ecosystem, domains, plan)
    if plan.fires(ChurnKind.ORIGIN_FLIP):
        _flip_origin_frames(ecosystem, domains)
    if plan.fires(ChurnKind.H3_ROLLOUT):
        _rollout_h3(ecosystem, domains)
    _rekey_credentials(site, plan)


def _distinct_certificates(servers) -> list:
    """Distinct certificates across ``servers``, first-seen order."""
    seen: dict[str, object] = {}
    for server in servers:
        for certificate in list(server.cert_map.values()) + [
            server.default_certificate
        ]:
            seen.setdefault(certificate.fingerprint, certificate)
    return list(seen.values())


def _drop_shards(ecosystem: "Ecosystem", site: Website) -> None:
    """Fold every shard back into the root domain (decommissioning).

    Covers resource-less shards too: they exist in DNS even when no
    sampled resource landed on them, and must be deregistered alongside
    the rest.
    """
    shards = site.shard_domains()
    if not shards:
        return
    site.rewrite_domains({shard: site.domain for shard in shards})
    for shard in shards:
        ecosystem.namespace.remove(shard)
    site.shards = ()
    site.sharding = ShardingStyle.NONE


def _merge_certificates(
    ecosystem: "Ecosystem", site: Website, domains: list[str]
) -> None:
    """SEPARATE_CERTS -> one certificate covering every site domain."""
    if site.sharding is not ShardingStyle.SEPARATE_CERTS:
        return
    servers = ecosystem.fleet_for(domains)
    olds = _distinct_certificates(servers)
    if not olds:
        return
    merged = ecosystem.issuers.issue(olds[0].issuer_org, tuple(domains))
    ecosystem.swap_certificates(
        servers, {old.fingerprint: merged for old in olds}
    )
    site.sharding = ShardingStyle.SAME_CERT_SAME_IP


def _split_certificates(
    ecosystem: "Ecosystem", site: Website, domains: list[str]
) -> None:
    """SAME_CERT_SAME_IP -> per-name certificates (certbot-per-vhost)."""
    if site.sharding is not ShardingStyle.SAME_CERT_SAME_IP:
        return
    if len(domains) < 2:
        return
    servers = ecosystem.fleet_for(domains)
    olds = _distinct_certificates(servers)
    if not olds:
        return
    issuer = olds[0].issuer_org
    for server in servers:
        server.cert_map = {
            domain: ecosystem.issuers.issue(issuer, (domain,))
            for domain in domains
        }
        server.default_certificate = server.cert_map[domains[0]]
    site.sharding = ShardingStyle.SEPARATE_CERTS


def _rotate_certificates(ecosystem: "Ecosystem", domains: list[str]) -> None:
    """Reissue every certificate on the site's fleet (same SANs/issuer).

    Routine renewal: the SAN sets — all the classifier consults — stay
    identical, only serials (and hence fingerprints) move.  Reuse
    opportunities must therefore survive rotation, which the
    longitudinal tests assert.
    """
    servers = ecosystem.fleet_for(domains)
    mapping = {
        old.fingerprint: ecosystem.issuers.issue(old.issuer_org, old.sans)
        for old in _distinct_certificates(servers)
    }
    ecosystem.swap_certificates(servers, mapping)


def _migrate_site(
    ecosystem: "Ecosystem", domains: list[str], plan: EpochPlan
) -> None:
    """Redeploy the site's fleet onto a freshly allocated hosting pool."""
    hosters = ecosystem.providers.generic_hosters()
    if not hosters:
        return
    provider = plan.rng(ChurnKind.CDN_MIGRATE).choice(hosters)
    ecosystem.migrate_fleet(domains, provider)


def _flip_origin_frames(ecosystem: "Ecosystem", domains: list[str]) -> None:
    """Toggle ORIGIN-frame advertisement on the site's fleet."""
    servers = ecosystem.fleet_for(domains)
    if not servers:
        return
    advertise = not servers[0].origin_frame_origins
    ecosystem.set_origin_frames(servers, advertise)


def _rollout_h3(ecosystem: "Ecosystem", domains: list[str]) -> None:
    """Light up alt-svc h3 advertisement on the site's fleet.

    A one-way door, like real deployments: rollout only ever *adds*
    advertising endpoints, so it commutes with the generate-time
    adoption of :func:`repro.h3.plan.apply_h3_adoption`.  Browsers only
    measure the flag under an active ``h3_profile``; a pure h3 rollout
    is invisible to an ``h3_profile="none"`` study.
    """
    for server in ecosystem.fleet_for(domains):
        server.alt_svc_h3 = True


#: Resource types whose credential mode services re-key in practice;
#: fonts stay anonymous (browsers always fetch them so) and documents /
#: iframes are navigations.
_REKEYABLE = frozenset(
    (ResourceType.SCRIPT, ResourceType.XHR, ResourceType.BEACON,
     ResourceType.IMAGE, ResourceType.STYLESHEET)
)


def _rekey_credentials(site: Website, plan: EpochPlan) -> None:
    """Flip anonymous<->credentialed fetch modes across the page trees.

    One draw per re-keyable resource, in walk order: a service moving
    its beacon behind cookie auth (``CORS_ANON`` -> ``NO_CORS``) erases
    a CRED opportunity; one switching to anonymous telemetry creates
    one.
    """
    for document in site.all_documents():
        for resource in document.walk():
            if resource.rtype not in _REKEYABLE:
                continue
            if not plan.fires(ChurnKind.CRED_REKEY):
                continue
            if resource.mode is RequestMode.CORS_ANON:
                resource.mode = RequestMode.NO_CORS
            elif resource.mode is RequestMode.NO_CORS:
                resource.mode = RequestMode.CORS_ANON


# ----------------------------------------------------------------------
# DNS pass
# ----------------------------------------------------------------------
def _evolve_dns_entry(
    ecosystem: "Ecosystem", name: str, plan: EpochPlan
) -> None:
    """Apply the answer-pool mutations that fire for one entry."""
    from repro.dns.zone import AddressEntry

    entry = ecosystem.namespace.entry(name)
    if not isinstance(entry, AddressEntry):
        return
    pool = list(entry.pool)
    salt = ...  # ellipsis = "leave the salt alone" (repoint_dns contract)
    changed = False
    if plan.fires(ChurnKind.DNS_RESHUFFLE):
        plan.rng(ChurnKind.DNS_RESHUFFLE).shuffle(pool)
        changed = True
    if plan.fires(ChurnKind.DNS_RESALT):
        salt = f"{entry.salt or name}+e{plan.epoch}"
        changed = True
    if len(pool) > 1 and plan.fires(ChurnKind.DNS_NARROW):
        drop = max(1, int(plan.param(ChurnKind.DNS_NARROW, 1.0)))
        keep = max(1, len(pool) - drop)
        rng = plan.rng(ChurnKind.DNS_NARROW)
        pool = [pool[i] for i in sorted(rng.sample(range(len(pool)), keep))]
        changed = True
    if changed:
        ecosystem.repoint_dns(name, pool=tuple(pool), salt=salt)
