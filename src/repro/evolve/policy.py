"""Named ecosystem-churn policies.

The paper measures a single point in time, but everything its CERT /
IP / CRED attribution hangs on — certificate SAN sets, DNS answer
pools, credential modes, hosting providers — churns constantly on the
real web.  An :class:`EvolutionPolicy` names that churn: a set of
:class:`ChurnSpec` rates (one per :class:`ChurnKind`) which the engine
(:mod:`repro.evolve.engine`) applies to the synthetic world once per
*epoch*, exactly the way a :class:`~repro.faults.FaultProfile` names
per-event failure rates.

Policies are registered by name so they travel through ``StudyConfig``,
the sweep grid and the study cache as plain strings:

>>> from repro.evolve.policy import evolution_policy, policy_names
>>> policy_names()
['cdn-migration', 'cert-rotation', 'dns-churn', 'h3-rollout', 'mixed', 'none', 'shard-consolidation']
>>> evolution_policy("cert-rotation").empty
False
>>> evolution_policy("none").empty
True
>>> evolution_policy("nope")
Traceback (most recent call last):
    ...
ValueError: unknown evolution policy 'nope'; registered policies: \
['cdn-migration', 'cert-rotation', 'dns-churn', 'h3-rollout', 'mixed', 'none', \
'shard-consolidation']
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "ChurnKind",
    "ChurnSpec",
    "EvolutionPolicy",
    "POLICIES",
    "evolution_policy",
    "policy_names",
]


class ChurnKind(enum.Enum):
    """Every ecosystem mutation the engine knows how to apply, by axis."""

    # Certificates (SAN-set edits on the site's servers)
    CERT_ROTATE = "cert-rotate"
    CERT_SPLIT = "cert-split"
    CERT_MERGE = "cert-merge"
    # Credentials (request-mode re-keying in the site's page trees)
    CRED_REKEY = "cred-rekey"
    # DNS (answer-pool edits on address entries)
    DNS_RESHUFFLE = "dns-reshuffle"
    DNS_RESALT = "dns-resalt"
    DNS_NARROW = "dns-narrow"
    # Hosting (fleet moves and ORIGIN-frame advertisement)
    CDN_MIGRATE = "cdn-migrate"
    ORIGIN_FLIP = "origin-flip"
    # Sharding (page-structure consolidation)
    SHARD_DROP = "shard-drop"
    # HTTP/3 (alt-svc advertisement lights up on the site's fleet;
    # measured only by browsers under an active h3_profile — see
    # repro.h3 — so a pure h3 rollout is digest-invisible to studies
    # still running with h3_profile="none", like the paper's)
    H3_ROLLOUT = "h3-rollout"


#: Kinds the engine decides once per *website*.
SITE_KINDS = frozenset(
    (ChurnKind.CERT_ROTATE, ChurnKind.CERT_SPLIT, ChurnKind.CERT_MERGE,
     ChurnKind.CRED_REKEY, ChurnKind.CDN_MIGRATE, ChurnKind.ORIGIN_FLIP,
     ChurnKind.SHARD_DROP, ChurnKind.H3_ROLLOUT)
)

#: Kinds the engine decides once per *DNS address entry*.
DNS_KINDS = frozenset(
    (ChurnKind.DNS_RESHUFFLE, ChurnKind.DNS_RESALT, ChurnKind.DNS_NARROW)
)


@dataclass(frozen=True)
class ChurnSpec:
    """One mutation's per-epoch firing probability plus a magnitude.

    ``rate`` is the per-unit (site or DNS entry) probability that the
    mutation applies in a given epoch; ``param`` is kind-specific
    (addresses dropped by a narrow, ...) and ignored by kinds that need
    no magnitude.
    """

    kind: ChurnKind
    rate: float
    param: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"churn rate must be in [0, 1], got {self.rate}")


@dataclass(frozen=True)
class EvolutionPolicy:
    """A named, immutable set of churn specs (one evolution scenario)."""

    name: str
    description: str
    specs: tuple[ChurnSpec, ...] = ()

    def __post_init__(self) -> None:
        kinds = [spec.kind for spec in self.specs]
        if len(set(kinds)) != len(kinds):
            raise ValueError(f"duplicate churn kinds in policy {self.name!r}")
        object.__setattr__(
            self, "_spec_index", {spec.kind: spec for spec in self.specs}
        )

    @property
    def empty(self) -> bool:
        return not self.specs

    @property
    def kinds(self) -> frozenset[ChurnKind]:
        return frozenset(spec.kind for spec in self.specs)

    def spec_for(self, kind: ChurnKind) -> ChurnSpec | None:
        return self._spec_index.get(kind)


def _half(specs: tuple[ChurnSpec, ...]) -> tuple[ChurnSpec, ...]:
    """The same specs at half rate (for the combined ``mixed`` policy)."""
    return tuple(
        ChurnSpec(kind=spec.kind, rate=spec.rate / 2.0, param=spec.param)
        for spec in specs
    )


_CERT_ROTATION = (
    # Routine renewal dominates; SAN-set restructuring is rarer but is
    # what actually moves the CERT cause.
    ChurnSpec(ChurnKind.CERT_ROTATE, rate=0.35),
    ChurnSpec(ChurnKind.CERT_SPLIT, rate=0.06),
    ChurnSpec(ChurnKind.CERT_MERGE, rate=0.10),
    ChurnSpec(ChurnKind.CRED_REKEY, rate=0.08),
)

_DNS_CHURN = (
    ChurnSpec(ChurnKind.DNS_RESHUFFLE, rate=0.30),
    ChurnSpec(ChurnKind.DNS_RESALT, rate=0.15),
    ChurnSpec(ChurnKind.DNS_NARROW, rate=0.06, param=1.0),
)

_CDN_MIGRATION = (
    ChurnSpec(ChurnKind.CDN_MIGRATE, rate=0.12),
    ChurnSpec(ChurnKind.ORIGIN_FLIP, rate=0.10),
    ChurnSpec(ChurnKind.DNS_RESHUFFLE, rate=0.10),
)

_SHARD_CONSOLIDATION = (
    ChurnSpec(ChurnKind.SHARD_DROP, rate=0.18),
    ChurnSpec(ChurnKind.CERT_MERGE, rate=0.10),
)

#: The named policy registry.  ``"none"`` is the inert default: every
#: study runs against the pristine epoch-0 world unless churn is
#: explicitly requested.
POLICIES: dict[str, EvolutionPolicy] = {
    policy.name: policy
    for policy in (
        EvolutionPolicy("none", "no churn (the frozen-world baseline)"),
        EvolutionPolicy(
            "cert-rotation",
            "certificates renew, SAN sets split and merge, services "
            "re-key their credential modes",
            _CERT_ROTATION,
        ),
        EvolutionPolicy(
            "dns-churn",
            "answer pools reshuffle, rotation salts re-key, pools narrow",
            _DNS_CHURN,
        ),
        EvolutionPolicy(
            "cdn-migration",
            "sites move to new hosting fleets; ORIGIN-frame advertisement "
            "flips; answers churn in the wake",
            _CDN_MIGRATION,
        ),
        EvolutionPolicy(
            "shard-consolidation",
            "sharded sites fold their shards back into the root domain "
            "(reuse opportunities decay)",
            _SHARD_CONSOLIDATION,
        ),
        EvolutionPolicy(
            "h3-rollout",
            "site fleets light up alt-svc h3 advertisement epoch over "
            "epoch (pairs with the h3_profile study axis; deliberately "
            "absent from 'mixed' so the longitudinal golden stays h2)",
            (ChurnSpec(ChurnKind.H3_ROLLOUT, rate=0.15),),
        ),
        EvolutionPolicy(
            "mixed",
            "every churn axis at half rate (the canonical "
            "longitudinal-golden scenario)",
            # One spec per kind: the overlap kinds (DNS_RESHUFFLE,
            # CERT_MERGE) take their primary policy's rate.
            _half(_CERT_ROTATION) + _half(_DNS_CHURN)
            + _half(_CDN_MIGRATION[:2]) + _half(_SHARD_CONSOLIDATION[:1]),
        ),
    )
}


def policy_names() -> list[str]:
    """Registered policy names, for CLI help and validation messages."""
    return sorted(POLICIES)


def evolution_policy(name: str) -> EvolutionPolicy:
    """Look up a registered policy; raises ``ValueError`` on unknowns."""
    policy = POLICIES.get(name)
    if policy is None:
        raise ValueError(
            f"unknown evolution policy {name!r}; registered policies: "
            f"{policy_names()}"
        )
    return policy
