"""Deterministic temporal evolution of the synthetic ecosystem.

The paper measures a single point in time; this package adds the time
axis.  A named :class:`EvolutionPolicy` (``cert-rotation``,
``dns-churn``, ``cdn-migration``, ``shard-consolidation``, ``mixed``)
describes per-epoch churn rates; the engine applies them through the
:class:`~repro.web.ecosystem.Ecosystem` mutation hooks, one
:class:`EpochPlan` per ``(seed, epoch, domain)`` — the same RNG
discipline :mod:`repro.faults` uses per ``(seed, run, domain)`` — so an
evolved world is a pure, executor-independent function of its config.

>>> from repro.evolve import EpochPlan, evolution_policy
>>> evolution_policy("shard-consolidation").empty
False
>>> EpochPlan.compile("none", seed=7, epoch=2, domain="a.com") is None
True

:func:`run_longitudinal` measures the same study at every epoch and
feeds :mod:`repro.analysis.longitudinal` (the ``repro evolve`` CLI).
"""

from repro.evolve.engine import advance_epoch, evolve_ecosystem
from repro.evolve.plan import EpochPlan, merge_churn
from repro.evolve.policy import (
    POLICIES,
    ChurnKind,
    ChurnSpec,
    EvolutionPolicy,
    evolution_policy,
    policy_names,
)
from repro.evolve.runner import run_longitudinal

__all__ = [
    "POLICIES",
    "ChurnKind",
    "ChurnSpec",
    "EpochPlan",
    "EvolutionPolicy",
    "advance_epoch",
    "evolution_policy",
    "evolve_ecosystem",
    "merge_churn",
    "policy_names",
    "run_longitudinal",
]
