"""Executing a longitudinal run: the same study at every epoch.

:func:`run_longitudinal` measures one scenario across simulated time:
epoch 0 is the pristine world (byte-identical to a study that never
heard of evolution — the pinned clean golden proves it), and each
subsequent epoch re-runs the *identical* study configuration against
the world advanced one more churn step.  Every epoch's full study is
immediately reduced to an :class:`~repro.analysis.longitudinal.EpochSnapshot`
so a long horizon stays memory-bounded, exactly like sweep cells.

One executor is shared across all epochs, and the content-addressed
cache works per epoch: ``epochs`` and ``evolution_policy`` sit on
:class:`~repro.web.ecosystem.EcosystemConfig`, which every crawl and
classification stage key hashes, so warm re-runs of a longitudinal
study load every epoch from disk.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable

from repro.evolve.policy import evolution_policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.longitudinal import LongitudinalResult
    from repro.analysis.study import StudyConfig
    from repro.runtime import Executor
    from repro.store import StudyCache

__all__ = ["run_longitudinal"]


def run_longitudinal(
    config: "StudyConfig",
    *,
    policy: str,
    epochs: int,
    executor: "Executor | None" = None,
    cache: "StudyCache | None" = None,
    progress: Callable[[str], None] | None = None,
    resume: bool = False,
    strict: bool = False,
) -> "LongitudinalResult":
    """Run ``config`` at every epoch ``0..epochs`` under ``policy``.

    ``config``'s own ``epochs``/``evolution_policy`` fields are
    overridden — the scenario is exactly the epoch axis this function
    sweeps.  Returns the snapshot sequence for
    :func:`~repro.analysis.longitudinal.longitudinal_report`.

    ``resume``/``strict`` thread through to each epoch's
    :meth:`Study.run`; every epoch journals under its own run id
    (``epochs`` is a config field), so an interrupted horizon resumes
    mid-epoch and replays earlier epochs from cache.
    """
    # Imported here, not at module scope: the analysis layer imports
    # repro.evolve.policy for validation, so a module-level import back
    # into repro.analysis would be circular.
    from repro.analysis.longitudinal import (
        LongitudinalResult,
        longitudinal_report,
        snapshot_study,
    )
    from repro.analysis.study import Study

    evolution_policy(policy)  # fail fast on unknown names
    if epochs < 0:
        raise ValueError(f"epochs must be >= 0, got {epochs}")
    base = replace(config, evolution_policy=policy, epochs=0)
    base.validate()
    owns_executor = executor is None
    executor = executor if executor is not None else base.make_executor()
    snapshots = []
    try:
        for epoch in range(epochs + 1):
            before = cache.total_stats() if cache is not None else None
            study = Study.run(
                replace(base, epochs=epoch), executor=executor, cache=cache,
                resume=resume, strict=strict,
            )
            snapshot = snapshot_study(epoch, study)
            snapshots.append(snapshot)
            if progress is not None:
                line = (
                    f"[epoch {epoch}/{epochs}] policy={policy}  "
                    f"digest={snapshot.digest[:12]}"
                )
                if before is not None:
                    # Per-shard cache keys make this the incremental-
                    # recompute ledger: hits are shards (and classified
                    # datasets) the evolution left untouched.
                    after = cache.total_stats()
                    line += (
                        f"  cache: {after.hits - before.hits} reused / "
                        f"{after.misses - before.misses} recomputed"
                    )
                progress(line)
    finally:
        if owns_executor:
            executor.close()
    return longitudinal_report(
        LongitudinalResult(
            policy=policy, config=base, snapshots=tuple(snapshots)
        )
    )
