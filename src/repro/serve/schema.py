"""Schema-versioned request bodies for the study service.

Every request body carries an explicit ``{"schema": 1, ...}`` version;
a body the server cannot speak is rejected up front rather than half
interpreted.  Validation is field by field and *exhaustive*: a bad
request reports **every** offending field in one 400, not just the
first, so a client fixes its payload in one round trip.

The request vocabulary is deliberately a subset of
:class:`~repro.analysis.study.StudyConfig`: the execution substrate
(``executor``/``parallelism``) and the raw ``ecosystem_overrides``
escape hatch are *server-owned* — set by the operator's ``repro
serve`` flags — so a request can never change how much hardware it
gets, and an HTTP config always hashes to the same cache keys, run id
and digest as the equivalent ``repro study`` invocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.analysis.study import StudyConfig
from repro.sweep.spec import SweepSpec

__all__ = [
    "SCHEMA_VERSION",
    "SchemaError",
    "StudyRequest",
    "SweepRequest",
    "parse_study_request",
    "parse_sweep_request",
]

#: The request-body schema this server speaks.  Bump on incompatible
#: vocabulary changes; old clients then get a typed 400, never a
#: silently reinterpreted request.
SCHEMA_VERSION = 1


class SchemaError(ValueError):
    """A request body failed validation.

    ``errors`` lists every offending field as ``{"field", "message"}``
    dicts, ready to serialise into the 400 response body.
    """

    def __init__(self, errors: list[dict]) -> None:
        self.errors = errors
        summary = "; ".join(
            f"{error['field']}: {error['message']}" for error in errors
        )
        super().__init__(f"invalid request: {summary}")


@dataclass(frozen=True)
class StudyRequest:
    """One validated ``POST /v1/study`` body."""

    config: StudyConfig
    resume: bool = False


@dataclass(frozen=True)
class SweepRequest:
    """One validated ``POST /v1/sweep`` body."""

    spec: SweepSpec
    resume: bool = False


# ----------------------------------------------------------------------
# Field validators: each returns the coerced value or raises ValueError
# with a client-facing message.

def _int(value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"expected an integer, got {type(value).__name__}")
    return value


def _float(value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"expected a number, got {type(value).__name__}")
    return float(value)


def _str(value: Any) -> str:
    if not isinstance(value, str):
        raise ValueError(f"expected a string, got {type(value).__name__}")
    return value


def _bool(value: Any) -> bool:
    if not isinstance(value, bool):
        raise ValueError(f"expected a boolean, got {type(value).__name__}")
    return value


def _str_tuple(value: Any) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise ValueError(
            f"expected a list of strings, got {type(value).__name__}"
        )
    return tuple(value)


#: Request-settable StudyConfig fields and their validators.
_STUDY_FIELDS: dict[str, Callable[[Any], Any]] = {
    "seed": _int,
    "n_sites": _int,
    "alexa_share": _float,
    "ha_sample_share": _float,
    "dns_study_days": _float,
    "har_models": _str_tuple,
    "alexa_variants": _str_tuple,
    "fault_profile": _str,
    "epochs": _int,
    "evolution_policy": _str,
    "h3_profile": _str,
    "shards": _int,
}

#: StudyConfig fields a request may NOT set (see module docstring).
_SERVER_OWNED = ("executor", "parallelism", "ecosystem_overrides")

#: Fields sweepable via a request's ``axes`` — the study fields again;
#: the substrate axes the CLI grid allows stay server-owned over HTTP.
_AXIS_FIELDS = dict(_STUDY_FIELDS)


def _check_schema(body: dict, errors: list[dict]) -> None:
    version = body.get("schema")
    if version is None:
        errors.append({
            "field": "schema",
            "message": f"missing; this server speaks schema {SCHEMA_VERSION}",
        })
    elif version != SCHEMA_VERSION:
        errors.append({
            "field": "schema",
            "message": f"unsupported version {version!r}; this server "
                       f"speaks schema {SCHEMA_VERSION}",
        })


def _study_kwargs(
    fields: dict, errors: list[dict], *, prefix: str = ""
) -> dict:
    """Validate study-config fields, appending every error found."""
    kwargs: dict = {}
    for name, value in sorted(fields.items(), key=lambda item: item[0]):
        label = f"{prefix}{name}"
        if name in _SERVER_OWNED:
            errors.append({
                "field": label,
                "message": "server-owned; set via repro serve flags, "
                           "never per request",
            })
            continue
        validator = _STUDY_FIELDS.get(name)
        if validator is None:
            errors.append({
                "field": label,
                "message": f"unknown field; settable fields: "
                           f"{sorted(_STUDY_FIELDS)}",
            })
            continue
        try:
            kwargs[name] = validator(value)
        except ValueError as error:
            errors.append({"field": label, "message": str(error)})
    return kwargs


def parse_study_request(body: Any) -> StudyRequest:
    """Validate one ``POST /v1/study`` body into a :class:`StudyRequest`.

    Raises :class:`SchemaError` listing every bad field; a body that
    passes produces a :class:`StudyConfig` that has already survived
    :meth:`StudyConfig.validate`.
    """
    if not isinstance(body, dict):
        raise SchemaError([{
            "field": "(body)",
            "message": f"expected a JSON object, got {type(body).__name__}",
        }])
    errors: list[dict] = []
    _check_schema(body, errors)
    fields = {
        name: value for name, value in body.items()
        if name not in ("schema", "resume")
    }
    resume = False
    if "resume" in body:
        try:
            resume = _bool(body["resume"])
        except ValueError as error:
            errors.append({"field": "resume", "message": str(error)})
    kwargs = _study_kwargs(fields, errors)
    if errors:
        raise SchemaError(errors)
    config = StudyConfig(**kwargs)
    try:
        config.validate()
    except ValueError as error:
        raise SchemaError([{"field": "(config)", "message": str(error)}])
    return StudyRequest(config=config, resume=resume)


def parse_sweep_request(body: Any) -> SweepRequest:
    """Validate one ``POST /v1/sweep`` body into a :class:`SweepRequest`.

    The body carries ``base`` (study fields), ``seeds`` (a non-empty
    integer list) and ``axes`` (``{"field": [value, ...], ...}``); the
    expanded grid is validated cell by cell before anything runs.
    """
    if not isinstance(body, dict):
        raise SchemaError([{
            "field": "(body)",
            "message": f"expected a JSON object, got {type(body).__name__}",
        }])
    errors: list[dict] = []
    _check_schema(body, errors)
    unknown = set(body) - {"schema", "base", "seeds", "axes", "resume"}
    for name in sorted(unknown):
        errors.append({
            "field": name,
            "message": "unknown field; a sweep body carries schema, "
                       "base, seeds, axes and resume",
        })
    resume = False
    if "resume" in body:
        try:
            resume = _bool(body["resume"])
        except ValueError as error:
            errors.append({"field": "resume", "message": str(error)})

    base_kwargs: dict = {}
    base = body.get("base", {})
    if not isinstance(base, dict):
        errors.append({
            "field": "base",
            "message": f"expected a JSON object of study fields, got "
                       f"{type(base).__name__}",
        })
    else:
        base_kwargs = _study_kwargs(base, errors, prefix="base.")

    seeds: tuple[int, ...] = ()
    raw_seeds = body.get("seeds", [base_kwargs.get("seed", 7)])
    if not isinstance(raw_seeds, list) or not raw_seeds or not all(
        isinstance(seed, int) and not isinstance(seed, bool)
        for seed in raw_seeds
    ):
        errors.append({
            "field": "seeds",
            "message": "expected a non-empty list of integers",
        })
    else:
        seeds = tuple(raw_seeds)

    axes: list[tuple[str, tuple]] = []
    raw_axes = body.get("axes", {})
    if not isinstance(raw_axes, dict):
        errors.append({
            "field": "axes",
            "message": f"expected a JSON object mapping fields to value "
                       f"lists, got {type(raw_axes).__name__}",
        })
        raw_axes = {}
    for name, values in sorted(raw_axes.items(), key=lambda item: item[0]):
        label = f"axes.{name}"
        validator = _AXIS_FIELDS.get(name)
        if validator is None:
            message = (
                "server-owned; set via repro serve flags, never per request"
                if name in _SERVER_OWNED else
                f"not sweepable over HTTP; choose from {sorted(_AXIS_FIELDS)}"
            )
            errors.append({"field": label, "message": message})
            continue
        if not isinstance(values, list) or not values:
            errors.append({
                "field": label,
                "message": "expected a non-empty list of values",
            })
            continue
        try:
            axes.append((name, tuple(validator(value) for value in values)))
        except ValueError as error:
            errors.append({"field": label, "message": str(error)})
    if errors:
        raise SchemaError(errors)
    try:
        spec = SweepSpec(
            base=StudyConfig(**base_kwargs), seeds=seeds, axes=tuple(axes)
        )
        spec.cells()  # validates every expanded cell config eagerly
    except ValueError as error:
        raise SchemaError([{"field": "(spec)", "message": str(error)}])
    return SweepRequest(spec=spec, resume=resume)
