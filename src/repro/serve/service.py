"""The per-process study service behind the HTTP front end.

One :class:`StudyService` owns what every request shares: the
content-addressed :class:`~repro.store.StudyCache`, one pool executor
(admission-controlled, never rebuilt per request), the per-run-id
journal locks, and the drain flag a shutting-down server raises.

Progress streaming piggybacks on instrumentation the pipeline already
has: the :class:`~repro.runtime.StageTimings` observer fires at every
stage boundary (``stage_start``) and the run journal's observer fires
after every durable append — ``shard-skip`` records become
``shard_done result=reused`` events, ``shard-finish`` records become
``shard_done result=recomputed``.  Both observers double as drain
checkpoints: once :meth:`StudyService.drain` is called, the next
checkpoint of every inflight request raises :class:`ServeShutdown`,
which unwinds *after* the journal's fsynced append — so an interrupted
run is exactly as resumable as a Ctrl-C'd CLI run.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict
from typing import Callable

from repro.analysis.digest import study_digest
from repro.analysis.study import Study, StudyConfig
from repro.runlog import RunContext
from repro.runlog.inspect import list_runs, render_run_detail
from repro.runlog.journal import run_id
from repro.runtime import StageTimings, make_executor
from repro.serve.schema import SCHEMA_VERSION, StudyRequest, SweepRequest
from repro.store import StudyCache
from repro.sweep.runner import summarize_cell
from repro.sweep.spec import SweepCell

__all__ = ["ServeShutdown", "StudyService"]

#: Stages whose item counts decide the ``"cached"`` flag: a response is
#: cache-served when every one of these that ran recorded zero pending
#: items.  ``generate-ecosystem`` is deliberately excluded — the world
#: memoises in process memory, not in the study cache, so a fresh
#: process's first warm-cache request still counts as cached.
_MEASURED_STAGES = frozenset({
    "crawl-httparchive",
    "crawl-alexa-fetch",
    "crawl-alexa-nofetch",
    "classify-datasets",
})

#: An event callback: ``emit(event_name, payload_dict)``.
Emit = Callable[[str, dict], None]


class ServeShutdown(Exception):
    """Raised inside an inflight request when the service is draining.

    Deliberately *not* a subclass of any pipeline error: the retry
    layer classifies unknown exceptions as fatal and re-raises them
    after journalling, which is exactly the unwind a drain wants.
    """


def _jsonable(value):
    """Dataclass/tuple-free copy of ``value`` for json.dumps."""
    if hasattr(value, "__dataclass_fields__"):
        return _jsonable(asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


class StudyService:
    """Shared state and request execution for ``repro serve``."""

    def __init__(
        self,
        cache_dir: str,
        *,
        executor: str = "thread",
        jobs: int | None = None,
        max_inflight: int = 4,
        task_timeout: float | None = None,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        self.cache = StudyCache(cache_dir)
        self.executor = make_executor(
            executor, jobs, task_timeout=task_timeout
        )
        self.max_inflight = max_inflight
        self._admission = threading.BoundedSemaphore(max_inflight)
        # thread-safe: _inflight/_failures/_run_locks only mutate under
        # _state_lock; _draining is a threading.Event (atomic).
        self._state_lock = threading.Lock()
        self._inflight = 0
        self._failures: dict[str, int] = {}
        self._run_locks: dict[str, threading.Lock] = {}
        self._draining = threading.Event()
        self._idle = threading.Condition(self._state_lock)

    # ------------------------------------------------------------------
    # Admission control and lifecycle.

    def admit(self) -> bool:
        """Try to admit one request; ``False`` means 429 (or draining)."""
        if self._draining.is_set():
            return False
        if not self._admission.acquire(blocking=False):
            return False
        with self._state_lock:
            self._inflight += 1
        return True

    def release(self) -> None:
        """Return one admitted request's slot."""
        with self._state_lock:
            self._inflight -= 1
            self._idle.notify_all()
        self._admission.release()

    @property
    def inflight(self) -> int:
        with self._state_lock:
            return self._inflight

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self) -> None:
        """Stop admitting; abort inflight runs at their next checkpoint."""
        self._draining.set()

    def wait_idle(self, timeout: float) -> bool:
        """Block until no request is inflight; ``False`` on timeout."""
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def close(self) -> None:
        """Release the shared executor (idempotent)."""
        self.executor.close()

    def record_failure(self, kind: str) -> None:
        """Count one failed request for ``healthz`` reporting."""
        with self._state_lock:
            self._failures[kind] = self._failures.get(kind, 0) + 1

    def _run_lock(self, run: str) -> threading.Lock:
        """The journal lock of one run id.

        Two concurrent requests for the *same* configuration share one
        run id, hence one journal file; without this lock both would
        open it for writing and corrupt each other's records.  The
        second request waits, then finds every shard warm in the cache.
        """
        with self._state_lock:
            return self._run_locks.setdefault(run, threading.Lock())

    def _checkpoint(self) -> None:
        if self._draining.is_set():
            raise ServeShutdown("service is draining; run journalled")

    # ------------------------------------------------------------------
    # Request execution.

    def _execute_study(
        self,
        config: StudyConfig,
        *,
        resume: bool,
        emit: Emit | None,
        cell: str | None = None,
    ) -> tuple[Study, StageTimings, str]:
        """One study through the shared executor, streaming progress.

        Returns ``(study, timings, run_id)``; the caller shapes the
        response payload.  ``cell`` labels events of a sweep cell.
        """

        def tag(payload: dict) -> dict:
            if cell is not None:
                payload["cell"] = cell
            return payload

        def on_stage(name: str, items: int | None) -> None:
            self._checkpoint()
            if emit is not None:
                emit("stage_start", tag({"stage": name, "items": items}))

        def on_record(record: dict) -> None:
            self._checkpoint()
            if emit is None:
                return
            event = record.get("event")
            if event == "shard-skip":
                emit("shard_done", tag({
                    "stage": record.get("stage"),
                    "key": record.get("artifact"),
                    "result": "reused",
                    "reason": record.get("reason"),
                }))
            elif event == "shard-finish":
                emit("shard_done", tag({
                    "stage": record.get("stage"),
                    "key": record.get("artifact"),
                    "result": "recomputed",
                }))

        run = run_id(config)
        timings = StageTimings(observer=on_stage)
        with self._run_lock(run):
            runlog = RunContext.for_study(
                config, self.cache, resume=resume, observer=on_record
            )
            try:
                study = Study.run(
                    config, executor=self.executor, timings=timings,
                    cache=self.cache, runlog=runlog,
                )
                study.coverage = runlog.finish()
            finally:
                # No run-finish record on failure: the journal stays
                # resumable, which is what the 503's hint promises.
                runlog.close()
        return study, timings, run

    @staticmethod
    def _is_cached(timings: StageTimings) -> bool:
        measured = [
            stage for stage in timings.stages
            if stage.name in _MEASURED_STAGES
        ]
        return bool(measured) and all(
            stage.items == 0 for stage in measured
        )

    def run_study(self, request: StudyRequest, emit: Emit | None = None) -> dict:
        """Execute one study request; returns the response payload.

        With ``emit``, streams ``stage_start``/``shard_done`` events
        while running and a ``coverage`` event before returning; the
        payload itself becomes the terminal ``result`` event.
        """
        study, timings, run = self._execute_study(
            request.config, resume=request.resume, emit=emit
        )
        cell = SweepCell(config=request.config)
        summary = summarize_cell(cell, study, timings)
        coverage = _jsonable(study.coverage)
        if emit is not None:
            emit("coverage", dict(coverage))
        return {
            "schema": SCHEMA_VERSION,
            "kind": "study",
            "run": run,
            "digest": summary.digest,
            "cached": self._is_cached(timings),
            "coverage": coverage,
            "headline": _jsonable(summary.headline),
            "datasets": _jsonable(summary.datasets),
            "stages": [
                {"name": stage.name, "seconds": stage.seconds,
                 "items": stage.items}
                for stage in timings.stages
            ],
        }

    def run_sweep(self, request: SweepRequest, emit: Emit | None = None) -> dict:
        """Execute one sweep request cell by cell, streaming progress."""
        cells = request.spec.cells()
        results = []
        all_cached = bool(cells)
        for cell in cells:
            study, timings, run = self._execute_study(
                cell.config, resume=request.resume, emit=emit,
                cell=cell.label(),
            )
            summary = summarize_cell(cell, study, timings)
            cached = self._is_cached(timings)
            all_cached = all_cached and cached
            results.append({
                "cell": cell.label(),
                "variant": cell.variant_label(),
                "seed": cell.seed,
                "run": run,
                "digest": summary.digest,
                "cached": cached,
                "coverage": _jsonable(summary.coverage),
                "headline": _jsonable(summary.headline),
                "datasets": _jsonable(summary.datasets),
            })
        payload = {
            "schema": SCHEMA_VERSION,
            "kind": "sweep",
            "n_cells": len(results),
            "cached": all_cached,
            "cells": results,
        }
        if emit is not None:
            emit("coverage", {
                "cells_total": len(results),
                "cells_partial": sum(
                    1 for result in results
                    if result["coverage"] is not None
                    and result["coverage"]["shards_quarantined"] > 0
                ),
            })
        return payload

    # ------------------------------------------------------------------
    # Introspection endpoints.

    def healthz(self) -> dict:
        """The ``GET /v1/healthz`` payload."""
        with self._state_lock:
            inflight = self._inflight
            failures = dict(sorted(self._failures.items()))
        return {
            "schema": SCHEMA_VERSION,
            "status": "draining" if self.draining else "ok",
            "inflight": inflight,
            "max_inflight": self.max_inflight,
            "executor": self.executor.name,
            "failures": failures,
            "cache": self.cache.stats_snapshot(),
            "runs": len(list_runs(self.cache.directory)),
        }

    def runs_payload(self) -> dict:
        """The ``GET /v1/runs`` payload: every readable journal."""
        return {
            "schema": SCHEMA_VERSION,
            "runs": [
                {
                    "run": status.run,
                    "status": status.status,
                    "records": status.records,
                    "shards_finished": status.shards_finished,
                    "shards_quarantined": status.shards_quarantined,
                    "seed": status.seed,
                    "n_sites": status.n_sites,
                    "fault_profile": status.fault_profile,
                }
                for status in list_runs(self.cache.directory)
            ],
        }

    def run_detail_payload(self, prefix: str) -> dict | None:
        """The ``GET /v1/runs/<prefix>`` payload, or ``None`` if no
        unique journal matches."""
        detail = render_run_detail(self.cache.directory, prefix)
        if detail is None:
            return None
        matches = [
            status for status in list_runs(self.cache.directory)
            if status.run.startswith(prefix)
        ]
        status = matches[0]
        return {
            "schema": SCHEMA_VERSION,
            "run": status.run,
            "status": status.status,
            "records": status.records,
            "shards_finished": status.shards_finished,
            "shards_quarantined": status.shards_quarantined,
            "detail": detail,
        }
