"""The streaming study service (``repro serve``).

A stdlib-only JSON/SSE front end over the existing pipeline: the
sweep engine, the content-addressed :class:`~repro.store.StudyCache`
and the crash-safe run journals are all request-shaped already — this
package serves them to concurrent HTTP clients through one shared
executor, with admission control, per-run journal locking and a
graceful drain on shutdown.

Layers:

* :mod:`repro.serve.schema` — schema-versioned request bodies,
  validated field by field with every bad field reported;
* :mod:`repro.serve.service` — one :class:`StudyService` per process:
  shared executor + cache, admission semaphore, per-run-id locks,
  progress events, the drain flag;
* :mod:`repro.serve.http` — the ``http.server`` threading front end:
  JSON responses, ``text/event-stream`` streaming, typed error codes.
"""

from repro.serve.http import StudyHTTPServer, make_server
from repro.serve.schema import (
    SCHEMA_VERSION,
    SchemaError,
    parse_study_request,
    parse_sweep_request,
)
from repro.serve.service import ServeShutdown, StudyService

__all__ = [
    "SCHEMA_VERSION",
    "SchemaError",
    "ServeShutdown",
    "StudyHTTPServer",
    "StudyService",
    "make_server",
    "parse_study_request",
    "parse_sweep_request",
]
