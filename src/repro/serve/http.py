"""The stdlib HTTP front end of the study service.

Built on :class:`http.server.ThreadingHTTPServer` — one daemon thread
per connection, no third-party dependencies.  Endpoints:

* ``POST /v1/study``   — run (or cache-serve) one study;
* ``POST /v1/sweep``   — run a scenario grid, cell by cell;
* ``GET  /v1/runs``    — list the run journals under the cache;
* ``GET  /v1/runs/<p>``— one journal's per-shard detail (unique prefix);
* ``GET  /v1/healthz`` — liveness, inflight counts, cache statistics.

Responses are JSON by default; a ``POST`` carrying ``Accept:
text/event-stream`` streams Server-Sent Events instead — ``stage_start``
and ``shard_done`` while the pipeline runs, ``coverage`` once accounting
is final, then a terminal ``result`` (the same payload the JSON path
returns) or ``error``.  Every error, including a mid-stream drain, is a
typed event or status code — a client never sees a bare dropped socket.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.schema import (
    SCHEMA_VERSION,
    SchemaError,
    parse_study_request,
    parse_sweep_request,
)
from repro.serve.service import ServeShutdown, StudyService

__all__ = ["StudyHTTPServer", "make_server"]

#: Largest accepted request body; study/sweep configs are tiny, so
#: anything bigger is a client bug (or abuse), answered with 413.
_MAX_BODY_BYTES = 1 << 20

#: The hint every drain response carries: how to finish the
#: interrupted run once the server is back.
_RESUME_HINT = (
    "re-send the request with \"resume\": true (or run repro study "
    "--resume --cache-dir <dir>) to pick up where this run left off"
)


class StudyHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`StudyService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: StudyService,
                 request_timeout: float | None = None) -> None:
        self.service = service
        self.request_timeout = request_timeout
        super().__init__(address, _Handler)


def make_server(service: StudyService, *, host: str = "127.0.0.1",
                port: int = 0,
                request_timeout: float | None = None) -> StudyHTTPServer:
    """Bind a server for ``service`` (``port=0`` picks a free port)."""
    return StudyHTTPServer((host, port), service,
                           request_timeout=request_timeout)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"

    def setup(self) -> None:  # per-connection socket timeout
        self.timeout = self.server.request_timeout
        super().setup()

    # ------------------------------------------------------------------
    # Response helpers.

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _start_stream(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()

    def _send_event(self, event: str, payload: dict) -> None:
        data = json.dumps(payload, sort_keys=True)
        self.wfile.write(f"event: {event}\ndata: {data}\n\n".encode())
        self.wfile.flush()

    def _wants_stream(self) -> bool:
        return "text/event-stream" in self.headers.get("Accept", "")

    # ------------------------------------------------------------------
    # GET: introspection.

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        service = self.server.service
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/v1/healthz":
            self._send_json(200, service.healthz())
        elif path == "/v1/runs":
            self._send_json(200, service.runs_payload())
        elif path.startswith("/v1/runs/"):
            prefix = path[len("/v1/runs/"):]
            payload = service.run_detail_payload(prefix)
            if payload is None:
                self._send_json(404, {
                    "schema": SCHEMA_VERSION, "error": "not-found",
                    "message": f"no unique run journal matches {prefix!r}",
                })
            else:
                self._send_json(200, payload)
        else:
            self._send_json(404, {
                "schema": SCHEMA_VERSION, "error": "not-found",
                "message": f"unknown path {path!r}",
            })

    # ------------------------------------------------------------------
    # POST: study and sweep execution.

    def _read_body(self):
        """The parsed JSON body, or ``None`` after an error response."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > _MAX_BODY_BYTES:
            self._send_json(413, {
                "schema": SCHEMA_VERSION, "error": "body-too-large",
                "message": f"request bodies are capped at "
                           f"{_MAX_BODY_BYTES} bytes",
            })
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw or b"{}")
        except json.JSONDecodeError as error:
            self._send_json(400, {
                "schema": SCHEMA_VERSION, "error": "bad-json",
                "message": f"request body is not valid JSON: {error}",
            })
            return None

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        service = self.server.service
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/v1/study":
            parse, run = parse_study_request, service.run_study
        elif path == "/v1/sweep":
            parse, run = parse_sweep_request, service.run_sweep
        else:
            self._send_json(404, {
                "schema": SCHEMA_VERSION, "error": "not-found",
                "message": f"unknown path {path!r}",
            })
            return
        body = self._read_body()
        if body is None:
            return
        try:
            request = parse(body)
        except SchemaError as error:
            self._send_json(400, {
                "schema": SCHEMA_VERSION, "error": "bad-request",
                "message": "request body failed validation",
                "fields": error.errors,
            })
            return
        if not service.admit():
            if service.draining:
                self._send_json(503, {
                    "schema": SCHEMA_VERSION, "error": "draining",
                    "message": "server is shutting down",
                })
            else:
                self._send_json(429, {
                    "schema": SCHEMA_VERSION, "error": "busy",
                    "message": f"at max_inflight="
                               f"{service.max_inflight}; retry later",
                })
            return
        try:
            if self._wants_stream():
                self._run_streaming(run, request)
            else:
                self._run_json(run, request)
        finally:
            service.release()

    def _run_json(self, run, request) -> None:
        service = self.server.service
        try:
            payload = run(request)
        except ServeShutdown:
            self._send_json(503, {
                "schema": SCHEMA_VERSION, "error": "draining",
                "message": f"run interrupted by shutdown; {_RESUME_HINT}",
            })
            return
        except SchemaError as error:
            self._send_json(400, {
                "schema": SCHEMA_VERSION, "error": "bad-request",
                "message": "request body failed validation",
                "fields": error.errors,
            })
            return
        except Exception as error:
            service.record_failure(type(error).__name__)
            self._send_json(500, {
                "schema": SCHEMA_VERSION, "error": "internal",
                "type": type(error).__name__, "message": str(error),
            })
            return
        self._send_json(200, payload)

    def _run_streaming(self, run, request) -> None:
        service = self.server.service
        self._start_stream()
        try:
            payload = run(request, emit=self._send_event)
            self._send_event("result", payload)
        except ServeShutdown:
            # The terminal error event the shutdown contract promises:
            # streaming clients learn *why* the stream ended and how to
            # resume, instead of seeing a dropped socket.
            self._send_event("error", {
                "error": "draining",
                "message": f"run interrupted by shutdown; {_RESUME_HINT}",
            })
        except (BrokenPipeError, ConnectionResetError):
            service.record_failure("client-disconnected")
        except Exception as error:
            service.record_failure(type(error).__name__)
            self._send_event("error", {
                "error": "internal",
                "type": type(error).__name__, "message": str(error),
            })

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # One quiet access log line per request on stderr (the default
        # implementation, kept explicit so tests may silence it by
        # subclassing).
        super().log_message(format, *args)
