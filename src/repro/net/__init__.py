"""Synthetic Internet substrate: ASes, prefixes, address allocation."""

from repro.net.address_space import Prefix, PrefixAllocator, same_slash24
from repro.net.asdb import AsDatabase, AutonomousSystem

__all__ = [
    "Prefix",
    "PrefixAllocator",
    "same_slash24",
    "AsDatabase",
    "AutonomousSystem",
]
