"""Autonomous-system registry and IP→AS lookup.

The paper's Appendix A.2 (Table 6) attributes IP-cause redundancy to the
ASes hosting the involved origins.  This module provides the registry the
ecosystem generator populates and the longest-prefix-match lookup that
the analysis layer queries.
"""

from __future__ import annotations

import bisect
import ipaddress
from dataclasses import dataclass

from repro.net.address_space import Prefix

__all__ = ["AutonomousSystem", "AsDatabase"]


@dataclass(frozen=True)
class AutonomousSystem:
    """One AS: number, short name (as in Table 6) and owning organisation."""

    asn: int
    name: str
    organization: str


class AsDatabase:
    """Registry of ASes plus an interval index over their prefixes."""

    def __init__(self) -> None:
        self._systems: dict[int, AutonomousSystem] = {}
        # Parallel sorted arrays: prefix start address -> (end, asn).
        self._starts: list[int] = []
        self._entries: list[tuple[int, int]] = []
        self._dirty: list[tuple[int, int, int]] = []

    def register(self, system: AutonomousSystem) -> AutonomousSystem:
        """Add ``system`` to the registry (idempotent per ASN)."""
        existing = self._systems.get(system.asn)
        if existing is not None and existing != system:
            raise ValueError(f"ASN {system.asn} already registered as {existing}")
        self._systems[system.asn] = system
        return system

    def add_prefix(self, prefix: Prefix) -> None:
        """Announce ``prefix`` for its AS."""
        if prefix.asn not in self._systems:
            raise KeyError(f"unknown ASN {prefix.asn}; register the AS first")
        start = int(prefix.network.network_address)
        end = int(prefix.network.broadcast_address)
        self._dirty.append((start, end, prefix.asn))

    def _reindex(self) -> None:
        if not self._dirty:
            return
        triples = sorted(
            [(s, (e, a)) for s, e, a in self._dirty]
            + list(zip(self._starts, self._entries))
        )
        self._starts = [s for s, _ in triples]
        self._entries = [entry for _, entry in triples]
        self._dirty = []

    def lookup(self, ip: str) -> AutonomousSystem | None:
        """Return the AS announcing ``ip``, or ``None``."""
        self._reindex()
        address = int(ipaddress.IPv4Address(ip))
        index = bisect.bisect_right(self._starts, address) - 1
        if index < 0:
            return None
        end, asn = self._entries[index]
        if address > end:
            return None
        return self._systems.get(asn)

    def get(self, asn: int) -> AutonomousSystem | None:
        """Return the AS registered under ``asn``, if any."""
        return self._systems.get(asn)

    def __len__(self) -> int:
        return len(self._systems)

    def __iter__(self):
        return iter(self._systems.values())

    @property
    def systems(self) -> dict[int, AutonomousSystem]:
        """Snapshot of all registered systems keyed by ASN."""
        return dict(self._systems)
