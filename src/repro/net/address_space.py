"""IPv4 address-space allocation for the synthetic Internet.

Each autonomous system in the ecosystem receives one or more disjoint
prefixes; servers then obtain addresses from those prefixes.  The paper's
IP-cause analysis depends on two properties that this module preserves:

* addresses of the *same service* often land in the same /24 (the paper
  observed GA/GTM resolving "to slightly different IPs in the same /24
  network"), and
* addresses of *different* organisations never collide.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field

__all__ = ["Prefix", "PrefixAllocator", "same_slash24"]


def same_slash24(ip_a: str, ip_b: str) -> bool:
    """True when both addresses share their first three octets."""
    a = ipaddress.IPv4Address(ip_a)
    b = ipaddress.IPv4Address(ip_b)
    return int(a) >> 8 == int(b) >> 8


@dataclass(frozen=True)
class Prefix:
    """An allocated IPv4 prefix owned by one AS."""

    network: ipaddress.IPv4Network
    asn: int

    def __contains__(self, ip: str) -> bool:
        return ipaddress.IPv4Address(ip) in self.network


@dataclass
class PrefixAllocator:
    """Hands out disjoint prefixes and host addresses deterministically.

    Allocation walks the private 10.0.0.0/8 block in order, so the same
    sequence of requests always yields the same addresses.
    """

    base: ipaddress.IPv4Network = field(
        default_factory=lambda: ipaddress.IPv4Network("10.0.0.0/8")
    )
    _next_slash24: int = 0
    # thread-safe: allocation happens only during single-threaded world
    # generation; the allocator is never touched from visit tasks.
    _host_cursor: dict[ipaddress.IPv4Network, int] = field(default_factory=dict)
    prefixes: list[Prefix] = field(default_factory=list)

    def allocate_prefix(self, asn: int, prefixlen: int = 24) -> Prefix:
        """Allocate the next free prefix of ``prefixlen`` for ``asn``."""
        if not 16 <= prefixlen <= 24:
            raise ValueError(f"prefixlen must be in [16, 24], got {prefixlen}")
        # Walk in units of /24 so differently sized prefixes stay disjoint.
        step = 1 << (24 - prefixlen)
        # Align the cursor to the prefix size.
        if self._next_slash24 % step:
            self._next_slash24 += step - (self._next_slash24 % step)
        base_int = int(self.base.network_address) + (self._next_slash24 << 8)
        network = ipaddress.IPv4Network((base_int, prefixlen))
        if not network.subnet_of(self.base):
            raise RuntimeError("address space exhausted")
        self._next_slash24 += step
        prefix = Prefix(network=network, asn=asn)
        self.prefixes.append(prefix)
        return prefix

    def allocate_host(self, prefix: Prefix) -> str:
        """Allocate the next host address inside ``prefix``.

        Host numbers start at 1 (the .0 address is skipped to keep the
        addresses looking like real unicast hosts).
        """
        cursor = self._host_cursor.get(prefix.network, 1)
        if cursor >= prefix.network.num_addresses:
            raise RuntimeError(f"prefix {prefix.network} exhausted")
        self._host_cursor[prefix.network] = cursor + 1
        return str(prefix.network.network_address + cursor)
