"""The browser facade: a Chromium-87-like headless visitor.

One :class:`ChromiumBrowser` models the paper's measurement browser:
QUIC disabled, field trials disabled (everything deterministic from the
seed), caches and cookies reset per visit, NetLog recording on.  The
``ignore_privacy_mode`` option is the paper's Chromium patch for the
"Alexa w/o Fetch" run (§5.3.3); ``honor_origin_frame`` is the RFC 8336
ablation Chromium itself does not implement [17].
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.browser.cookies import CookieJar
from repro.browser.loader import PageLoader, PageLoadResult
from repro.browser.pool import ConnectionPool
from repro.dns.resolver import RecursiveResolver
from repro.h2.connection import ConnectionClosedError, Http2Connection
from repro.h2.stream import StreamResetError
from repro.netlog.events import NetLog, NetLogEventType
from repro.util.clock import SimClock
from repro.web.ecosystem import Ecosystem
from repro.web.server import FaultedEndpoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan

__all__ = ["BrowserConfig", "Visit", "ChromiumBrowser"]


@dataclass(frozen=True)
class BrowserConfig:
    """Launch flags of the measurement browser."""

    vantage_country: str = "DE"
    ignore_privacy_mode: bool = False
    honor_origin_frame: bool = False
    #: The paper's crawls "disable QUIC to focus on HTTP/2 and avoid
    #: switching between HTTP/3 and HTTP/2 after observing an alt-svc
    #: header" (§4.2.2).  Enabling it makes alt-svc endpoints negotiate
    #: h3 sessions, which the HAR pipeline then cannot attribute.
    #: Independent of the world's ``h3_profile`` axis: a non-``none``
    #: profile turns on alt-svc *discovery* dynamics in the pool (see
    #: :mod:`repro.h3`) regardless of this flag.
    disable_quic: bool = True
    #: Seconds the browser stays on the page after load (the paper's
    #: sessions were observed for minutes; most connections outlive the
    #: page load and a few are closed by server GOAWAYs).
    observe_s: float = 300.0
    #: Share of sessions the server closes early with a GOAWAY.
    early_close_share: float = 0.035
    #: Median of the lognormal early-close lifetime (the paper measured
    #: a median lifetime of 122.2 s for connections that closed).
    early_close_median_s: float = 122.2
    early_close_sigma: float = 0.45
    #: Probability a session sees late activity (lazy loads, analytics
    #: heartbeats) after page load.  Late requests extend the window in
    #: which the *immediate* lifetime model still considers the session
    #: reusable, so this knob controls the endless/immediate spread of
    #: Table 1 without touching the endless numbers.
    late_activity_share: float = 0.22
    late_activity_max_s: float = 30.0


@dataclass
class Visit:
    """The full observable outcome of one page visit."""

    url: str
    domain: str
    started_at: float
    load: PageLoadResult | None
    connections: list[Http2Connection]
    netlog: NetLog
    observed_until: float
    unreachable: bool = False

    @property
    def ok(self) -> bool:
        return not self.unreachable

    def h2_connections(self) -> list[Http2Connection]:
        return [conn for conn in self.connections if conn.protocol == "h2"]


@dataclass
class ChromiumBrowser:
    """Visits synthetic websites through the substrate stack."""

    ecosystem: Ecosystem
    resolver: RecursiveResolver
    clock: SimClock
    rng: random.Random
    config: BrowserConfig = field(default_factory=BrowserConfig)
    #: Optional per-site fault plan (see :mod:`repro.faults`): wired
    #: into the pool, the loader and — via :class:`FaultedEndpoint`
    #: wrappers around every server lookup — the origin side.  ``None``
    #: leaves every layer on its pre-fault code path.
    faults: "FaultPlan | None" = None

    def visit(self, url_or_domain: str) -> Visit:
        """Visit a page; caches/cookies are per-visit.

        Accepts a bare domain (landing page) or a URL/path such as
        ``site.com/page/1`` to visit an internal page.
        """
        stripped = url_or_domain.removeprefix("https://").rstrip("/")
        domain, _, path_part = stripped.partition("/")
        path = f"/{path_part}" if path_part else "/"
        del stripped
        started = self.clock.now()
        netlog = NetLog()
        netlog.emit(
            NetLogEventType.PAGE_LOAD_START,
            time=started,
            source_id=0,
            url=f"https://{domain}/",
        )

        site = self.ecosystem.website(domain)
        document = site.document_for(path) if site is not None else None
        reachable = document is not None and domain in self.ecosystem.namespace
        if not reachable:
            return Visit(
                url=f"https://{domain}/",
                domain=domain,
                started_at=started,
                load=None,
                connections=[],
                netlog=netlog,
                observed_until=started,
                unreachable=True,
            )

        server_lookup = self.ecosystem.server_for_ip
        if self.faults is not None:
            faults, clock = self.faults, self.clock

            def server_lookup(ip, _inner=self.ecosystem.server_for_ip):
                # One wrapper per connection attempt: burst and
                # certificate state stay scoped to that connection and
                # never touch the shared ecosystem servers.
                return FaultedEndpoint(
                    inner=_inner(ip), faults=faults, clock=clock
                )

        pool = ConnectionPool(
            server_lookup=server_lookup,
            rng=random.Random(self.rng.random()),
            netlog=netlog,
            ignore_privacy_mode=self.config.ignore_privacy_mode,
            honor_origin_frame=self.config.honor_origin_frame,
            enable_quic=not self.config.disable_quic,
            # The h3_profile axis activates discovery per-world, so the
            # per-site crawl tasks need no extra wiring (a process
            # worker rebuilding the world rebuilds this flag with it).
            h3_discovery=self.ecosystem.config.h3_profile != "none",
            faults=self.faults,
        )
        loader = PageLoader(
            pool=pool,
            resolver=self.resolver,
            clock=self.clock,
            rng=random.Random(self.rng.random()),
            cookies=CookieJar(),
            netlog=netlog,
            geo_rewrites=self.ecosystem.geo_rewrites(self.config.vantage_country),
            faults=self.faults,
        )
        load = loader.load(document)

        observed_until = self._observe(pool, netlog, started)
        return Visit(
            url=site.url,
            domain=domain,
            started_at=started,
            load=load,
            connections=list(pool.sessions),
            netlog=netlog,
            observed_until=observed_until,
            unreachable=False,
        )

    def _observe(self, pool: ConnectionPool, netlog: NetLog, started: float) -> float:
        """Dwell on the page; a few servers close sessions early."""
        end = started + self.config.observe_s
        for session in pool.sessions:
            if not session.is_open or session.protocol != "h2":
                continue
            if self.rng.random() < self.config.late_activity_share:
                at = self.clock.now() + self.rng.uniform(
                    1.0, self.config.late_activity_max_s
                )
                try:
                    record = session.perform_request(
                        session.sni,
                        "/keepalive",
                        now=at,
                        with_credentials=not session.privacy_mode,
                        service_time=0.02,
                    )
                except (ConnectionClosedError, StreamResetError):
                    # An injected GOAWAY/RST can strike the keepalive;
                    # late activity on that session simply never lands.
                    continue
                netlog.emit(
                    NetLogEventType.HTTP2_STREAM,
                    time=record.started_at,
                    source_id=session.connection_id,
                    url=record.url,
                    method=record.method,
                    status=record.status,
                    with_credentials=record.with_credentials,
                    finished=record.finished_at,
                    body_size=record.body_size,
                )
        for session in pool.sessions:
            if not session.is_open:
                continue
            if self.rng.random() < self.config.early_close_share:
                lifetime = self.rng.lognormvariate(
                    math.log(self.config.early_close_median_s),
                    self.config.early_close_sigma,
                )
                close_at = session.created_at + lifetime
                if close_at < end:
                    session.receive_goaway(now=close_at)
                    netlog.emit(
                        NetLogEventType.HTTP2_SESSION_RECV_GOAWAY,
                        time=close_at,
                        source_id=session.connection_id,
                    )
                    netlog.emit(
                        NetLogEventType.HTTP2_SESSION_CLOSE,
                        time=close_at,
                        source_id=session.connection_id,
                        reason="goaway",
                    )
        self.clock.advance_to(max(self.clock.now(), end))
        pool.close_all(now=end, reason="test-end")
        return end
