"""WHATWG Fetch Standard credentials logic (the CRED cause).

The Fetch Standard decides, per request, whether credentials (cookies,
client certificates) may be attached.  Chromium turns that decision into
a connection-pool partition: requests that may not carry credentials use
"privacy mode" sockets, and an existing credentialed HTTP/2 session is
*not* reused for them even when IP and certificate match (§3, [22]).

This module implements the decision table the reproduction needs:

==================  ============  ==========================
request mode        same-origin   credentials included?
==================  ============  ==========================
navigate            —             yes
no-cors             —             yes (classic scripts/imgs)
cors-anonymous      yes           yes
cors-anonymous      no            **no**  → privacy mode
cors-credentialed   —             yes
==================  ============  ==========================

Firefox deliberately does not partition its pool this way ([23]); the
browser model's ``ignore_privacy_mode`` switch reproduces both the
Firefox behaviour and the paper's patched-Chromium measurement run
("Alexa w/o Fetch").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.domains import normalize, registrable_domain
from repro.web.resources import RequestMode

__all__ = ["FetchDecision", "decide_credentials", "is_same_origin"]


def is_same_origin(request_domain: str, document_domain: str) -> bool:
    """Scheme and port are fixed (https/443), so origin == host here."""
    return normalize(request_domain) == normalize(document_domain)


@dataclass(frozen=True)
class FetchDecision:
    """The outcome of the Fetch Standard's credential logic."""

    include_credentials: bool

    @property
    def privacy_mode(self) -> bool:
        """Chromium's pool-partition flag: on when credentials are barred."""
        return not self.include_credentials


def decide_credentials(
    mode: RequestMode, *, request_domain: str, document_domain: str
) -> FetchDecision:
    """Apply the decision table above."""
    if mode in (RequestMode.NAVIGATE, RequestMode.NO_CORS,
                RequestMode.CORS_CREDENTIALED):
        return FetchDecision(include_credentials=True)
    if mode is RequestMode.CORS_ANON:
        same_origin = is_same_origin(request_domain, document_domain)
        return FetchDecision(include_credentials=same_origin)
    raise ValueError(f"unhandled request mode: {mode!r}")


def same_site(domain_a: str, domain_b: str) -> bool:
    """Registrable-domain ("site") equality, used by the cookie jar."""
    site_a = registrable_domain(domain_a)
    site_b = registrable_domain(domain_b)
    if site_a is None or site_b is None:
        return normalize(domain_a) == normalize(domain_b)
    return site_a == site_b
