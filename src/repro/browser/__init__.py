"""Chromium-like browser model: fetch logic, session pool, page loader."""

from repro.browser.browser import BrowserConfig, ChromiumBrowser, Visit
from repro.browser.cookies import CookieJar
from repro.browser.fetch import FetchDecision, decide_credentials, is_same_origin
from repro.browser.loader import LoadedRequest, PageLoader, PageLoadResult
from repro.browser.pool import ConnectionPool, PoolDecision, SessionKey

__all__ = [
    "BrowserConfig",
    "ChromiumBrowser",
    "Visit",
    "CookieJar",
    "FetchDecision",
    "decide_credentials",
    "is_same_origin",
    "LoadedRequest",
    "PageLoader",
    "PageLoadResult",
    "ConnectionPool",
    "PoolDecision",
    "SessionKey",
]
