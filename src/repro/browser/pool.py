"""The Chromium-like HTTP/2 session pool.

This is the decision procedure whose outcomes the paper measures.  It
mirrors Chromium's ``SpdySessionPool``:

* Sessions are keyed by ``(host, port, privacy_mode)`` — the privacy
  mode component is the Fetch Standard partition (internally
  ``privacy_mode`` in Chromium [12]); the paper's patched run removes it
  (``ignore_privacy_mode``).
* On a key miss, **IP pooling** (connection coalescing, RFC 7540
  §9.1.1) scans live sessions in the same partition: a session may be
  reused when its peer IP is among the new host's resolved addresses
  *and* its certificate covers the host — unless the host previously
  received a 421 on that session.
* Optionally (off by default, like Chromium [17]) the RFC 8336 ORIGIN
  frame's origin set also qualifies a session for reuse without an IP
  match — the mitigation ablation of §5.3.1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.h2.connection import Http2Connection
from repro.netlog.events import NetLog, NetLogEventType
from repro.tls.issuers import WELL_KNOWN_ISSUERS
from repro.tls.verify import verify_certificate
from repro.web.server import OriginServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan

__all__ = ["SessionKey", "PoolDecision", "ConnectionPool"]

#: The client trust store: every organisation the synthetic issuers
#: mint under.  Fault-degraded certificates re-issue outside this set.
_TRUSTED_ISSUERS = frozenset(WELL_KNOWN_ISSUERS)


@dataclass(frozen=True, slots=True)
class SessionKey:
    """Chromium SpdySessionKey subset: host, port, privacy partition."""

    host: str
    port: int
    privacy_mode: bool


@dataclass(frozen=True, slots=True)
class PoolDecision:
    """How a request obtained its connection (for tests/diagnostics)."""

    connection: Http2Connection
    created: bool
    coalesced: bool
    via_origin_frame: bool = False
    #: The connection is an alt-svc-driven h3 upgrade of a host whose
    #: first contact negotiated h2 (only with ``h3_discovery``).
    h3_upgraded: bool = False


@dataclass
class ConnectionPool:
    """Per-visit pool of HTTP/2 sessions (plus HTTP/1.1 fallbacks)."""

    server_lookup: Callable[[str], OriginServer]
    rng: random.Random
    netlog: NetLog | None = None
    ignore_privacy_mode: bool = False
    honor_origin_frame: bool = False
    #: With QUIC enabled, connections to alt-svc-advertising endpoints
    #: are established as HTTP/3 (protocol "h3"); the measurement
    #: methodology excludes those, which is why the paper's crawls ran
    #: with QUIC disabled.
    enable_quic: bool = False
    #: Alt-svc *discovery* dynamics (the ``h3_profile`` axis, see
    #: :mod:`repro.h3`): the first contact with an advertising endpoint
    #: negotiates the server's ALPN protocol and remembers the alt-svc
    #: offer; subsequent connections for remembered hosts upgrade to h3
    #: — preferring an existing coalescable h3 session over a new one.
    #: This reproduces exactly the h2/h3 switching the paper disabled
    #: QUIC to avoid (§4.2.2).  Independent of the legacy
    #: ``enable_quic`` toggle, which upgrades on first contact.
    h3_discovery: bool = False
    #: Optional fault plan: forwarded to every created connection, and
    #: (for profiles with TLS faults) turns on handshake certificate
    #: verification in :meth:`_create`.
    faults: "FaultPlan | None" = None
    port: int = 443
    sessions: list[Http2Connection] = field(default_factory=list)
    # thread-safe: one ConnectionPool per visit (built in Browser.visit),
    # and a visit runs entirely on one executor task.
    _aliases: dict[SessionKey, Http2Connection] = field(default_factory=dict)
    # thread-safe: per-visit, like _aliases above.
    _interned_keys: dict[tuple[str, bool], SessionKey] = field(
        default_factory=dict, repr=False
    )
    _next_connection_id: int = 1
    coalesced_count: int = 0
    created_count: int = 0
    # thread-safe: per-visit, like _aliases above.  Hosts whose served
    # endpoint advertised alt-svc h3 on an earlier contact this visit.
    _alt_svc_hosts: set[str] = field(default_factory=set, repr=False)
    #: Connections obtained as h3 upgrades of previously-h2 hosts.
    h3_upgraded_count: int = 0

    def _key(self, host: str, privacy_mode: bool) -> SessionKey:
        if self.ignore_privacy_mode:
            privacy_mode = False
        # Interned: the same (host, partition) recurs for every request
        # of a visit; reusing the key object skips an allocation per
        # request.
        key = self._interned_keys.get((host, privacy_mode))
        if key is None:
            key = SessionKey(host=host, port=self.port, privacy_mode=privacy_mode)
            self._interned_keys[(host, privacy_mode)] = key
        return key

    def _partition_matches(self, session: Http2Connection, privacy_mode: bool) -> bool:
        if self.ignore_privacy_mode:
            return True
        return session.privacy_mode == privacy_mode

    def live_sessions(self) -> list[Http2Connection]:
        return [session for session in self.sessions if session.is_open]

    # ------------------------------------------------------------------
    def get_connection(
        self,
        host: str,
        ips: tuple[str, ...],
        *,
        privacy_mode: bool,
        now: float,
        force_new: bool = False,
        protocol_hint: str = "h2",
    ) -> PoolDecision:
        """Find or create the session a request for ``host`` uses.

        ``ips`` is the DNS answer for ``host`` at request time;
        ``force_new`` skips all reuse (the 421 retry path).
        """
        key = self._key(host, privacy_mode)
        # Discovery: a host learned to advertise h3 upgrades its next
        # connection — an open h2 alias is deliberately skipped (the
        # mid-visit h2→h3 switch the paper's methodology avoided).
        wants_h3 = self.h3_discovery and host in self._alt_svc_hosts

        if not force_new:
            session = self._aliases.get(key)
            if (
                session is not None
                and session.is_open
                and session.accepts_new_streams
                and not (wants_h3 and session.protocol != "h3")
            ):
                self._learn_alt_svc(host, session)
                return PoolDecision(connection=session, created=False, coalesced=False)

            if protocol_hint == "h2" or wants_h3:
                target_protocol = "h3" if wants_h3 else "h2"
                coalesced = self._find_coalescable(
                    key, host, ips, protocol=target_protocol
                )
                if coalesced is not None:
                    session, via_origin = coalesced
                    self._aliases[key] = session
                    self.coalesced_count += 1
                    self._learn_alt_svc(host, session)
                    if wants_h3:
                        self.h3_upgraded_count += 1
                    if self.netlog is not None:
                        self.netlog.emit(
                            NetLogEventType.HTTP2_SESSION_POOL_FOUND_EXISTING_SESSION,
                            time=now,
                            source_id=session.connection_id,
                            host=host,
                            via_origin_frame=via_origin,
                        )
                    return PoolDecision(
                        connection=session,
                        created=False,
                        coalesced=True,
                        via_origin_frame=via_origin,
                        h3_upgraded=wants_h3,
                    )

        session = self._create(host, ips, privacy_mode=privacy_mode, now=now)
        if not force_new:
            self._aliases[key] = session
        self._learn_alt_svc(host, session)
        upgraded = wants_h3 and session.protocol == "h3"
        if upgraded:
            self.h3_upgraded_count += 1
        return PoolDecision(
            connection=session, created=True, coalesced=False,
            h3_upgraded=upgraded,
        )

    def _learn_alt_svc(self, host: str, session: Http2Connection) -> None:
        """Remember an alt-svc h3 offer observed on ``host``'s endpoint.

        Only consulted under ``h3_discovery``; the learned set is what
        turns a *later* connection for the host into an h3 upgrade —
        the first contact itself always keeps the negotiated protocol.
        """
        if self.h3_discovery and getattr(session.server, "alt_svc_h3", False):
            self._alt_svc_hosts.add(host)

    def _find_coalescable(
        self,
        key: SessionKey,
        host: str,
        ips: tuple[str, ...],
        *,
        protocol: str = "h2",
    ) -> tuple[Http2Connection, bool] | None:
        ip_set = set(ips)
        # The ORIGIN frame is an HTTP/2 extension (RFC 8336); h3
        # coalescing qualifies on IP + certificate coverage only.
        origin = (
            f"https://{host}"
            if self.honor_origin_frame and protocol == "h2" else None
        )
        for session in self.sessions:
            if not session.is_open or not session.accepts_new_streams:
                continue
            if session.protocol != protocol:
                continue
            if not self._partition_matches(session, key.privacy_mode):
                continue
            if session.port != key.port:
                continue
            if host in session.misdirected_domains:
                continue
            # Both reuse paths additionally require certificate
            # coverage, so the (memoized but still costlier) SAN match
            # runs only for sessions that qualify on IP or origin set.
            ip_match = session.remote_ip in ip_set
            via_origin = (
                not ip_match
                and origin is not None
                and origin in session.origin_set
            )
            if not ip_match and not via_origin:
                continue
            if not session.certificate.covers(host):
                continue
            return session, via_origin
        return None

    def _create(
        self,
        host: str,
        ips: tuple[str, ...],
        *,
        privacy_mode: bool,
        now: float,
    ) -> Http2Connection:
        if not ips:
            raise ValueError(f"cannot connect to {host}: empty address list")
        # Chromium may end up on any announced address (happy eyeballs,
        # per-attempt ordering); picking among answers reproduces the
        # paper's corner case of same-domain connections on different
        # IPs (§4.1).
        ip = self.rng.choice(ips)
        server = self.server_lookup(ip)
        if self.faults is not None and self.faults.verifies_tls:
            # Handshake-time verification, before any session state is
            # created: a degraded certificate (see FaultedEndpoint)
            # aborts the connection with a typed CertificateError that
            # the loader's fallback logic handles.  The endpoint caches
            # its per-SNI decision, so the certificate verified here is
            # the one the established session will record.
            verify_certificate(
                server.certificate_for(host), host, now=now,
                trusted_issuers=_TRUSTED_ISSUERS,
            )
        protocol = server.alpn
        advertises_h3 = getattr(server, "alt_svc_h3", False)
        if self.h3_discovery:
            # Discovery dynamics: only hosts with a *previously seen*
            # alt-svc offer upgrade, and only when the endpoint the
            # dice landed on still advertises (load-balanced pools may
            # mix adopters and laggards).
            if advertises_h3 and host in self._alt_svc_hosts:
                protocol = "h3"
        elif self.enable_quic and advertises_h3:
            protocol = "h3"
        session = Http2Connection(
            connection_id=self._next_connection_id,
            server=server,
            sni=host,
            remote_ip=ip,
            created_at=now,
            port=self.port,
            privacy_mode=False if self.ignore_privacy_mode else privacy_mode,
            protocol=protocol,
            faults=self.faults,
        )
        self._next_connection_id += 1
        self.sessions.append(session)
        self.created_count += 1
        if self.netlog is not None:
            self.netlog.emit(
                NetLogEventType.HTTP2_SESSION,
                time=now,
                source_id=session.connection_id,
                host=host,
                peer_address=ip,
                privacy_mode=session.privacy_mode,
                protocol=session.protocol,
                cert_sans=list(session.certificate.sans),
                cert_issuer=session.certificate.issuer_org,
            )
        return session

    # ------------------------------------------------------------------
    def close_all(self, *, now: float, reason: str = "shutdown") -> None:
        """Close every live session (end of the observation window)."""
        for session in self.sessions:
            if session.is_open:
                session.close(now=now)
                if self.netlog is not None:
                    self.netlog.emit(
                        NetLogEventType.HTTP2_SESSION_CLOSE,
                        time=now,
                        source_id=session.connection_id,
                        reason=reason,
                    )
