"""The page loader: walks a page's resource tree through the pool.

Resources are loaded breadth-first in document order; a resource's
children (requests its script issues once executed) are queued after it
completes, reproducing the paper's observed chains (GTM script → GA
script → GA beacon).  For every request the loader:

1. applies the crawler's geo rewrites (``www.google.com`` →
   ``www.google.de`` from the German vantage point, Appendix A.3);
2. runs the Fetch Standard credentials decision;
3. resolves DNS through the crawl's recursive resolver;
4. asks the session pool for a connection (exact key → coalescing →
   new);
5. performs the request, handling 421 by retrying on a dedicated
   connection, as Chromium does (RFC 7540 §9.1.2).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.browser.cookies import CookieJar
from repro.browser.fetch import decide_credentials
from repro.browser.pool import ConnectionPool, PoolDecision
from repro.dns.resolver import DnsTimeout, RecursiveResolver, ServFail
from repro.dns.zone import NxDomain
from repro.faults.plan import FaultKind
from repro.h2.connection import (
    HTTP_MISDIRECTED_REQUEST,
    ConnectionClosedError,
    Http2Connection,
    RequestRecord,
)
from repro.h2.stream import StreamResetError
from repro.netlog.events import NetLog, NetLogEventType
from repro.tls.verify import CertificateError
from repro.util.clock import SimClock
from repro.web.resources import Resource, ResourceType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan

__all__ = ["LoadedRequest", "PageLoadResult", "PageLoader"]


@dataclass(frozen=True, slots=True)
class LoadedRequest:
    """One completed request plus the connection that carried it."""

    record: RequestRecord
    connection: Http2Connection
    coalesced: bool
    retried_after_421: bool = False
    #: The request rode an alt-svc-driven h3 upgrade (h3_profile axis).
    h3_upgraded: bool = False


@dataclass(slots=True)
class PageLoadResult:
    """Everything one page load produced."""

    url: str
    document_domain: str
    started_at: float
    finished_at: float
    requests: list[LoadedRequest] = field(default_factory=list)
    dns_failures: list[str] = field(default_factory=list)
    misdirected: list[str] = field(default_factory=list)
    #: Domains whose handshake failed certificate verification (fault
    #: injection); each failed attempt appends once.
    tls_failures: list[str] = field(default_factory=list)
    #: Streams torn down by RST_STREAM before a response arrived.
    stream_resets: int = 0
    #: 5xx responses observed (including ones cleared by the retry).
    server_errors: int = 0
    #: Connections obtained as alt-svc h3 upgrades during this load.
    h3_upgrades: int = 0

    @property
    def load_time(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class PageLoader:
    """Loads one page through a (fresh) pool and (shared) resolver."""

    pool: ConnectionPool
    resolver: RecursiveResolver
    clock: SimClock
    rng: random.Random
    cookies: CookieJar = field(default_factory=CookieJar)
    netlog: NetLog | None = None
    geo_rewrites: dict[str, str] = field(default_factory=dict)
    #: Per-request latency bounds in seconds (uniformly sampled).
    min_latency: float = 0.005
    max_latency: float = 0.080
    #: Parse/execute delay before each subresource fetch.  These gaps
    #: matter to the *immediate* lifetime model (§4.2.1): a connection
    #: whose last request finished before the gap is considered closed.
    min_think: float = 0.05
    max_think: float = 2.0
    #: Extra deferral for beacons, which browsers fire at/after onload.
    beacon_delay_max: float = 12.0
    #: Optional fault plan (latency spikes are applied loader-side, and
    #: the retry/fallback paths below only exist to absorb its strikes).
    faults: "FaultPlan | None" = None
    #: Breadth-first work queue, reused across page loads.
    _queue: deque = field(default_factory=deque, repr=False)

    def _latency(self) -> float:
        latency = self.rng.uniform(self.min_latency, self.max_latency)
        faults = self.faults
        if faults is not None and faults.fires(FaultKind.SRV_LATENCY_SPIKE):
            latency *= faults.param(FaultKind.SRV_LATENCY_SPIKE, 25.0)
        return latency

    def _resolve(self, domain: str) -> tuple[str, ...] | None:
        try:
            answer = self.resolver.resolve(domain, now=self.clock.now())
        except NxDomain:
            return None
        except (ServFail, DnsTimeout):
            # Transient resolver failure: browsers re-ask once before
            # giving the page up on the name.
            try:
                answer = self.resolver.resolve(domain, now=self.clock.now())
            except (NxDomain, ServFail, DnsTimeout):
                return None
        if self.netlog is not None:
            self.netlog.emit(
                NetLogEventType.HOST_RESOLVER_IMPL_JOB,
                time=self.clock.now(),
                source_id=0,
                host=domain,
                address_list=list(answer.ips),
            )
        return answer.ips

    def _perform(
        self,
        connection: Http2Connection,
        domain: str,
        path: str,
        *,
        with_credentials: bool,
    ) -> RequestRecord:
        record = connection.perform_request(
            domain,
            path,
            now=self.clock.now(),
            with_credentials=with_credentials,
            service_time=self._latency(),
        )
        self.clock.advance_to(record.finished_at)
        if self.netlog is not None:
            self.netlog.emit(
                NetLogEventType.HTTP2_STREAM,
                time=record.started_at,
                source_id=connection.connection_id,
                url=record.url,
                method=record.method,
                status=record.status,
                with_credentials=record.with_credentials,
                finished=record.finished_at,
                body_size=record.body_size,
            )
        return record

    def load(self, document: Resource) -> PageLoadResult:
        """Load ``document`` and its entire resource tree."""
        started = self.clock.now()
        result = PageLoadResult(
            url=document.url,
            document_domain=document.domain,
            started_at=started,
            finished_at=started,
        )
        queue: deque[Resource] = self._queue
        queue.clear()
        queue.append(document)
        while queue:
            resource = queue.popleft()
            loaded = self._load_one(resource, document.domain, result)
            if loaded is not None:
                queue.extend(resource.children)
        result.finished_at = self.clock.now()
        if self.netlog is not None:
            self.netlog.emit(
                NetLogEventType.PAGE_LOAD_END,
                time=result.finished_at,
                source_id=0,
                url=result.url,
            )
        return result

    def _connect(
        self,
        domain: str,
        ips: tuple[str, ...],
        privacy_mode: bool,
        result: PageLoadResult,
        *,
        force_new: bool = False,
    ) -> PoolDecision | None:
        """Ask the pool for a session, absorbing TLS handshake faults.

        A failed verification (injected expired/mismatched/untrusted
        certificate) is recorded on the result and reported as ``None``
        so callers can retry or abandon the resource; without a fault
        plan this is exactly ``pool.get_connection``.
        """
        try:
            return self.pool.get_connection(
                domain,
                ips,
                privacy_mode=privacy_mode,
                now=self.clock.now(),
                force_new=force_new,
            )
        except CertificateError:
            result.tls_failures.append(domain)
            return None

    def _load_one(
        self, resource: Resource, document_domain: str, result: PageLoadResult
    ) -> LoadedRequest | None:
        if resource.rtype is not ResourceType.DOCUMENT:
            self.clock.advance(self.rng.uniform(self.min_think, self.max_think))
        if resource.rtype is ResourceType.BEACON:
            self.clock.advance(self.rng.uniform(0.5, self.beacon_delay_max))
        domain = self.geo_rewrites.get(resource.domain, resource.domain)
        decision = decide_credentials(
            resource.mode, request_domain=domain, document_domain=document_domain
        )
        ips = self._resolve(domain)
        if ips is None:
            result.dns_failures.append(domain)
            return None

        pool_decision = self._connect(
            domain, ips, decision.privacy_mode, result
        )
        if pool_decision is None:
            # One more handshake (the endpoint redraws its certificate
            # fault); browsers likewise retry a failed socket once
            # before surfacing the TLS interstitial.
            pool_decision = self._connect(
                domain, ips, decision.privacy_mode, result, force_new=True
            )
            if pool_decision is None:
                return None
        connection = pool_decision.connection
        try:
            record = self._perform(
                connection,
                domain,
                resource.path,
                with_credentials=decision.include_credentials,
            )
        except (ConnectionClosedError, StreamResetError) as error:
            if isinstance(error, StreamResetError):
                result.stream_resets += 1
            pool_decision = self._connect(
                domain, ips, decision.privacy_mode, result, force_new=True
            )
            if pool_decision is None:
                return None
            connection = pool_decision.connection
            try:
                record = self._perform(
                    connection,
                    domain,
                    resource.path,
                    with_credentials=decision.include_credentials,
                )
            except (ConnectionClosedError, StreamResetError) as retry_error:
                # A second strike on a fresh session: give the resource
                # up, as the browser's error page would.
                if isinstance(retry_error, StreamResetError):
                    result.stream_resets += 1
                return None

        if record.status >= 500:
            # 5xx burst: one retry on the same session — short bursts
            # clear, long ones leave the resource failed.
            result.server_errors += 1
            try:
                record = self._perform(
                    connection,
                    domain,
                    resource.path,
                    with_credentials=decision.include_credentials,
                )
            except (ConnectionClosedError, StreamResetError):
                return None
            if record.status >= 500:
                result.server_errors += 1

        retried = False
        if record.status == HTTP_MISDIRECTED_REQUEST:
            # RFC 7540 §9.1.2: retry on a connection that is not
            # coalesced; the domain is remembered as non-reusable and
            # the failing endpoint is avoided when alternatives exist.
            result.misdirected.append(domain)
            retry_ips = tuple(
                ip for ip in ips if ip != connection.remote_ip
            ) or ips
            retry_decision = self._connect(
                domain, retry_ips, decision.privacy_mode, result,
                force_new=True,
            )
            if retry_decision is None:
                return None
            connection = retry_decision.connection
            try:
                record = self._perform(
                    connection,
                    domain,
                    resource.path,
                    with_credentials=decision.include_credentials,
                )
            except (ConnectionClosedError, StreamResetError):
                return None
            retried = True
            if record.status >= 500:
                result.server_errors += 1

        self._store_cookies(record)
        if pool_decision.h3_upgraded and not retried:
            result.h3_upgrades += 1
        loaded = LoadedRequest(
            record=record,
            connection=connection,
            coalesced=pool_decision.coalesced and not retried,
            retried_after_421=retried,
            h3_upgraded=pool_decision.h3_upgraded and not retried,
        )
        result.requests.append(loaded)
        if record.status >= 500:
            # The response is observed (and recorded) but the resource
            # failed: its children never execute.
            return None
        return loaded

    def _store_cookies(self, record: RequestRecord) -> None:
        if record.with_credentials and record.status == 200:
            self.cookies.set_cookie(record.domain, "sid", str(record.stream_id))
