"""A minimal cookie jar.

The pool partition does not depend on whether cookies *exist* — only on
whether the Fetch Standard *allows* them — but the jar keeps the
simulation honest: responses can set cookies, later credentialed
requests would carry them, and tests can assert that anonymous requests
never see the jar.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.domains import normalize, registrable_domain

__all__ = ["CookieJar"]


@dataclass
class CookieJar:
    """Cookies stored per registrable domain ("site")."""

    # thread-safe: one CookieJar per visit (built in Browser.visit), and
    # a visit runs entirely on one executor task.
    _store: dict[str, dict[str, str]] = field(default_factory=dict)

    @staticmethod
    def _site(domain: str) -> str:
        return registrable_domain(domain) or normalize(domain)

    def set_cookie(self, domain: str, name: str, value: str) -> None:
        """Store a cookie for ``domain``'s site."""
        self._store.setdefault(self._site(domain), {})[name] = value

    def cookies_for(self, domain: str) -> dict[str, str]:
        """All cookies a credentialed request to ``domain`` would carry."""
        return dict(self._store.get(self._site(domain), {}))

    def clear(self) -> None:
        """Reset the jar (the crawlers do this between visits)."""
        self._store.clear()

    def __len__(self) -> int:
        return sum(len(cookies) for cookies in self._store.values())
