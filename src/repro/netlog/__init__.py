"""NetLog pipeline: Chromium-style event stream and session stitching."""

from repro.netlog.events import NetLog, NetLogEvent, NetLogEventType
from repro.netlog.parser import NetLogParseResult, parse_sessions

__all__ = [
    "NetLog",
    "NetLogEvent",
    "NetLogEventType",
    "NetLogParseResult",
    "parse_sessions",
]
