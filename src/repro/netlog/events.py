"""NetLog event model (Chromium's network logging system [19]).

The paper's own measurements "collect Chromium's NetLog files giving
more details on low-level connection events (e.g., start and end) and
stitch these events together to gather a precise view of the session
lifecycle" (§4.2.2).  The browser model emits the subset of event types
that stitching needs; the parser in :mod:`repro.netlog.parser` consumes
them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["NetLogEventType", "NetLogEvent", "NetLog"]


class NetLogEventType(enum.Enum):
    """Event types, named after their Chromium counterparts."""

    HOST_RESOLVER_IMPL_JOB = "HOST_RESOLVER_IMPL_JOB"
    HTTP2_SESSION = "HTTP2_SESSION"
    HTTP2_SESSION_CLOSE = "HTTP2_SESSION_CLOSE"
    HTTP2_SESSION_RECV_GOAWAY = "HTTP2_SESSION_RECV_GOAWAY"
    HTTP2_SESSION_POOL_FOUND_EXISTING_SESSION = (
        "HTTP2_SESSION_POOL_FOUND_EXISTING_SESSION"
    )
    HTTP2_STREAM = "HTTP2_STREAM"
    HTTP_TRANSACTION = "HTTP_TRANSACTION"
    PAGE_LOAD_START = "PAGE_LOAD_START"
    PAGE_LOAD_END = "PAGE_LOAD_END"


@dataclass(frozen=True, slots=True)
class NetLogEvent:
    """One log line: type, simulated time, source (connection) id, params."""

    event_type: NetLogEventType
    time: float
    source_id: int
    params: dict = field(default_factory=dict)


@dataclass
class NetLog:
    """An append-only event stream for one browser visit."""

    events: list[NetLogEvent] = field(default_factory=list)

    def emit(
        self,
        event_type: NetLogEventType,
        *,
        time: float,
        source_id: int,
        **params,
    ) -> NetLogEvent:
        event = NetLogEvent(
            event_type=event_type, time=time, source_id=source_id, params=params
        )
        self.events.append(event)
        return event

    def of_type(self, event_type: NetLogEventType) -> list[NetLogEvent]:
        return [event for event in self.events if event.event_type is event_type]

    def __len__(self) -> int:
        return len(self.events)
