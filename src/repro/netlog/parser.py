"""NetLog stitching: events → session lifecycles (§4.2.2).

Unlike HARs, NetLogs carry explicit connection start/end events and the
pool's privacy-mode flag, so the reconstructed records have *actual*
lifetimes and can distinguish the Fetch-credentials partition directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.session import RequestSummary, SessionRecord
from repro.netlog.events import NetLog, NetLogEventType

__all__ = ["NetLogParseResult", "parse_sessions"]


@dataclass
class NetLogParseResult:
    """Sessions stitched from one visit's NetLog."""

    url: str | None
    records: list[SessionRecord] = field(default_factory=list)
    goaway_sessions: set[int] = field(default_factory=set)
    dns_queries: int = 0


def parse_sessions(netlog: NetLog) -> NetLogParseResult:
    """Stitch session, stream and close events into records."""
    url: str | None = None
    opens: dict[int, dict] = {}
    closes: dict[int, float] = {}
    goaways: set[int] = set()
    streams: dict[int, list[dict]] = {}
    dns_queries = 0

    for event in netlog.events:
        if event.event_type is NetLogEventType.PAGE_LOAD_START:
            url = event.params.get("url", url)
        elif event.event_type is NetLogEventType.HTTP2_SESSION:
            opens[event.source_id] = {"time": event.time, **event.params}
        elif event.event_type is NetLogEventType.HTTP2_SESSION_CLOSE:
            # First close wins (a GOAWAY close precedes the test-end
            # sweep for the same source).
            closes.setdefault(event.source_id, event.time)
        elif event.event_type is NetLogEventType.HTTP2_SESSION_RECV_GOAWAY:
            goaways.add(event.source_id)
        elif event.event_type is NetLogEventType.HTTP2_STREAM:
            streams.setdefault(event.source_id, []).append(
                {"time": event.time, **event.params}
            )
        elif event.event_type is NetLogEventType.HOST_RESOLVER_IMPL_JOB:
            dns_queries += 1

    records = []
    for source_id, params in sorted(opens.items()):
        requests = tuple(
            RequestSummary(
                domain=_domain_of(stream["url"]),
                status=stream["status"],
                finished_at=stream.get("finished", stream["time"]),
                with_credentials=stream.get("with_credentials", False),
                body_size=stream.get("body_size", 0),
                path=_path_of(stream["url"]),
                method=stream.get("method", "GET"),
            )
            for stream in sorted(
                streams.get(source_id, []), key=lambda stream: stream["time"]
            )
        )
        records.append(
            SessionRecord(
                connection_id=source_id,
                domain=params["host"],
                ip=params["peer_address"],
                port=443,
                sans=tuple(params.get("cert_sans", ())),
                issuer=params.get("cert_issuer", ""),
                start=params["time"],
                end=closes.get(source_id),
                protocol=params.get("protocol", "h2"),
                privacy_mode=params.get("privacy_mode"),
                requests=requests,
            )
        )
    records.sort(key=lambda record: record.start)
    return NetLogParseResult(
        url=url, records=records, goaway_sessions=goaways, dns_queries=dns_queries
    )


def _domain_of(url: str) -> str:
    without_scheme = url.split("://", 1)[-1]
    return without_scheme.split("/", 1)[0].lower()


def _path_of(url: str) -> str:
    without_scheme = url.split("://", 1)[-1]
    slash = without_scheme.find("/")
    return without_scheme[slash:] if slash >= 0 else "/"

