"""The per-run orchestration object threaded through the pipeline.

A :class:`RunContext` owns one run's journal, retry policy and
quarantine bookkeeping.  The crawlers drive it per shard::

    results = runlog.run_shard(stage, shard, fn, tasks,
                               executor=executor, reattempt=...)
    if results is None:          # poison quarantine: fold without it
        continue
    ... build + cache the shard artefact ...
    runlog.finish_shard(stage, shard)

and the study driver closes the loop: it skips classification work for
quarantined crawl shards (so no empty dataset is ever cached under a
full shard's key), folds :meth:`RunContext.coverage` into the study's
digest and reports, and appends the terminal ``run-finish`` record.
A journal whose last record is not ``run-finish`` is, by definition,
resumable.

The context is provably inert when nothing fails: per-shard execution
through :func:`repro.runlog.retry.retry_map` is a plain
``executor.map_sites`` call on the happy path, coverage with zero
quarantined shards feeds no extra bytes to the digest, and the seed
goldens pin all of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence, TypeVar

from repro.runlog.errors import PoisonShardError
from repro.runlog.journal import RunJournal, journal_dir, run_id
from repro.runlog.retry import RetryPolicy, retry_map

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.crawl.shards import CrawlShard
    from repro.store import StudyCache

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["RunCoverage", "RunContext"]


@dataclass(frozen=True)
class RunCoverage:
    """Honest accounting of how much of a run actually ran.

    ``excluded_domains`` lists every domain of every quarantined shard,
    sorted — the sites whose measurements the fold proceeded without.
    """

    shards_total: int = 0
    shards_ok: int = 0
    shards_quarantined: int = 0
    excluded_domains: tuple[str, ...] = ()

    @property
    def complete(self) -> bool:
        return self.shards_quarantined == 0

    def describe(self) -> str:
        """One line for progress output and reports."""
        if self.complete:
            return f"complete ({self.shards_ok}/{self.shards_total} shards)"
        return (
            f"PARTIAL ({self.shards_ok}/{self.shards_total} shards ok, "
            f"{self.shards_quarantined} quarantined, "
            f"{len(self.excluded_domains)} domain(s) excluded)"
        )


class RunContext:
    """Journal + retry + quarantine state for one study run."""

    def __init__(
        self,
        journal: RunJournal,
        *,
        run: str,
        policy: RetryPolicy | None = None,
        strict: bool = False,
        seed: int = 0,
        fault_profile: str = "none",
    ) -> None:
        self.journal = journal
        self.run = run
        self.strict = strict
        self.policy = policy if policy is not None else (
            RetryPolicy(max_attempts=1) if strict else RetryPolicy()
        )
        self.seed = seed
        self.fault_profile = fault_profile
        self.replay = journal.replay
        # thread-safe: one RunContext per study run, driven only from
        # the study thread (workers never see it).
        self._quarantined: dict[str, tuple[str, ...]] = {}
        self._quarantined_keys: set[str] = set()
        self._ok: set[str] = set()

    # ------------------------------------------------------------------
    @classmethod
    def for_study(
        cls,
        config,
        cache: "StudyCache",
        *,
        resume: bool = False,
        strict: bool = False,
        policy: RetryPolicy | None = None,
        observer: Callable[[dict], None] | None = None,
    ) -> "RunContext":
        """The context of one :class:`StudyConfig` against one cache.

        ``resume=True`` reopens the config's existing journal (falling
        back to a fresh one when none exists); otherwise a fresh
        journal replaces whatever was there.  ``observer`` is installed
        on the journal and sees every record after its durable append —
        the serve layer's per-shard progress feed.
        """
        run = run_id(config)
        path = journal_dir(cache.directory) / f"{run}.jsonl"
        if resume and path.exists():
            journal = RunJournal.resume(path, run=run)
        else:
            journal = RunJournal.fresh(path, run=run, meta={
                "seed": config.seed,
                "n_sites": config.n_sites,
                "shards": config.shards,
                "fault_profile": config.fault_profile,
                "epochs": config.epochs,
                "evolution_policy": config.evolution_policy,
            })
        if observer is not None:
            journal.observer = observer
        return cls(
            journal, run=run, policy=policy, strict=strict,
            seed=config.seed, fault_profile=config.fault_profile,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _token(stage: str, shard: "CrawlShard") -> str:
        """The journal identity of one shard of one stage.

        Cached runs use the shard's cache key (which already hashes the
        stage configuration); uncached runs fall back to the stage name
        plus the bucket index, which is equally stable across runs.
        """
        return shard.key if shard.key is not None else (
            f"{stage}#{shard.index}"
        )

    def run_shard(
        self,
        stage: str,
        shard: "CrawlShard",
        fn: Callable[[T], R],
        tasks: Sequence[T],
        *,
        executor,
        reattempt: Callable[[T, int], T] | None = None,
    ) -> list[R] | None:
        """Execute one shard's tasks with retry; ``None`` = quarantined.

        Fatal (programming) errors and strict-mode failures propagate
        after a ``shard-failed`` record; poison quarantine appends a
        ``shard-quarantined`` record and returns ``None`` so the caller
        folds without the shard.
        """
        token = self._token(stage, shard)
        self.journal.append({
            "event": "shard-start", "stage": stage, "key": token,
            "artifact": shard.key, "n_domains": len(shard.domains),
        })

        def on_event(kind: str, detail: dict) -> None:
            self.journal.append({"event": kind, "key": token, **detail})

        try:
            return retry_map(
                executor, fn, tasks, policy=self.policy, stage=stage,
                domains=shard.domains, reattempt=reattempt,
                on_event=on_event,
            )
        except PoisonShardError as error:
            self.journal.append({
                "event": "shard-quarantined", "stage": stage, "key": token,
                "domains": list(shard.domains), "attempts": error.attempts,
            })
            self._quarantined[token] = shard.domains
            if shard.key is not None:
                self._quarantined_keys.add(shard.key)
            if self.strict:
                raise
            return None
        except Exception as error:
            self.journal.append({
                "event": "shard-failed", "stage": stage, "key": token,
                "error": type(error).__name__, "message": str(error),
            })
            raise

    def finish_shard(self, stage: str, shard: "CrawlShard") -> None:
        """Record a shard done — call *after* its artefact is cached."""
        token = self._token(stage, shard)
        self.journal.append({
            "event": "shard-finish", "stage": stage, "key": token,
            "artifact": shard.key,
        })
        self._ok.add(token)
        self._quarantined.pop(token, None)
        if shard.key is not None:
            self._quarantined_keys.discard(shard.key)

    def note_cached(self, stage: str, shard: "CrawlShard") -> None:
        """Record a shard skipped because its artefact already exists.

        The skip reason distinguishes "this run's journal already saw
        it finish" (a resume skipping completed work) from "the
        content-addressed cache had it" (any warm run).
        """
        token = self._token(stage, shard)
        reason = "journal" if token in self.replay.finished else "cache"
        self.journal.append({
            "event": "shard-skip", "stage": stage, "key": token,
            "artifact": shard.key, "reason": reason,
        })
        self._ok.add(token)

    def is_quarantined(self, key: str | None) -> bool:
        """Whether a shard cache key was quarantined *in this run*."""
        return key is not None and key in self._quarantined_keys

    # ------------------------------------------------------------------
    def maybe_rot(self, stage: str, shard: "CrawlShard",
                  path) -> bool:
        """The ``cache-rot`` fault hook: truncate a just-written artefact.

        Fires deterministically per ``(profile, seed, stage, shard)``;
        the damaged pickle is exactly what ``StudyCache.get`` already
        evicts-and-recomputes, so a rotted shard costs one recompute,
        never a crash — the warm-rerun differential pins that.
        """
        if not shard.domains:
            return False
        from repro.faults.plan import FaultKind, FaultPlan

        plan = FaultPlan.compile(
            self.fault_profile, seed=self.seed,
            run=f"cache-rot:{stage}", domain=shard.domains[0],
        )
        if plan is None or not plan.fires(FaultKind.TASK_CACHE_ROT):
            return False
        keep = max(0.0, min(1.0, plan.param(FaultKind.TASK_CACHE_ROT, 0.5)))
        path = Path(path)
        size = path.stat().st_size
        with path.open("r+b") as handle:
            handle.truncate(int(size * keep))
        self.journal.append({
            "event": "cache-rot", "stage": stage,
            "key": self._token(stage, shard), "artifact": shard.key,
        })
        return True

    # ------------------------------------------------------------------
    def coverage(self) -> RunCoverage:
        """What ran, what was quarantined, which domains are missing."""
        excluded = sorted(
            domain
            for domains in self._quarantined.values()
            for domain in domains
        )
        return RunCoverage(
            shards_total=len(self._ok) + len(self._quarantined),
            shards_ok=len(self._ok),
            shards_quarantined=len(self._quarantined),
            excluded_domains=tuple(excluded),
        )

    def finish(self) -> RunCoverage:
        """Append the terminal ``run-finish`` record."""
        coverage = self.coverage()
        self.journal.append({
            "event": "run-finish",
            "status": "complete" if coverage.complete else "partial",
            "shards_ok": coverage.shards_ok,
            "shards_quarantined": coverage.shards_quarantined,
        })
        return coverage

    def close(self) -> None:
        """Flush and release the journal (idempotent)."""
        self.journal.close()
