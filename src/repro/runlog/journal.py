"""The durable run journal: append-only, fsync'd, torn-tail tolerant.

One JSONL file per run, living under ``<cache-dir>/runs/<run-id>.jsonl``
(a directory the cache's ``entries()``/``prune()`` never touch).  Each
line is a self-checking envelope::

    {"crc": "<blake2b-4 of the canonical record JSON>", "record": {...}}

Records carry a monotonically increasing ``seq`` instead of wall-clock
timestamps — the tree-wide determinism lint bans wall time in ``src``,
and resume logic only ever needs *order*, never time.  ``repro runs``
displays the journal file's mtime for humans instead.

Crash safety comes from two halves:

* every :meth:`RunJournal.append` flushes and ``fsync``\\ s, so a record
  once appended survives the process dying the next instant;
* :func:`load_records` validates line by line (CRC + JSON + envelope
  shape) and stops at the first bad line, so a torn tail — half a line
  written when the power went — degrades to "the run ended one record
  earlier", never to an unreadable journal.  Resuming truncates the
  file back to that valid prefix before appending.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterable

from repro.runlog.errors import JournalSchemaError, RunJournalError

__all__ = [
    "RUNLOG_SCHEMA",
    "ReplayState",
    "RunJournal",
    "journal_dir",
    "load_records",
    "run_id",
]

#: Bump when the record vocabulary changes incompatibly; the run id
#: embeds it, so old journals are simply never matched for resume.
RUNLOG_SCHEMA = 1


def run_id(config: Any) -> str:
    """The journal identity of one study configuration.

    A :func:`repro.store.stable_key` over the config with its execution
    substrate normalised away: a run interrupted under ``process:8``
    must resume under ``serial`` (or any other executor) against the
    same journal, because executors never change study output.
    """
    from repro.store import stable_key

    normalised = replace(config, executor="serial", parallelism=None)
    return stable_key("runlog", RUNLOG_SCHEMA, normalised)


def journal_dir(cache_directory: str | os.PathLike) -> Path:
    """Where a cache directory keeps its run journals."""
    return Path(cache_directory) / "runs"


def _crc(payload: str) -> str:
    return hashlib.blake2b(payload.encode(), digest_size=4).hexdigest()


def _encode(record: dict) -> str:
    """One journal line (newline included) for ``record``."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    envelope = {"crc": _crc(payload), "record": record}
    return json.dumps(envelope, sort_keys=True, separators=(",", ":")) + "\n"


def _decode(line: bytes) -> dict | None:
    """The record of one journal line, or ``None`` if the line is bad."""
    try:
        envelope = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(envelope, dict) or set(envelope) != {"crc", "record"}:
        return None
    record = envelope["record"]
    if not isinstance(record, dict):
        return None
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if envelope["crc"] != _crc(payload):
        return None
    return record


def _load(path: Path) -> tuple[list[dict], int]:
    """``(valid records, byte length of the valid prefix)`` of ``path``."""
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return [], 0
    records: list[dict] = []
    offset = 0
    for line in raw.splitlines(keepends=True):
        record = _decode(line) if line.endswith(b"\n") else None
        if record is None:
            break
        records.append(record)
        offset += len(line)
    return records, offset


def load_records(path: str | os.PathLike) -> list[dict]:
    """Every valid record of a journal, tolerating a torn/corrupt tail.

    The result is always a prefix of what was appended: validation
    stops at the first unreadable line (truncated write, flipped bits,
    a line missing its newline), so a crash mid-append costs at most
    the record being written.
    """
    records, _ = _load(Path(path))
    return records


@dataclass
class ReplayState:
    """What a loaded journal says about a run's progress.

    ``finished`` maps each finished shard's journal key to its artefact
    cache key; ``quarantined`` holds keys whose *latest* verdict was
    poison quarantine (a later finish clears the key — a resumed run
    that recovers a shard un-quarantines it); ``completed`` is whether
    a ``run-finish`` record closed the run.
    """

    finished: dict[str, str | None] = field(default_factory=dict)
    quarantined: set[str] = field(default_factory=set)
    completed: bool = False
    status: str | None = None

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "ReplayState":
        state = cls()
        for record in records:
            event = record.get("event")
            key = record.get("key")
            if event == "shard-finish" and isinstance(key, str):
                state.finished[key] = record.get("artifact")
                state.quarantined.discard(key)
            elif event == "shard-quarantined" and isinstance(key, str):
                state.quarantined.add(key)
                state.finished.pop(key, None)
            elif event == "run-finish":
                state.completed = True
                state.status = record.get("status")
        return state


class RunJournal:
    """Append-only, fsync-on-append journal of one run."""

    def __init__(self, path: Path, *, records: list[dict],
                 handle) -> None:
        self.path = path
        self.records = records
        self._handle = handle
        #: Called as ``observer(record)`` after each durable append —
        #: the record is already fsync'd when the observer sees it, so
        #: an observer that raises (the serve layer's drain signal)
        #: leaves the journal resumable.
        self.observer = None
        self._seq = max(
            (record.get("seq", -1) for record in records
             if isinstance(record.get("seq"), int)),
            default=-1,
        ) + 1

    # ------------------------------------------------------------------
    @classmethod
    def fresh(cls, path: str | os.PathLike, *, run: str,
              meta: dict | None = None) -> "RunJournal":
        """Start a new journal, discarding any previous file at ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = path.open("wb")
        journal = cls(path, records=[], handle=handle)
        journal.append({
            "event": "run-start", "run": run, "schema": RUNLOG_SCHEMA,
            **(meta or {}),
        })
        return journal

    @classmethod
    def resume(cls, path: str | os.PathLike, *, run: str) -> "RunJournal":
        """Reopen an interrupted journal, truncating any torn tail.

        Raises :class:`RunJournalError` when no journal exists to
        resume, and :class:`JournalSchemaError` when the journal's
        ``run-start`` record names a different run id or schema.
        """
        path = Path(path)
        records, valid_length = _load(path)
        if not records:
            raise RunJournalError(
                f"no resumable journal at {path}; run without --resume "
                f"to start fresh"
            )
        head = records[0]
        if head.get("event") != "run-start":
            raise JournalSchemaError(
                f"journal {path} does not start with a run-start record"
            )
        if head.get("schema") != RUNLOG_SCHEMA or head.get("run") != run:
            raise JournalSchemaError(
                f"journal {path} belongs to run {head.get('run')!r} "
                f"schema {head.get('schema')!r}; expected {run!r} "
                f"schema {RUNLOG_SCHEMA!r}"
            )
        handle = path.open("r+b")
        handle.truncate(valid_length)
        handle.seek(valid_length)
        return cls(path, records=records, handle=handle)

    # ------------------------------------------------------------------
    @property
    def replay(self) -> ReplayState:
        return ReplayState.from_records(self.records)

    def append(self, record: dict) -> dict:
        """Durably append one record (``seq`` is assigned here)."""
        if self._handle is None:
            raise RunJournalError(
                f"journal {self.path} is closed; cannot append"
            )
        record = {**record, "seq": self._seq}
        self._seq += 1
        self._handle.write(_encode(record).encode())
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.records.append(record)
        if self.observer is not None:
            self.observer(record)
        return record

    def close(self) -> None:
        """Release the file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
