"""Reading journals back for humans: the ``repro runs`` subcommand.

Status is derived purely from the records (never from file freshness):

* ``complete`` — a ``run-finish`` record closed the run with every
  shard ok;
* ``quarantined-N`` — the run finished, but N shards were poisoned and
  folded around;
* ``resumable`` — no ``run-finish`` record: the run was interrupted
  (crash, SIGINT, kill) and ``--resume`` will pick it up where the
  journal ends.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.runlog.journal import ReplayState, journal_dir, load_records

__all__ = ["RunStatus", "list_runs", "render_runs", "render_run_detail"]


@dataclass(frozen=True)
class RunStatus:
    """One journal, summarised."""

    run: str
    path: Path
    status: str
    records: int
    shards_finished: int
    shards_quarantined: int
    seed: int | None = None
    n_sites: int | None = None
    fault_profile: str | None = None

    @property
    def resumable(self) -> bool:
        return self.status == "resumable"


def _status_of(records: list[dict], state: ReplayState) -> str:
    if not state.completed:
        return "resumable"
    if state.quarantined:
        return f"quarantined-{len(state.quarantined)}"
    return "complete"


def _summarize(path: Path) -> RunStatus | None:
    records = load_records(path)
    if not records or records[0].get("event") != "run-start":
        return None
    head = records[0]
    state = ReplayState.from_records(records)
    return RunStatus(
        run=str(head.get("run", path.stem)),
        path=path,
        status=_status_of(records, state),
        records=len(records),
        shards_finished=len(state.finished),
        shards_quarantined=len(state.quarantined),
        seed=head.get("seed"),
        n_sites=head.get("n_sites"),
        fault_profile=head.get("fault_profile"),
    )


def list_runs(cache_directory: str | os.PathLike) -> list[RunStatus]:
    """Every readable journal under ``<cache-dir>/runs``, sorted by id."""
    directory = journal_dir(cache_directory)
    if not directory.is_dir():
        return []
    summaries = []
    for path in sorted(directory.glob("*.jsonl")):
        summary = _summarize(path)
        if summary is not None:
            summaries.append(summary)
    return summaries


def render_runs(runs: list[RunStatus]) -> str:
    """The ``repro runs`` listing table."""
    from repro.util.formatting import align_table

    if not runs:
        return "No run journals found."
    rows = [
        [
            run.run[:12],
            run.status,
            str(run.records),
            str(run.shards_finished),
            str(run.shards_quarantined),
            "-" if run.seed is None else str(run.seed),
            "-" if run.n_sites is None else str(run.n_sites),
            run.fault_profile or "-",
        ]
        for run in runs
    ]
    return align_table(
        rows,
        header=["Run", "Status", "Records", "Done", "Quar",
                "Seed", "Sites", "Faults"],
    )


def render_run_detail(cache_directory: str | os.PathLike,
                      run: str) -> str | None:
    """Per-shard detail of one run (``repro runs show <id>``).

    ``run`` may be a unique prefix of the run id; returns ``None`` when
    no journal matches.
    """
    matches = [
        status for status in list_runs(cache_directory)
        if status.run.startswith(run)
    ]
    if len(matches) != 1:
        return None
    status = matches[0]
    records = load_records(status.path)
    lines = [
        f"run {status.run}  [{status.status}]  "
        f"({status.records} record(s), {status.path})"
    ]
    for record in records:
        event = record.get("event", "?")
        if event == "run-start":
            meta = ", ".join(
                f"{field}={record[field]}"
                for field in ("seed", "n_sites", "shards", "fault_profile",
                              "epochs", "evolution_policy")
                if field in record
            )
            lines.append(f"  [{record.get('seq', '?'):>4}] run-start  {meta}")
            continue
        detail = []
        for field in ("stage", "reason", "status", "error", "attempt",
                      "attempts", "n_domains", "shards_ok",
                      "shards_quarantined", "classification"):
            if field in record:
                detail.append(f"{field}={record[field]}")
        key = record.get("key")
        if isinstance(key, str):
            detail.append(f"key={key[:12]}")
        lines.append(
            f"  [{record.get('seq', '?'):>4}] {event:<17} "
            + "  ".join(detail)
        )
    return "\n".join(lines)
