"""Crash-safe runs: durable journal, shard retry, poison quarantine.

The run layer makes long studies survivable:

* :mod:`repro.runlog.journal` — an append-only, fsync'd JSONL journal
  per run whose loader tolerates torn tails;
* :mod:`repro.runlog.retry` — transient/fatal failure classification
  and the chunk-then-single-item retry loop;
* :mod:`repro.runlog.context` — the :class:`RunContext` the pipeline
  threads per shard, with poison quarantine and coverage accounting;
* :mod:`repro.runlog.inspect` — journal listing for ``repro runs``.

With zero failures the layer is provably inert: the happy path is one
``executor.map_sites`` per shard and the coverage block feeds nothing
into the digest, so the pinned seed goldens double as the inertness
differential.
"""

from repro.runlog.context import RunContext, RunCoverage
from repro.runlog.errors import (
    JournalSchemaError,
    PoisonShardError,
    RunJournalError,
    ShardRetryError,
    WorkerCrashError,
)
from repro.runlog.inspect import (
    RunStatus,
    list_runs,
    render_run_detail,
    render_runs,
)
from repro.runlog.journal import (
    RUNLOG_SCHEMA,
    ReplayState,
    RunJournal,
    journal_dir,
    load_records,
    run_id,
)
from repro.runlog.retry import RetryPolicy, classify_failure, retry_map

__all__ = [
    "RUNLOG_SCHEMA",
    "JournalSchemaError",
    "PoisonShardError",
    "ReplayState",
    "RetryPolicy",
    "RunContext",
    "RunCoverage",
    "RunJournal",
    "RunJournalError",
    "RunStatus",
    "ShardRetryError",
    "WorkerCrashError",
    "classify_failure",
    "journal_dir",
    "list_runs",
    "load_records",
    "render_run_detail",
    "render_runs",
    "retry_map",
    "run_id",
]
