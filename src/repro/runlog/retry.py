"""Failure classification and the chunk-then-single retry loop.

The policy splits failures along the line the PR-7 typed-error
hierarchies drew: **transient** errors are simulated (or real)
infrastructure outcomes — ``DnsError``, ``H2Error``,
``CertificateError``, ``OSError``, timeouts, a worker-killed
``BrokenExecutor`` — that a retry can plausibly outlive; **fatal**
errors are programming bugs (``TypeError``, ``KeyError``,
``AssertionError``, ...) that would fail identically forever, so
retrying them only buries the traceback.

:func:`retry_map` is the shard execution primitive: one whole-chunk
attempt through the executor, then — on a transient failure —
re-dispatch of every item as its own single-item map so one poisoned
site cannot hold the rest of its chunk hostage.  When an item exhausts
its attempt budget, the whole map raises :class:`PoisonShardError`;
the run context catches that and quarantines the shard instead of
aborting the study.

Backoff is deterministic: attempt ``n`` sleeps ``backoff_base * n``
seconds (default 0 — simulated infrastructure does not get less broken
by waiting, and the test suite must not either).
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.runlog.errors import PoisonShardError

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["RetryPolicy", "classify_failure", "retry_map"]

#: Exception types that mean "the code is wrong, not the weather":
#: retrying them reproduces the same failure with interest.
_FATAL_TYPES: tuple[type[BaseException], ...] = (
    TypeError, AttributeError, NameError, LookupError, ValueError,
    AssertionError, ImportError, RecursionError, NotImplementedError,
    ZeroDivisionError, SyntaxError,
)


def classify_failure(error: BaseException) -> str:
    """``"fatal"`` for programming errors, ``"transient"`` otherwise.

    ``OSError`` (and everything else, including the subsystem
    hierarchies and :class:`BrokenExecutor`) counts as transient: the
    run layer's bias is to retry anything that *could* be the
    environment, and let the attempt budget bound the damage when it
    is not.
    """
    if isinstance(error, _FATAL_TYPES) and not isinstance(error, OSError):
        return "fatal"
    return "transient"


@dataclass(frozen=True)
class RetryPolicy:
    """How many times a shard's work may fail before quarantine."""

    #: Total attempts per item, the initial whole-chunk try included.
    max_attempts: int = 3
    #: Deterministic backoff factor: attempt ``n`` sleeps ``base * n``
    #: seconds before running.  0 disables sleeping entirely.
    backoff_base: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0.0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based)."""
        return self.backoff_base * attempt


def retry_map(
    executor,
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    policy: RetryPolicy,
    stage: str,
    domains: tuple[str, ...] = (),
    reattempt: Callable[[T, int], T] | None = None,
    on_event: Callable[[str, dict], None] | None = None,
) -> list[R]:
    """``executor.map_sites(fn, items)`` with retry and poison detection.

    ``reattempt(item, n)`` rewrites an item for retry attempt ``n``
    (the crawl tasks bump their ``attempt`` counter so the injected
    ``worker-crash`` fault can be attempt-bounded); ``on_event`` sees
    every failure as ``(kind, detail)`` for journal recording.

    Raises the original error when it classifies fatal (or when the
    policy allows a single attempt — strict mode), and
    :class:`PoisonShardError` when an item survives every attempt.
    """
    items = list(items)
    if not items:
        return []

    def note(kind: str, detail: dict) -> None:
        if on_event is not None:
            on_event(kind, detail)

    try:
        return executor.map_sites(fn, items)
    except Exception as error:
        verdict = classify_failure(error)
        note("chunk-failed", {
            "stage": stage, "error": type(error).__name__,
            "message": str(error), "classification": verdict,
        })
        if verdict == "fatal" or policy.max_attempts <= 1:
            raise

    # The chunk failed for a transient reason: re-dispatch every item
    # singly.  Items whose work is deterministic and healthy reproduce
    # their chunk-attempt results exactly (nothing in a task's output
    # depends on the attempt number); the failing ones get the rest of
    # the attempt budget one at a time.
    results: list[R] = []
    for position, item in enumerate(items):
        last_error: BaseException | None = None
        recovered = False
        for attempt in range(1, policy.max_attempts):
            delay = policy.backoff_s(attempt)
            if delay > 0.0:
                time.sleep(delay)
            retry_item = (
                reattempt(item, attempt) if reattempt is not None else item
            )
            try:
                results.extend(executor.map_sites(fn, [retry_item]))
                recovered = True
                break
            except Exception as error:
                verdict = classify_failure(error)
                note("item-failed", {
                    "stage": stage, "item": position, "attempt": attempt,
                    "error": type(error).__name__, "message": str(error),
                    "classification": verdict,
                })
                if verdict == "fatal":
                    raise
                last_error = error
        if not recovered:
            raise PoisonShardError(
                stage, domains, policy.max_attempts
            ) from last_error
    return results
