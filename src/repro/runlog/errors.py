"""The run-layer exception hierarchy.

Two roots, both under :class:`RunJournalError` so callers can catch
"anything the crash-safe run layer raised" with one clause:

* :class:`RunJournalError` — the journal itself misbehaved (schema
  mismatch, unwritable path);
* :class:`ShardRetryError` — the retry machinery's own verdicts:
  :class:`WorkerCrashError` is the injected task-level fault kind
  (``worker-crash``), :class:`PoisonShardError` is the terminal
  "this shard failed K times" signal that quarantines (or, under
  ``--strict``, aborts) a shard.

The lint's typed-errors rule pins every raise under ``src/repro/runlog``
to this hierarchy, exactly like ``DnsError``/``H2Error``/
``CertificateError`` pin theirs.
"""

from __future__ import annotations

__all__ = [
    "RunJournalError",
    "JournalSchemaError",
    "ShardRetryError",
    "WorkerCrashError",
    "PoisonShardError",
]


class RunJournalError(Exception):
    """Root of every error the crash-safe run layer raises."""


class JournalSchemaError(RunJournalError):
    """A journal file exists but speaks an incompatible schema."""


class ShardRetryError(RunJournalError):
    """Root of the retry machinery's error types."""


class WorkerCrashError(ShardRetryError):
    """A worker died mid-task (the injected ``worker-crash`` fault).

    Raised inside executor workers, so it must survive pickling: keep
    the constructor signature to plain positional ``str`` arguments.
    """


class PoisonShardError(ShardRetryError):
    """A shard kept failing after every retry attempt was spent."""

    def __init__(self, stage: str, domains: tuple[str, ...],
                 attempts: int) -> None:
        super().__init__(
            f"shard of stage {stage!r} still failing after {attempts} "
            f"attempt(s); {len(domains)} domain(s) quarantined"
        )
        self.stage = stage
        self.domains = domains
        self.attempts = attempts
