"""repro — reproduction of "Sharding and HTTP/2 Connection Reuse Revisited"
(Sander, Blöcher, Wehrle, Rüth — IMC '21).

Quickstart::

    from repro import Study, StudyConfig, table1, headline

    study = Study.run(StudyConfig(n_sites=400))
    print(table1(study).render())
    print(headline(study).render())

The public surface re-exports the layers a downstream user needs:

* :mod:`repro.web` — the synthetic web ecosystem (the substitute for
  the live web the paper measured);
* :mod:`repro.browser` — the Chromium-like browser model whose
  connection decisions the study measures;
* :mod:`repro.core` — the Connection Reuse predicate and the §4.1
  redundancy classifier (the paper's core contribution);
* :mod:`repro.crawl` — the HTTP Archive and Alexa measurement
  harnesses;
* :mod:`repro.runtime` — the pluggable serial/thread/process execution
  substrate the crawl and classification stages map over;
* :mod:`repro.evolve` — temporal ecosystem evolution (churn policies,
  epoch plans, the longitudinal runner);
* :mod:`repro.analysis` — the study driver plus renderers for every
  table and figure of the paper.

See README.md for the quickstart and the runtime/parallelism knobs.
"""

from repro.analysis.internal import (
    InternalPagesComparison,
    compare_landing_vs_internal,
)
from repro.analysis.report import generate_report, write_report
from repro.analysis.validation import Scorecard, validate_study
from repro.analysis import (
    ALL_TABLES,
    Figure2Result,
    Figure3Result,
    HeadlineStats,
    MitigationComparison,
    Study,
    StudyConfig,
    TableResult,
    compare_mitigations,
    figure2,
    figure3,
    headline,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    table10,
    table11,
    table12,
    study_digest,
)
from repro.browser import BrowserConfig, ChromiumBrowser, ConnectionPool, Visit
from repro.runtime import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    StageTimings,
    ThreadExecutor,
    make_executor,
)
from repro.core import (
    Cause,
    CorpusReport,
    LifetimeModel,
    SessionRecord,
    SiteClassification,
    classify_site,
    could_reuse,
    records_from_visit,
)
from repro.crawl import AlexaCrawler, HttpArchiveCrawler
from repro.dnsstudy import DnsLoadBalancingStudy
from repro.evolve import run_longitudinal
from repro.perf import (
    CorpusImpact,
    PathModel,
    SlowStartModel,
    WhatIfResult,
    corpus_impact,
    whatif_site,
)
from repro.web import Ecosystem, EcosystemConfig

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # analysis
    "ALL_TABLES", "Figure2Result", "Figure3Result", "HeadlineStats",
    "MitigationComparison", "Study", "StudyConfig", "TableResult",
    "compare_mitigations", "figure2", "figure3", "headline",
    "table1", "table2", "table3", "table4", "table5", "table6",
    "table7", "table8", "table9", "table10", "table11", "table12",
    # browser
    "BrowserConfig", "ChromiumBrowser", "ConnectionPool", "Visit",
    # core
    "Cause", "CorpusReport", "LifetimeModel", "SessionRecord",
    "SiteClassification", "classify_site", "could_reuse",
    "records_from_visit",
    # crawl / dns study / web / evolution
    "AlexaCrawler", "HttpArchiveCrawler", "DnsLoadBalancingStudy",
    "Ecosystem", "EcosystemConfig", "run_longitudinal",
    # runtime
    "Executor", "SerialExecutor", "ThreadExecutor", "ProcessExecutor",
    "StageTimings", "make_executor", "study_digest",
    # extensions
    "InternalPagesComparison", "compare_landing_vs_internal",
    "generate_report", "write_report", "Scorecard", "validate_study",
    "CorpusImpact", "PathModel", "SlowStartModel", "WhatIfResult",
    "corpus_impact", "whatif_site",
]
