"""The multi-resolver DNS load-balancing study (Appendix A.4).

The paper resolved its top-20 IP-cause domain pairs every 6 minutes for
several days through 14 public resolvers (Table 11) and counted, per
time slot, how many resolvers returned *overlapping* answers for the
pair — overlap meaning Connection Reuse would have been possible.
Figure 3 plots that count over time: some pairs never overlap
(GA/GTM), others fluctuate (gstatic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.resolver import RecursiveResolver, default_fleet
from repro.dns.zone import NxDomain
from repro.web.ecosystem import Ecosystem

__all__ = ["DomainPair", "PairTimeline", "DnsStudyResult", "DnsLoadBalancingStudy"]

#: Pairs probed when the caller does not supply measurement-derived
#: ones: the flagship pairs of Table 12.
DEFAULT_PAIRS: tuple[tuple[str, str], ...] = (
    ("www.google-analytics.com", "www.googletagmanager.com"),
    ("www.facebook.com", "connect.facebook.net"),
    ("googleads.g.doubleclick.net", "pagead2.googlesyndication.com"),
    ("pagead2.googlesyndication.com", "googleads.g.doubleclick.net"),
    ("tpc.googlesyndication.com", "pagead2.googlesyndication.com"),
    ("www.gstatic.com", "fonts.gstatic.com"),
    ("fonts.gstatic.com", "www.gstatic.com"),
    ("script.hotjar.com", "static.hotjar.com"),
    ("vars.hotjar.com", "static.hotjar.com"),
    ("in.hotjar.com", "static.hotjar.com"),
    ("fonts.googleapis.com", "ajax.googleapis.com"),
    ("maps.googleapis.com", "fonts.googleapis.com"),
    ("stats.wp.com", "c0.wp.com"),
    ("apis.google.com", "www.gstatic.com"),
    ("www.google.de", "www.gstatic.com"),
    ("i.ytimg.com", "www.gstatic.com"),
)


@dataclass(frozen=True)
class DomainPair:
    """An (origin, previous-connection origin) pair from the IP cause."""

    domain: str
    prev: str

    def label(self) -> str:
        return f"{self.domain} / prev: {self.prev}"


@dataclass
class PairTimeline:
    """Per-slot overlap counts for one pair."""

    pair: DomainPair
    resolver_count: int = 0
    #: (slot time, number of resolvers whose answers overlapped).
    points: list[tuple[float, int]] = field(default_factory=list)

    def overlap_slots(self) -> int:
        return sum(1 for _, count in self.points if count > 0)

    def mean_overlap(self) -> float:
        """Average share of resolvers whose answers overlapped."""
        if not self.points or not self.resolver_count:
            return 0.0
        return sum(count for _, count in self.points) / (
            len(self.points) * self.resolver_count
        )

    def classification(self) -> str:
        """'never', 'always' or 'sometimes' (Figure 3's visual classes).

        'never' = no resolver ever saw overlapping answers; 'always' =
        every resolver did in every slot (synchronized or single-IP
        deployments); everything in between fluctuates over time and
        vantage point, like the paper's gstatic rows.
        """
        if not self.points:
            return "never"
        counts = [count for _, count in self.points]
        if max(counts) == 0:
            return "never"
        if min(counts) == self.resolver_count:
            return "always"
        return "sometimes"


@dataclass
class DnsStudyResult:
    """The full study outcome."""

    timelines: list[PairTimeline]
    resolver_count: int
    interval_s: float

    def by_classification(self) -> dict[str, list[PairTimeline]]:
        out: dict[str, list[PairTimeline]] = {
            "never": [], "sometimes": [], "always": []
        }
        for timeline in self.timelines:
            out[timeline.classification()].append(timeline)
        return out


@dataclass
class DnsLoadBalancingStudy:
    """Resolves domain pairs through the Table 11 fleet over sim-days."""

    ecosystem: Ecosystem
    pairs: list[DomainPair] = field(default_factory=list)
    start_time: float = 0.0
    duration_s: float = 2 * 24 * 3600.0
    interval_s: float = 360.0  # every 6 minutes, like the paper
    #: The resolver fleet of the last :meth:`run`, kept for cache
    #: inspection (the PR 3 growth regression tests read it).
    resolvers: list[RecursiveResolver] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.pairs:
            self.pairs = [
                DomainPair(domain=a, prev=b)
                for a, b in DEFAULT_PAIRS
                if a in self.ecosystem.namespace and b in self.ecosystem.namespace
            ]

    def run(self) -> DnsStudyResult:
        """Probe every pair from every resolver at every slot."""
        fleet: list[RecursiveResolver] = default_fleet(self.ecosystem.namespace)
        self.resolvers = fleet
        timelines = [
            PairTimeline(pair=pair, resolver_count=len(fleet))
            for pair in self.pairs
        ]
        slots = int(self.duration_s // self.interval_s)
        for slot in range(slots):
            now = self.start_time + slot * self.interval_s
            for timeline in timelines:
                overlapping = 0
                answered = 0
                for resolver in fleet:
                    try:
                        answer_a = resolver.resolve(timeline.pair.domain, now=now)
                        answer_b = resolver.resolve(timeline.pair.prev, now=now)
                    except NxDomain:
                        continue
                    answered += 1
                    if set(answer_a.ips) & set(answer_b.ips):
                        overlapping += 1
                # The paper filtered slots with missing answers to avoid
                # noise; we only keep fully answered slots likewise.
                if answered == len(fleet):
                    timeline.points.append((now, overlapping))
        return DnsStudyResult(
            timelines=timelines,
            resolver_count=len(fleet),
            interval_s=self.interval_s,
        )
