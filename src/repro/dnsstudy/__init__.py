"""DNS load-balancing study (Figure 3, Table 11, Appendix A.4)."""

from repro.dnsstudy.study import (
    DEFAULT_PAIRS,
    DnsLoadBalancingStudy,
    DnsStudyResult,
    DomainPair,
    PairTimeline,
)

__all__ = [
    "DEFAULT_PAIRS",
    "DnsLoadBalancingStudy",
    "DnsStudyResult",
    "DomainPair",
    "PairTimeline",
]
