"""The §4.1 redundancy classifier — the paper's core contribution.

Given the session records of one website visit, decide for every
connection whether it was redundant and attribute it to the root causes
of §3.  The rules, verbatim from the paper:

* Connections are grouped by destination IP to find CERT and CRED;
  IP-cause detection additionally consults the certificate SANs of
  *previous* connections.
* "Domains which web servers explicitly exclude, e.g., via HTTP status
  421, are ignored."
* Corner case: a connection to the *same initial domain* as an earlier
  connection but on a different IP "would be classified as IP, but only
  happen[s] when CRED forbids reuse and multiple IPs are announced via
  DNS" — it is marked CRED.
* A connection can be redundant for several causes at once, but each
  cause type is counted once per connection (the worked example in
  §4.1: four same-IP connections alternating two certificates yield
  three CERT attributions and two CRED attributions).

Attribution keeps the *earliest* matching previous connection, which is
what the "prev:" rows of Tables 2/4/8/10/12 report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.causes import Cause
from repro.core.session import LifetimeModel, SessionRecord

__all__ = ["CauseHit", "SiteClassification", "classify_site"]

_HTTP_MISDIRECTED = 421


@dataclass(frozen=True)
class CauseHit:
    """One (connection, cause) attribution with its reusable witness."""

    record: SessionRecord
    cause: Cause
    previous: SessionRecord


@dataclass
class SiteClassification:
    """The classifier's verdict for one website."""

    site: str
    total_connections: int
    h2_connections: int
    records: list[SessionRecord] = field(default_factory=list)
    hits: list[CauseHit] = field(default_factory=list)
    excluded_domains: set[str] = field(default_factory=set)
    #: HTTP/3 sessions observed (0 everywhere the world's ``h3_profile``
    #: is ``"none"``); with h3 present, ``records`` holds the joint
    #: h2+h3 eligible set and redundancy is judged per protocol.
    h3_connections: int = 0

    @property
    def redundant_records(self) -> list[SessionRecord]:
        """Connections with at least one cause, in establishment order."""
        seen: dict[int, SessionRecord] = {}
        for hit in self.hits:
            seen.setdefault(hit.record.connection_id, hit.record)
        return sorted(seen.values(), key=lambda record: record.start)

    @property
    def redundant_count(self) -> int:
        return len({hit.record.connection_id for hit in self.hits})

    def count(self, cause: Cause) -> int:
        """Number of connections attributed to ``cause``."""
        return len(
            {hit.record.connection_id for hit in self.hits if hit.cause is cause}
        )

    def has_cause(self, cause: Cause) -> bool:
        return any(hit.cause is cause for hit in self.hits)

    def hits_for(self, cause: Cause) -> list[CauseHit]:
        return [hit for hit in self.hits if hit.cause is cause]


def _excluded_domains(records: list[SessionRecord]) -> set[str]:
    """Domains that ever answered 421 — reuse is explicitly refused."""
    excluded = set()
    for record in records:
        for request in record.requests:
            if request.status == _HTTP_MISDIRECTED:
                excluded.add(request.domain)
    return excluded


def classify_site(
    site: str,
    records: list[SessionRecord],
    *,
    model: LifetimeModel = LifetimeModel.ACTUAL,
) -> SiteClassification:
    """Classify one site's connections under a lifetime model.

    Multiplexed sessions of both generations are eligible: HTTP/2 (the
    paper's corpus) and, for worlds with an active ``h3_profile``,
    HTTP/3.  A connection's redundancy witnesses are restricted to
    priors of the *same* protocol — an h3 session cannot be sent over
    an h2 one or vice versa, so the CERT/IP/CRED attribution naturally
    splits by protocol (h3-free inputs classify byte-identically to the
    h2-only classifier this extends).
    """
    excluded = _excluded_domains(records)
    eligible = sorted(
        (record for record in records if record.protocol in ("h2", "h3")),
        key=lambda record: (record.start, record.connection_id),
    )
    considered = [
        record for record in eligible if record.domain not in excluded
    ]
    result = SiteClassification(
        site=site,
        total_connections=len(records),
        h2_connections=sum(
            1 for record in eligible if record.protocol == "h2"
        ),
        records=eligible,
        excluded_domains=excluded,
        h3_connections=sum(
            1 for record in eligible if record.protocol == "h3"
        ),
    )

    for index, record in enumerate(considered):
        priors = [
            prior
            for prior in considered[:index]
            if prior.protocol == record.protocol
            and prior.alive_at(record.start, model)
        ]
        if not priors:
            continue

        cert_prev: SessionRecord | None = None
        cred_prev: SessionRecord | None = None
        ip_prev: SessionRecord | None = None
        for prior in priors:  # priors are in establishment order
            if (cert_prev is not None and cred_prev is not None
                    and ip_prev is not None):
                break  # every cause already has its earliest witness
            same_ip = prior.ip == record.ip and prior.port == record.port
            covers = prior.covers(record.domain)
            same_domain = prior.domain == record.domain
            if same_ip and covers:
                cred_prev = cred_prev or prior
            elif same_ip and not covers:
                cert_prev = cert_prev or prior
            elif not same_ip and same_domain:
                # The §4.1 corner case: same initial domain on another
                # announced IP — only possible when CRED already forbade
                # reuse, so it is marked CRED rather than IP.
                cred_prev = cred_prev or prior
            elif not same_ip and covers:
                ip_prev = ip_prev or prior

        if cert_prev is not None:
            result.hits.append(CauseHit(record=record, cause=Cause.CERT,
                                        previous=cert_prev))
        if cred_prev is not None:
            result.hits.append(CauseHit(record=record, cause=Cause.CRED,
                                        previous=cred_prev))
        if ip_prev is not None:
            result.hits.append(CauseHit(record=record, cause=Cause.IP,
                                        previous=ip_prev))
    return result
