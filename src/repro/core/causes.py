"""The root causes of redundant connections (Figure 1 of the paper)."""

from __future__ import annotations

import enum

__all__ = ["Cause"]


class Cause(enum.Enum):
    """Why a browser opened a connection that reuse could have avoided.

    * ``CERT`` — same IP, but no earlier connection's certificate lists
      the new domain (domain sharding with disjunct certificates).
    * ``IP`` — an earlier connection's certificate covers the domain,
      but DNS resolved it to a different IP (unsynchronized
      load balancing, genuinely distributed content).
    * ``CRED`` — IP and certificate both match; the Fetch Standard's
      credentials partition still forced a new connection.

    Unknown third-party connections (no earlier connection matches on
    either axis) are *not* redundant: "these cannot be avoided in the
    HTTP context" (§3).
    """

    CERT = "CERT"
    IP = "IP"
    CRED = "CRED"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
