"""Who causes the redundancy: origin, issuer and AS attribution.

Backs Tables 2–6, 8–10 and 12 of the paper:

* cause IP  → counted per *origin* (the redundant connection's initial
  domain) with the origins of the reusable previous connections
  (Tables 2/8/12) and per hosting AS (Table 6);
* cause CERT → counted per certificate *issuer* with unique domains
  (Tables 3/9) and per domain with its issuer (Tables 4/10);
* all connections → issuer market share (Table 5).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.core.causes import Cause
from repro.core.classifier import SiteClassification
from repro.net.asdb import AsDatabase

__all__ = ["OriginAttribution", "IssuerAttribution", "AttributionIndex"]


@dataclass
class OriginAttribution:
    """Counts for one origin of a given cause."""

    origin: str
    connections: int = 0
    previous: Counter = field(default_factory=Counter)

    def top_previous(self, top: int = 2) -> list[tuple[str, int]]:
        return self.previous.most_common(top)


@dataclass
class IssuerAttribution:
    """Counts for one certificate issuer."""

    issuer: str
    connections: int = 0
    domains: set[str] = field(default_factory=set)


@dataclass
class AttributionIndex:
    """Accumulates attribution over the classifications of a corpus."""

    ip_origins: dict[str, OriginAttribution] = field(default_factory=dict)
    cert_issuers: dict[str, IssuerAttribution] = field(default_factory=dict)
    cert_domains: dict[str, OriginAttribution] = field(default_factory=dict)
    cert_domain_issuer: dict[str, str] = field(default_factory=dict)
    all_issuers: dict[str, IssuerAttribution] = field(default_factory=dict)
    ip_as_connections: Counter = field(default_factory=Counter)
    ip_as_domains: dict[str, set[str]] = field(default_factory=lambda: defaultdict(set))
    #: Per-protocol cause split: protocol ("h2"/"h3") → Counter of
    #: cause values.  All-h2 on worlds without an ``h3_profile``; the
    #: ``repro h3`` report renders the split (see :mod:`repro.h3`).
    protocol_causes: dict[str, Counter] = field(
        default_factory=lambda: defaultdict(Counter)
    )

    def add_site(self, classification: SiteClassification) -> None:
        """Fold one classified site into the index."""
        for record in classification.records:
            issuer = self.all_issuers.setdefault(
                record.issuer, IssuerAttribution(issuer=record.issuer)
            )
            issuer.connections += 1
            issuer.domains.add(record.domain)

        for hit in classification.hits:
            self.protocol_causes[hit.record.protocol][hit.cause.value] += 1
            if hit.cause is Cause.IP:
                origin = self.ip_origins.setdefault(
                    hit.record.domain, OriginAttribution(origin=hit.record.domain)
                )
                origin.connections += 1
                origin.previous[hit.previous.domain] += 1
            elif hit.cause is Cause.CERT:
                issuer = self.cert_issuers.setdefault(
                    hit.record.issuer, IssuerAttribution(issuer=hit.record.issuer)
                )
                issuer.connections += 1
                issuer.domains.add(hit.record.domain)
                domain = self.cert_domains.setdefault(
                    hit.record.domain, OriginAttribution(origin=hit.record.domain)
                )
                domain.connections += 1
                domain.previous[hit.previous.domain] += 1
                self.cert_domain_issuer[hit.record.domain] = hit.record.issuer

    def attribute_ases(
        self, asdb: AsDatabase, classification: SiteClassification
    ) -> None:
        """IP-cause AS attribution (Table 6) — needs the AS database."""
        for hit in classification.hits:
            if hit.cause is not Cause.IP:
                continue
            system = asdb.lookup(hit.record.ip)
            name = system.name if system else "UNKNOWN"
            self.ip_as_connections[name] += 1
            self.ip_as_domains[name].add(hit.record.domain)

    # ------------------------------------------------------------------
    def top_ip_origins(self, top: int = 4) -> list[OriginAttribution]:
        ordered = sorted(
            self.ip_origins.values(),
            key=lambda attribution: (-attribution.connections, attribution.origin),
        )
        return ordered[:top]

    def ip_origin_rank(self, origin: str) -> int | None:
        """1-based rank of ``origin`` by IP-cause connections (the ↑ column)."""
        ordered = sorted(
            self.ip_origins.values(),
            key=lambda attribution: (-attribution.connections, attribution.origin),
        )
        for position, attribution in enumerate(ordered, start=1):
            if attribution.origin == origin:
                return position
        return None

    def top_cert_issuers(self, top: int = 5) -> list[IssuerAttribution]:
        ordered = sorted(
            self.cert_issuers.values(),
            key=lambda attribution: (-attribution.connections, attribution.issuer),
        )
        return ordered[:top]

    def top_cert_domains(self, top: int = 5) -> list[OriginAttribution]:
        ordered = sorted(
            self.cert_domains.values(),
            key=lambda attribution: (-attribution.connections, attribution.origin),
        )
        return ordered[:top]

    def top_all_issuers(self, top: int = 10) -> list[IssuerAttribution]:
        ordered = sorted(
            self.all_issuers.values(),
            key=lambda attribution: (-attribution.connections, attribution.issuer),
        )
        return ordered[:top]

    def top_ip_ases(self, top: int = 10) -> list[tuple[str, int, int]]:
        """(as name, connections, unique domains), Table 6 layout."""
        ordered = sorted(
            self.ip_as_connections.items(), key=lambda item: (-item[1], item[0])
        )
        return [
            (name, connections, len(self.ip_as_domains[name]))
            for name, connections in ordered[:top]
        ]
