"""Session records: the classifier's input abstraction.

The paper reconstructs "HTTP/2 session lifecycles" from two very
different sources — HTTP Archive HAR files (request-level, no precise
end times) and Chromium NetLogs (exact connection start/end events).
Both pipelines, plus the in-process browser itself, normalise to
:class:`SessionRecord`, so the §4.1 classifier is written once.

Because HAR files cannot tell when a connection ended, the paper
evaluates two lifetime models (§4.2.1): *endless* (connections never
close; upper bound) and *immediate* (closed right after the last
request; lower bound).  NetLog-based records can use their *actual*
recorded lifetimes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.tls.verify import sans_cover

__all__ = ["LifetimeModel", "RequestSummary", "SessionRecord", "records_from_visit"]


class LifetimeModel(enum.Enum):
    """How long a session is assumed to stay reusable."""

    ENDLESS = "endless"
    IMMEDIATE = "immediate"
    ACTUAL = "actual"


@dataclass(frozen=True, slots=True)
class RequestSummary:
    """The per-request facts the classifier and perf models need."""

    domain: str
    status: int
    finished_at: float
    with_credentials: bool = False
    body_size: int = 0
    path: str = "/"
    method: str = "GET"


@dataclass(frozen=True, slots=True)
class SessionRecord:
    """One observed connection, source-agnostic."""

    connection_id: int
    domain: str  # the initially used domain (first request / SNI)
    ip: str
    port: int
    sans: tuple[str, ...]
    issuer: str
    start: float
    end: float | None  # None when unknown or still open at capture end
    protocol: str = "h2"
    privacy_mode: bool | None = None  # only NetLog sources know this
    requests: tuple[RequestSummary, ...] = field(default_factory=tuple)

    def covers(self, domain: str) -> bool:
        """Would this session's certificate cover ``domain``?"""
        return sans_cover(self.sans, domain)

    def last_request_at(self) -> float:
        if not self.requests:
            return self.start
        return max(request.finished_at for request in self.requests)

    def alive_at(self, timestamp: float, model: LifetimeModel) -> bool:
        """Is the session reusable at ``timestamp`` under ``model``?"""
        if timestamp < self.start:
            return False
        if model is LifetimeModel.ENDLESS:
            return True
        if model is LifetimeModel.IMMEDIATE:
            return timestamp <= self.last_request_at()
        if self.end is None:
            return True
        return timestamp < self.end

    def lifetime(self) -> float | None:
        """Recorded lifetime in seconds, if the end is known."""
        if self.end is None:
            return None
        return self.end - self.start


def records_from_visit(visit) -> list[SessionRecord]:
    """Build records straight from a browser :class:`Visit`.

    This is the ground-truth path (no logging losses); the HAR and
    NetLog pipelines should converge to the same records, which the
    integration tests assert.
    """
    records = []
    for connection in visit.connections:
        records.append(
            SessionRecord(
                connection_id=connection.connection_id,
                domain=connection.sni,
                ip=connection.remote_ip,
                port=connection.port,
                sans=connection.certificate.sans,
                issuer=connection.certificate.issuer_org,
                start=connection.created_at,
                end=connection.closed_at,
                protocol=connection.protocol,
                privacy_mode=connection.privacy_mode,
                requests=tuple(
                    RequestSummary(
                        domain=request.domain,
                        status=request.status,
                        finished_at=request.finished_at,
                        with_credentials=request.with_credentials,
                        body_size=request.body_size,
                        path=request.path,
                        method=request.method,
                    )
                    for request in connection.requests
                ),
            )
        )
    return records
