"""The HTTP/2 Connection Reuse predicate (RFC 7540 §9.1.1).

"Requests for domain D may be sent over an existing connection A if D
resolves to the same destination IP that A is using (+ matching ports)
and if A's TLS certificate includes D" (§2.2.2).  This module states the
rule once so the classifier, the browser pool tests and the mitigation
ablations all agree on what *should* have been reusable.
"""

from __future__ import annotations

from repro.core.session import SessionRecord

__all__ = ["could_reuse", "reuse_blockers"]


def could_reuse(existing: SessionRecord, domain: str, ip: str, port: int = 443) -> bool:
    """Does the RFC allow sending ``domain``@``ip`` over ``existing``?"""
    return (
        existing.protocol == "h2"
        and existing.ip == ip
        and existing.port == port
        and existing.covers(domain)
    )


def reuse_blockers(
    existing: SessionRecord, domain: str, ip: str, port: int = 443
) -> list[str]:
    """Human-readable reasons reuse is *not* allowed (empty = allowed)."""
    blockers = []
    if existing.protocol != "h2":
        blockers.append(f"existing connection is {existing.protocol}, not HTTP/2")
    if existing.ip != ip:
        blockers.append(f"destination IP differs ({existing.ip} vs {ip})")
    if existing.port != port:
        blockers.append(f"port differs ({existing.port} vs {port})")
    if not existing.covers(domain):
        blockers.append(f"certificate SANs do not include {domain}")
    return blockers
