"""The HTTP/2 Connection Reuse predicate (RFC 7540 §9.1.1).

"Requests for domain D may be sent over an existing connection A if D
resolves to the same destination IP that A is using (+ matching ports)
and if A's TLS certificate includes D" (§2.2.2).  This module states the
rule once so the classifier, the browser pool tests and the mitigation
ablations all agree on what *should* have been reusable.

HTTP/3 applies the same authority rule (RFC 9114 §3.3 inherits the
coalescing conditions), but a request can only ride a connection of the
*same* protocol — pass ``protocol="h3"`` to ask the h3 variant of the
question (the ``h3_profile`` axis, see :mod:`repro.h3`).
"""

from __future__ import annotations

from repro.core.session import SessionRecord

__all__ = ["could_reuse", "reuse_blockers"]

#: Multiplexed protocols the reuse rule is defined over.
_MULTIPLEXED = {"h2": "HTTP/2", "h3": "HTTP/3"}


def could_reuse(
    existing: SessionRecord,
    domain: str,
    ip: str,
    port: int = 443,
    *,
    protocol: str = "h2",
) -> bool:
    """Does the RFC allow sending ``domain``@``ip`` over ``existing``?"""
    return (
        existing.protocol == protocol
        and existing.ip == ip
        and existing.port == port
        and existing.covers(domain)
    )


def reuse_blockers(
    existing: SessionRecord,
    domain: str,
    ip: str,
    port: int = 443,
    *,
    protocol: str = "h2",
) -> list[str]:
    """Human-readable reasons reuse is *not* allowed (empty = allowed)."""
    wanted = _MULTIPLEXED.get(protocol, protocol)
    blockers = []
    if existing.protocol != protocol:
        blockers.append(
            f"existing connection is {existing.protocol}, not {wanted}"
        )
    if existing.ip != ip:
        blockers.append(f"destination IP differs ({existing.ip} vs {ip})")
    if existing.port != port:
        blockers.append(f"port differs ({existing.port} vs {port})")
    if not existing.covers(domain):
        blockers.append(f"certificate SANs do not include {domain}")
    return blockers
