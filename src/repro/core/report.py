"""Corpus-level aggregation: the numbers behind Table 1 and Figure 2."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.causes import Cause
from repro.core.classifier import SiteClassification
from repro.util.formatting import pct, si_count

__all__ = ["CauseCounts", "CorpusReport"]


@dataclass
class CauseCounts:
    """Sites and connections attributed to one cause."""

    sites: int = 0
    connections: int = 0


@dataclass
class CorpusReport:
    """Aggregated classification results over a whole corpus."""

    name: str
    total_sites: int = 0
    h2_sites: int = 0
    total_connections: int = 0
    h2_connections: int = 0
    #: HTTP/3 sessions across the corpus (0 unless the world's
    #: ``h3_profile`` is active; see :mod:`repro.h3`).
    h3_connections: int = 0
    redundant_sites: int = 0
    redundant_connections: int = 0
    by_cause: dict[Cause, CauseCounts] = field(
        default_factory=lambda: {cause: CauseCounts() for cause in Cause}
    )
    #: Redundant-connection count per h2 site (Figure 2's raw data).
    redundant_per_site: list[int] = field(default_factory=list)

    def add_site(self, classification: SiteClassification) -> None:
        """Fold one site's classification into the report."""
        self.total_sites += 1
        self.total_connections += classification.total_connections
        # Folded before the h2 gate: an all-h3 site still contributes
        # its protocol split even though the h2 tables skip it.
        self.h3_connections += getattr(classification, "h3_connections", 0)
        if classification.h2_connections == 0:
            return
        self.h2_sites += 1
        self.h2_connections += classification.h2_connections
        redundant = classification.redundant_count
        self.redundant_per_site.append(redundant)
        if redundant:
            self.redundant_sites += 1
            self.redundant_connections += redundant
        for cause in Cause:
            count = classification.count(cause)
            if count:
                self.by_cause[cause].sites += 1
                self.by_cause[cause].connections += count

    # ------------------------------------------------------------------
    def site_share(self, cause: Cause) -> float:
        """Share of h2 sites affected by ``cause`` (paper-style)."""
        if self.h2_sites == 0:
            return 0.0
        return self.by_cause[cause].sites / self.h2_sites

    def connection_share(self, cause: Cause) -> float:
        if self.h2_connections == 0:
            return 0.0
        return self.by_cause[cause].connections / self.h2_connections

    def redundant_site_share(self) -> float:
        if self.h2_sites == 0:
            return 0.0
        return self.redundant_sites / self.h2_sites

    def table_rows(self) -> list[list[str]]:
        """Rows in the layout of the paper's Table 1 (one dataset)."""
        rows = []
        for cause in (Cause.CERT, Cause.IP, Cause.CRED):
            counts = self.by_cause[cause]
            rows.append(
                [
                    cause.value,
                    si_count(counts.sites),
                    si_count(counts.connections),
                    pct(counts.sites, self.h2_sites),
                    pct(counts.connections, self.h2_connections),
                ]
            )
        rows.append(
            [
                "Redund.",
                si_count(self.redundant_sites),
                si_count(self.redundant_connections),
                pct(self.redundant_sites, self.h2_sites),
                pct(self.redundant_connections, self.h2_connections),
            ]
        )
        rows.append(
            [
                "Total",
                si_count(self.h2_sites),
                si_count(self.h2_connections),
                "100 %",
                "100 %",
            ]
        )
        return rows
