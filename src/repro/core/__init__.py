"""Core contribution: Connection Reuse auditing and redundancy classification."""

from repro.core.attribution import (
    AttributionIndex,
    IssuerAttribution,
    OriginAttribution,
)
from repro.core.causes import Cause
from repro.core.classifier import CauseHit, SiteClassification, classify_site
from repro.core.report import CauseCounts, CorpusReport
from repro.core.reuse import could_reuse, reuse_blockers
from repro.core.session import (
    LifetimeModel,
    RequestSummary,
    SessionRecord,
    records_from_visit,
)

__all__ = [
    "AttributionIndex",
    "IssuerAttribution",
    "OriginAttribution",
    "Cause",
    "CauseHit",
    "SiteClassification",
    "classify_site",
    "CauseCounts",
    "CorpusReport",
    "could_reuse",
    "reuse_blockers",
    "LifetimeModel",
    "RequestSummary",
    "SessionRecord",
    "records_from_visit",
]
