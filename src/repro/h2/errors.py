"""The HTTP/2 subsystem's typed error root.

Every exception the frames/HPACK/stream/connection layer raises derives
from :class:`H2Error`, so the browser's retry paths can catch the whole
subsystem with one clause and the ``repro lint`` typed-error rule can
verify no raise site escapes the hierarchy.  Classes that historically
derived from a builtin (``FrameError(ValueError)``,
``HpackError(ValueError)``) keep that base too, so existing
``except ValueError`` callers are unaffected.
"""

from __future__ import annotations

__all__ = ["H2Error"]


class H2Error(RuntimeError):
    """Root of the HTTP/2 subsystem's typed error hierarchy.

    Subclasses carry only their message, so they survive pickling
    across process-pool workers intact.
    """
