"""HTTP/2 frame codec (RFC 7540 §4, plus the RFC 8336 ORIGIN frame).

Frames are encoded with the real 9-octet header (24-bit length, type,
flags, 31-bit stream identifier) and their real payload layouts, so a
byte stream produced here is structurally valid HTTP/2.  The ORIGIN
frame matters to the paper: it lets a server extend the set of origins a
connection may be reused for, but "these are not implemented in
Chromium" (§4.3) — our browser model reproduces that default and offers
honouring them as an ablation.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.h2.errors import H2Error

__all__ = [
    "FrameType",
    "Flags",
    "FrameHeader",
    "Frame",
    "DataFrame",
    "HeadersFrame",
    "RstStreamFrame",
    "SettingsFrame",
    "PingFrame",
    "GoawayFrame",
    "WindowUpdateFrame",
    "OriginFrame",
    "UnknownFrame",
    "FrameError",
    "encode_frame",
    "encode_frame_into",
    "encode_frames",
    "decode_frames",
]

_HEADER = struct.Struct("!HBBBL")  # 24-bit length split as H+B, type, flags, stream.


class FrameError(H2Error, ValueError):
    """Malformed frame bytes.

    Keeps its historical :class:`ValueError` base alongside the
    subsystem root, so pre-existing ``except ValueError`` callers
    still catch it.
    """


class FrameType(enum.IntEnum):
    """Registered frame types used by the reproduction."""

    DATA = 0x0
    HEADERS = 0x1
    RST_STREAM = 0x3
    SETTINGS = 0x4
    PING = 0x6
    GOAWAY = 0x7
    WINDOW_UPDATE = 0x8
    ORIGIN = 0xC


class Flags(enum.IntFlag):
    """Frame flags (union of the flags of all supported types)."""

    NONE = 0x0
    END_STREAM = 0x1
    ACK = 0x1  # SETTINGS/PING reuse bit 0.
    END_HEADERS = 0x4
    PADDED = 0x8
    PRIORITY = 0x20


@dataclass(frozen=True)
class FrameHeader:
    """The 9-octet frame header."""

    length: int
    frame_type: int
    flags: int
    stream_id: int

    def __post_init__(self) -> None:
        if not 0 <= self.length < (1 << 24):
            raise FrameError(f"length {self.length} exceeds 24 bits")
        if not 0 <= self.stream_id < (1 << 31):
            raise FrameError(f"stream id {self.stream_id} exceeds 31 bits")

    def pack(self) -> bytes:
        return _HEADER.pack(
            self.length >> 8,
            self.length & 0xFF,
            self.frame_type,
            self.flags,
            self.stream_id,
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "FrameHeader":
        if len(data) - offset < 9:
            raise FrameError("truncated frame header")
        high, low, frame_type, flags, stream = _HEADER.unpack_from(data, offset)
        return cls(
            length=(high << 8) | low,
            frame_type=frame_type,
            flags=flags,
            stream_id=stream & 0x7FFF_FFFF,
        )


@dataclass(frozen=True)
class Frame:
    """Base frame: subclasses define payload layout."""

    stream_id: int = 0
    flags: int = 0

    frame_type: int = -1  # overridden per subclass

    def payload(self) -> bytes:
        raise NotImplementedError


@dataclass(frozen=True)
class DataFrame(Frame):
    data: bytes = b""
    frame_type: int = FrameType.DATA

    def payload(self) -> bytes:
        return self.data


@dataclass(frozen=True)
class HeadersFrame(Frame):
    header_block: bytes = b""
    frame_type: int = FrameType.HEADERS

    def payload(self) -> bytes:
        return self.header_block


@dataclass(frozen=True)
class RstStreamFrame(Frame):
    error_code: int = 0
    frame_type: int = FrameType.RST_STREAM

    def payload(self) -> bytes:
        return struct.pack("!L", self.error_code)


@dataclass(frozen=True)
class SettingsFrame(Frame):
    pairs: tuple[tuple[int, int], ...] = field(default_factory=tuple)
    frame_type: int = FrameType.SETTINGS

    def payload(self) -> bytes:
        return b"".join(struct.pack("!HL", ident, value) for ident, value in self.pairs)


@dataclass(frozen=True)
class PingFrame(Frame):
    opaque: bytes = b"\x00" * 8
    frame_type: int = FrameType.PING

    def payload(self) -> bytes:
        if len(self.opaque) != 8:
            raise FrameError("PING payload must be 8 octets")
        return self.opaque


@dataclass(frozen=True)
class GoawayFrame(Frame):
    last_stream_id: int = 0
    error_code: int = 0
    debug_data: bytes = b""
    frame_type: int = FrameType.GOAWAY

    def payload(self) -> bytes:
        packed = struct.pack("!LL", self.last_stream_id, self.error_code)
        return packed + self.debug_data


@dataclass(frozen=True)
class WindowUpdateFrame(Frame):
    increment: int = 1
    frame_type: int = FrameType.WINDOW_UPDATE

    def payload(self) -> bytes:
        if not 1 <= self.increment < (1 << 31):
            raise FrameError(f"illegal window increment {self.increment}")
        return struct.pack("!L", self.increment)


@dataclass(frozen=True)
class OriginFrame(Frame):
    """RFC 8336: Origin-Entry list, each a 16-bit length + ASCII origin."""

    origins: tuple[str, ...] = field(default_factory=tuple)
    frame_type: int = FrameType.ORIGIN

    def payload(self) -> bytes:
        out = bytearray()
        for origin in self.origins:
            raw = origin.encode("ascii")
            out += struct.pack("!H", len(raw)) + raw
        return bytes(out)


@dataclass(frozen=True)
class UnknownFrame(Frame):
    """Frames of unregistered types are carried opaquely (must-ignore)."""

    raw_payload: bytes = b""
    raw_type: int = 0xFF
    frame_type: int = -2

    def payload(self) -> bytes:
        return self.raw_payload


def encode_frame_into(out: bytearray, frame: Frame) -> None:
    """Serialise ``frame`` (header + payload) into a caller-owned buffer.

    The buffer-reuse entry point: a connection flushing many frames
    appends them all into one ``bytearray`` instead of concatenating a
    fresh ``bytes`` per frame.  Validation matches ``FrameHeader``.
    """
    payload = frame.payload()
    length = len(payload)
    if length >= (1 << 24):
        raise FrameError(f"length {length} exceeds 24 bits")
    stream_id = frame.stream_id
    if not 0 <= stream_id < (1 << 31):
        raise FrameError(f"stream id {stream_id} exceeds 31 bits")
    frame_type = frame.raw_type if isinstance(frame, UnknownFrame) else frame.frame_type
    out += _HEADER.pack(length >> 8, length & 0xFF, frame_type, frame.flags, stream_id)
    out += payload


def encode_frame(frame: Frame) -> bytes:
    """Serialise ``frame`` into header + payload octets."""
    out = bytearray()
    encode_frame_into(out, frame)
    return bytes(out)


def encode_frames(frames: "list[Frame] | tuple[Frame, ...]") -> bytes:
    """Serialise consecutive frames into one contiguous byte string."""
    out = bytearray()
    for frame in frames:
        encode_frame_into(out, frame)
    return bytes(out)


def _decode_payload(header: FrameHeader, payload: bytes) -> Frame:
    kwargs = {"stream_id": header.stream_id, "flags": header.flags}
    if header.frame_type == FrameType.DATA:
        return DataFrame(data=payload, **kwargs)
    if header.frame_type == FrameType.HEADERS:
        return HeadersFrame(header_block=payload, **kwargs)
    if header.frame_type == FrameType.RST_STREAM:
        if len(payload) != 4:
            raise FrameError("RST_STREAM payload must be 4 octets")
        return RstStreamFrame(error_code=struct.unpack("!L", payload)[0], **kwargs)
    if header.frame_type == FrameType.SETTINGS:
        if len(payload) % 6:
            raise FrameError("SETTINGS payload not a multiple of 6")
        pairs = tuple(
            struct.unpack_from("!HL", payload, off) for off in range(0, len(payload), 6)
        )
        return SettingsFrame(pairs=pairs, **kwargs)
    if header.frame_type == FrameType.PING:
        if len(payload) != 8:
            raise FrameError("PING payload must be 8 octets")
        return PingFrame(opaque=payload, **kwargs)
    if header.frame_type == FrameType.GOAWAY:
        if len(payload) < 8:
            raise FrameError("GOAWAY payload too short")
        last, code = struct.unpack_from("!LL", payload)
        return GoawayFrame(
            last_stream_id=last & 0x7FFF_FFFF,
            error_code=code,
            debug_data=payload[8:],
            **kwargs,
        )
    if header.frame_type == FrameType.WINDOW_UPDATE:
        if len(payload) != 4:
            raise FrameError("WINDOW_UPDATE payload must be 4 octets")
        return WindowUpdateFrame(increment=struct.unpack("!L", payload)[0], **kwargs)
    if header.frame_type == FrameType.ORIGIN:
        if header.stream_id != 0:
            raise FrameError("ORIGIN frames must be on stream 0")
        origins: list[str] = []
        offset = 0
        while offset < len(payload):
            if offset + 2 > len(payload):
                raise FrameError("truncated Origin-Entry length")
            (length,) = struct.unpack_from("!H", payload, offset)
            offset += 2
            if offset + length > len(payload):
                raise FrameError("truncated Origin-Entry")
            try:
                origins.append(payload[offset:offset + length].decode("ascii"))
            except UnicodeDecodeError as error:
                # Corrupted bytes must surface as the codec's own typed
                # error, never as a leaked UnicodeDecodeError.
                raise FrameError(f"non-ASCII Origin-Entry: {error}") from error
            offset += length
        return OriginFrame(origins=tuple(origins), **kwargs)
    return UnknownFrame(raw_payload=payload, raw_type=header.frame_type, **kwargs)


def decode_frames(data: bytes) -> list[Frame]:
    """Decode a byte string into consecutive frames (must consume fully)."""
    frames: list[Frame] = []
    offset = 0
    total = len(data)
    while offset < total:
        header = FrameHeader.unpack(data, offset)
        offset += 9
        if offset + header.length > total:
            raise FrameError("truncated frame payload")
        frames.append(_decode_payload(header, data[offset:offset + header.length]))
        offset += header.length
    return frames
