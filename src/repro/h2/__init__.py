"""HTTP/2 substrate: frames, HPACK, streams, connections, settings."""

from repro.h2.connection import (
    HTTP_MISDIRECTED_REQUEST,
    ConnectionClosedError,
    Http2Connection,
    RequestRecord,
    ServerEndpoint,
)
from repro.h2.frames import (
    DataFrame,
    Flags,
    Frame,
    FrameError,
    FrameHeader,
    FrameType,
    GoawayFrame,
    HeadersFrame,
    OriginFrame,
    PingFrame,
    RstStreamFrame,
    SettingsFrame,
    UnknownFrame,
    WindowUpdateFrame,
    decode_frames,
    encode_frame,
)
from repro.h2.errors import H2Error
from repro.h2.hpack import STATIC_TABLE, HpackDecoder, HpackEncoder, HpackError
from repro.h2.settings import Http2Settings, SettingId
from repro.h2.stream import Http2Stream, StreamError, StreamResetError, StreamState

__all__ = [
    "H2Error",
    "HTTP_MISDIRECTED_REQUEST",
    "ConnectionClosedError",
    "Http2Connection",
    "RequestRecord",
    "ServerEndpoint",
    "DataFrame",
    "Flags",
    "Frame",
    "FrameError",
    "FrameHeader",
    "FrameType",
    "GoawayFrame",
    "HeadersFrame",
    "OriginFrame",
    "PingFrame",
    "RstStreamFrame",
    "SettingsFrame",
    "UnknownFrame",
    "WindowUpdateFrame",
    "decode_frames",
    "encode_frame",
    "STATIC_TABLE",
    "HpackDecoder",
    "HpackEncoder",
    "HpackError",
    "Http2Settings",
    "SettingId",
    "Http2Stream",
    "StreamError",
    "StreamResetError",
    "StreamState",
]
