"""HTTP/2 SETTINGS parameters (RFC 7540 §6.5.2)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

__all__ = ["SettingId", "Http2Settings"]


class SettingId(enum.IntEnum):
    """Registered SETTINGS identifiers."""

    HEADER_TABLE_SIZE = 0x1
    ENABLE_PUSH = 0x2
    MAX_CONCURRENT_STREAMS = 0x3
    INITIAL_WINDOW_SIZE = 0x4
    MAX_FRAME_SIZE = 0x5
    MAX_HEADER_LIST_SIZE = 0x6


@dataclass(frozen=True)
class Http2Settings:
    """One endpoint's settings, with RFC 7540 defaults."""

    header_table_size: int = 4096
    enable_push: bool = True
    max_concurrent_streams: int | None = None  # None == unlimited
    initial_window_size: int = 65_535
    max_frame_size: int = 16_384
    max_header_list_size: int | None = None

    def __post_init__(self) -> None:
        if not 16_384 <= self.max_frame_size <= 16_777_215:
            raise ValueError(f"illegal MAX_FRAME_SIZE: {self.max_frame_size}")
        if self.initial_window_size > 2**31 - 1:
            raise ValueError("INITIAL_WINDOW_SIZE overflows 31 bits")

    def to_pairs(self) -> list[tuple[int, int]]:
        """Encode into (identifier, value) pairs for a SETTINGS frame."""
        pairs = [
            (SettingId.HEADER_TABLE_SIZE, self.header_table_size),
            (SettingId.ENABLE_PUSH, int(self.enable_push)),
            (SettingId.INITIAL_WINDOW_SIZE, self.initial_window_size),
            (SettingId.MAX_FRAME_SIZE, self.max_frame_size),
        ]
        if self.max_concurrent_streams is not None:
            pairs.append(
                (SettingId.MAX_CONCURRENT_STREAMS, self.max_concurrent_streams)
            )
        if self.max_header_list_size is not None:
            pairs.append((SettingId.MAX_HEADER_LIST_SIZE, self.max_header_list_size))
        return pairs

    def apply_pairs(self, pairs: list[tuple[int, int]]) -> "Http2Settings":
        """Return a copy updated with the pairs of a received SETTINGS."""
        updates: dict[str, object] = {}
        for identifier, value in pairs:
            if identifier == SettingId.HEADER_TABLE_SIZE:
                updates["header_table_size"] = value
            elif identifier == SettingId.ENABLE_PUSH:
                if value not in (0, 1):
                    raise ValueError(f"ENABLE_PUSH must be 0/1, got {value}")
                updates["enable_push"] = bool(value)
            elif identifier == SettingId.MAX_CONCURRENT_STREAMS:
                updates["max_concurrent_streams"] = value
            elif identifier == SettingId.INITIAL_WINDOW_SIZE:
                updates["initial_window_size"] = value
            elif identifier == SettingId.MAX_FRAME_SIZE:
                updates["max_frame_size"] = value
            elif identifier == SettingId.MAX_HEADER_LIST_SIZE:
                updates["max_header_list_size"] = value
            # Unknown identifiers MUST be ignored (RFC 7540 §6.5.2).
        return replace(self, **updates)
