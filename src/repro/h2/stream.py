"""HTTP/2 stream state machine (RFC 7540 §5.1).

Only the client-initiated request/response lifecycle is exercised by the
reproduction, but the full state set is modelled so invalid transitions
are caught early (they were the symptom of the 2016 Chromium bug that
Manzoor et al. traced parallel connections to).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.h2.errors import H2Error

__all__ = ["StreamState", "StreamError", "StreamResetError", "Http2Stream"]


class StreamError(H2Error):
    """Illegal operation for the stream's current state."""


class StreamResetError(StreamError):
    """The peer tore the stream down with RST_STREAM before completion.

    Raised by the connection's request path (fault injection, or any
    future server-push/flow-control model) so callers can distinguish a
    retryable per-stream failure from a dead connection.  Carries only
    its message and therefore pickles cleanly across pool workers.
    """


class StreamState(enum.Enum):
    IDLE = "idle"
    OPEN = "open"
    HALF_CLOSED_LOCAL = "half-closed (local)"
    HALF_CLOSED_REMOTE = "half-closed (remote)"
    CLOSED = "closed"


@dataclass(slots=True)
class Http2Stream:
    """One stream of a connection, from the client's perspective."""

    stream_id: int
    state: StreamState = StreamState.IDLE
    request_headers: list[tuple[str, str]] = field(default_factory=list)
    response_headers: list[tuple[str, str]] = field(default_factory=list)
    response_status: int | None = None
    opened_at: float | None = None
    closed_at: float | None = None

    def __post_init__(self) -> None:
        if self.stream_id <= 0 or self.stream_id % 2 == 0:
            raise StreamError(
                f"client streams must have odd positive ids, got {self.stream_id}"
            )

    def send_request(
        self,
        headers: list[tuple[str, str]],
        *,
        now: float,
        end_stream: bool = True,
    ) -> None:
        """HEADERS out: idle → open (or half-closed local on END_STREAM)."""
        if self.state is not StreamState.IDLE:
            raise StreamError(f"cannot send request in state {self.state.value}")
        self.request_headers = list(headers)
        self.opened_at = now
        self.state = (
            StreamState.HALF_CLOSED_LOCAL if end_stream else StreamState.OPEN
        )

    def end_request(self) -> None:
        """END_STREAM out after a request body: open → half-closed local."""
        if self.state is not StreamState.OPEN:
            raise StreamError(f"cannot end request in state {self.state.value}")
        self.state = StreamState.HALF_CLOSED_LOCAL

    def receive_response(
        self,
        status: int,
        headers: list[tuple[str, str]],
        *,
        now: float,
        end_stream: bool = True,
    ) -> None:
        """HEADERS in, completing the exchange when END_STREAM is set."""
        if self.state not in (StreamState.OPEN, StreamState.HALF_CLOSED_LOCAL):
            raise StreamError(f"cannot receive response in state {self.state.value}")
        self.response_status = status
        self.response_headers = list(headers)
        if end_stream:
            self._close(now)
        elif self.state is StreamState.OPEN:
            self.state = StreamState.HALF_CLOSED_REMOTE

    def end_response(self, *, now: float) -> None:
        """Final DATA with END_STREAM."""
        if self.state not in (
            StreamState.HALF_CLOSED_LOCAL,
            StreamState.HALF_CLOSED_REMOTE,
        ):
            raise StreamError(f"cannot end response in state {self.state.value}")
        self._close(now)

    def reset(self, *, now: float) -> None:
        """RST_STREAM in either direction closes immediately."""
        if self.state is StreamState.CLOSED:
            return
        self._close(now)

    def _close(self, now: float) -> None:
        self.state = StreamState.CLOSED
        self.closed_at = now

    @property
    def is_closed(self) -> bool:
        return self.state is StreamState.CLOSED
