"""HPACK header compression (RFC 7541, without Huffman coding).

A faithful subset: the full static table, a size-bounded dynamic table
with FIFO eviction, prefix-coded integers, and the three literal
representations.  Huffman coding is omitted (the H bit is always 0),
which RFC 7541 permits.

Why HPACK is in a connection-reuse reproduction at all: one of the costs
the paper ascribes to redundant connections is that "header compression
is less effective as the compression dictionary has to be bootstrapped
again" (§2.2.1).  The examples and ablation benches use this encoder to
measure exactly that effect — bytes on the wire with one shared
connection versus several cold ones.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.h2.errors import H2Error

__all__ = ["HpackEncoder", "HpackDecoder", "HpackError", "STATIC_TABLE"]


class HpackError(H2Error, ValueError):
    """Malformed HPACK input.

    Keeps its historical :class:`ValueError` base alongside the
    subsystem root, so pre-existing ``except ValueError`` callers
    still catch it.
    """


#: RFC 7541 Appendix A static table (1-indexed).
STATIC_TABLE: tuple[tuple[str, str], ...] = (
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
)

_STATIC_LOOKUP: dict[tuple[str, str], int] = {
    pair: index + 1 for index, pair in enumerate(STATIC_TABLE)
}
_STATIC_NAME_LOOKUP: dict[str, int] = {}
for _index, (_name, _value) in enumerate(STATIC_TABLE):
    _STATIC_NAME_LOOKUP.setdefault(_name, _index + 1)

_STATIC_LEN = len(STATIC_TABLE)

#: Per-entry overhead in the dynamic-table size calculation (RFC 7541 §4.1).
_ENTRY_OVERHEAD = 32

#: Headers that should never enter the dynamic table (RFC 7541 §7.1.3).
_NEVER_INDEX = frozenset({"authorization", "set-cookie"})


def encode_integer(value: int, prefix_bits: int, first_byte_flags: int = 0) -> bytes:
    """Prefix-coded integer (RFC 7541 §5.1)."""
    if value < 0:
        raise HpackError(f"cannot encode negative integer {value}")
    limit = (1 << prefix_bits) - 1
    if value < limit:
        return bytes([first_byte_flags | value])
    out = bytearray([first_byte_flags | limit])
    value -= limit
    while value >= 128:
        out.append((value % 128) + 128)
        value //= 128
    out.append(value)
    return bytes(out)


def decode_integer(data: bytes, offset: int, prefix_bits: int) -> tuple[int, int]:
    """Decode a prefix-coded integer; returns (value, next_offset)."""
    if offset >= len(data):
        raise HpackError("truncated integer")
    limit = (1 << prefix_bits) - 1
    value = data[offset] & limit
    offset += 1
    if value < limit:
        return value, offset
    shift = 0
    while True:
        if offset >= len(data):
            raise HpackError("truncated integer continuation")
        byte = data[offset]
        offset += 1
        value += (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            return value, offset
        if shift > 62:
            raise HpackError("integer overflow")


def _encode_string(text: str) -> bytes:
    raw = text.encode("utf-8")
    return encode_integer(len(raw), 7) + raw


def _append_integer(
    out: bytearray, value: int, prefix_bits: int, first_byte_flags: int = 0
) -> None:
    """Append a prefix-coded integer to ``out`` without intermediates."""
    limit = (1 << prefix_bits) - 1
    if 0 <= value < limit:
        out.append(first_byte_flags | value)
        return
    out += encode_integer(value, prefix_bits, first_byte_flags)


def _append_string(out: bytearray, text: str) -> None:
    """Append a length-prefixed literal string to ``out`` (H bit 0)."""
    raw = text.encode("utf-8")
    length = len(raw)
    if length < 127:
        out.append(length)
    else:
        out += encode_integer(length, 7)
    out += raw


def _decode_string(data: bytes, offset: int) -> tuple[str, int]:
    if offset >= len(data):
        raise HpackError("truncated string length")
    huffman = bool(data[offset] & 0x80)
    length, offset = decode_integer(data, offset, 7)
    if huffman:
        raise HpackError("huffman-coded strings are not supported")
    if offset + length > len(data):
        raise HpackError("truncated string body")
    return data[offset:offset + length].decode("utf-8"), offset + length


@dataclass
class _DynamicTable:
    """The shared dynamic-table mechanics of encoder and decoder.

    Entries live in a deque with the newest entry at position 0, exactly
    the combined-address-space order of RFC 7541 §2.3.3.  Two index maps
    keyed by monotonically increasing insertion ids give the encoder an
    O(1) per-header lookup (formerly a linear scan; the lookup itself is
    inlined in :meth:`HpackEncoder.encode`): an entry inserted as id
    ``k`` currently sits at position ``_next_id - 1 - k`` because
    evictions only ever remove the oldest entry, so its combined index
    is ``_STATIC_LEN + _next_id - k``.  The maps store the *latest* id
    per (name, value) pair and per name, matching the old scan's
    preference for the newest entry.
    """

    max_size: int = 4096
    entries: deque[tuple[str, str]] = field(default_factory=deque)
    size: int = 0
    _sizes: deque[int] = field(default_factory=deque, repr=False)
    _next_id: int = field(default=0, repr=False)
    # thread-safe: one dynamic table per HPACK encoder/decoder, one of
    # those per connection, one connection per visit task.
    _by_pair: dict[tuple[str, str], int] = field(default_factory=dict, repr=False)
    # thread-safe: per-connection, like _by_pair above.
    _by_name: dict[str, int] = field(default_factory=dict, repr=False)

    @staticmethod
    def entry_size(name: str, value: str) -> int:
        # ASCII fast path: header names/values are almost always ASCII,
        # where the UTF-8 byte length equals the string length and no
        # bytes object needs to be materialised.
        if name.isascii() and value.isascii():
            return len(name) + len(value) + _ENTRY_OVERHEAD
        return len(name.encode()) + len(value.encode()) + _ENTRY_OVERHEAD

    def _evict_oldest(self) -> None:
        oldest_id = self._next_id - len(self.entries)
        pair = self.entries.pop()
        self.size -= self._sizes.pop()
        if self._by_pair.get(pair) == oldest_id:
            del self._by_pair[pair]
        if self._by_name.get(pair[0]) == oldest_id:
            del self._by_name[pair[0]]

    def add(self, name: str, value: str) -> None:
        needed = self.entry_size(name, value)
        while self.entries and self.size + needed > self.max_size:
            self._evict_oldest()
        if needed <= self.max_size:
            self.entries.appendleft((name, value))
            self._sizes.appendleft(needed)
            self.size += needed
            self._by_pair[(name, value)] = self._next_id
            self._by_name[name] = self._next_id
            self._next_id += 1

    def resize(self, new_max: int) -> None:
        self.max_size = new_max
        while self.entries and self.size > self.max_size:
            self._evict_oldest()

    def lookup(self, index: int) -> tuple[str, str]:
        """Combined-address-space lookup (static table first)."""
        if index < 1:
            raise HpackError(f"index {index} out of range")
        if index <= _STATIC_LEN:
            return STATIC_TABLE[index - 1]
        dynamic_index = index - _STATIC_LEN - 1
        if dynamic_index >= len(self.entries):
            raise HpackError(f"index {index} out of range")
        return self.entries[dynamic_index]



class HpackEncoder:
    """Stateful header-block encoder for one connection direction."""

    def __init__(self, max_table_size: int = 4096) -> None:
        self._table = _DynamicTable(max_size=max_table_size)
        self.bytes_emitted = 0
        self.bytes_uncompressed = 0

    def encode(self, headers: list[tuple[str, str]]) -> bytes:
        """Encode one header list into a header block fragment."""
        out = bytearray()
        append = out.append
        table = self._table
        # The table's maps are mutated in place by add(), never rebound,
        # so they can be hoisted out of the per-header loop.
        by_pair = table._by_pair
        by_name = table._by_name
        static_full = _STATIC_LOOKUP
        static_name = _STATIC_NAME_LOOKUP
        uncompressed = 0
        for pair in headers:
            name, value = pair
            lowered = name.lower()
            if lowered != name:
                name = lowered
                pair = (name, value)
            uncompressed += len(name) + len(value) + 2
            full = static_full.get(pair)
            if full is None:
                entry_id = by_pair.get(pair)
                if entry_id is not None:
                    full = _STATIC_LEN + table._next_id - entry_id
            if full is not None:  # Indexed representation.
                if full < 127:
                    append(0x80 | full)
                else:
                    out += encode_integer(full, 7, 0x80)
                continue
            name_only = static_name.get(name)
            if name_only is None:
                entry_id = by_name.get(name)
                if entry_id is not None:
                    name_only = _STATIC_LEN + table._next_id - entry_id
            if name in _NEVER_INDEX:
                # Literal never indexed (0x10 prefix).
                if name_only is not None:
                    _append_integer(out, name_only, 4, 0x10)
                else:
                    append(0x10)
                    _append_string(out, name)
                _append_string(out, value)
                continue
            # Literal with incremental indexing (0x40 prefix).
            if name_only is not None:
                _append_integer(out, name_only, 6, 0x40)
            else:
                append(0x40)
                _append_string(out, name)
            _append_string(out, value)
            table.add(name, value)
        self.bytes_uncompressed += uncompressed
        self.bytes_emitted += len(out)
        return bytes(out)

    @property
    def compression_ratio(self) -> float:
        """Emitted / uncompressed bytes over the encoder's lifetime."""
        if self.bytes_uncompressed == 0:
            return 1.0
        return self.bytes_emitted / self.bytes_uncompressed


class HpackDecoder:
    """Stateful header-block decoder for one connection direction."""

    def __init__(self, max_table_size: int = 4096) -> None:
        self._table = _DynamicTable(max_size=max_table_size)

    def decode(self, data: bytes) -> list[tuple[str, str]]:
        """Decode a header block fragment into a header list."""
        headers: list[tuple[str, str]] = []
        offset = 0
        while offset < len(data):
            byte = data[offset]
            if byte & 0x80:  # Indexed representation.
                index, offset = decode_integer(data, offset, 7)
                if index == 0:
                    raise HpackError("indexed representation with index 0")
                headers.append(self._table.lookup(index))
            elif byte & 0x40:  # Literal with incremental indexing.
                index, offset = decode_integer(data, offset, 6)
                name, offset = (
                    self._table.lookup(index)[0], offset
                ) if index else _decode_string(data, offset)
                value, offset = _decode_string(data, offset)
                self._table.add(name, value)
                headers.append((name, value))
            elif byte & 0x20:  # Dynamic-table size update.
                new_size, offset = decode_integer(data, offset, 5)
                self._table.resize(new_size)
            else:  # Literal without indexing / never indexed.
                index, offset = decode_integer(data, offset, 4)
                name, offset = (
                    self._table.lookup(index)[0], offset
                ) if index else _decode_string(data, offset)
                value, offset = _decode_string(data, offset)
                headers.append((name, value))
        return headers
