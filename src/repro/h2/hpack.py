"""HPACK header compression (RFC 7541, without Huffman coding).

A faithful subset: the full static table, a size-bounded dynamic table
with FIFO eviction, prefix-coded integers, and the three literal
representations.  Huffman coding is omitted (the H bit is always 0),
which RFC 7541 permits.

Why HPACK is in a connection-reuse reproduction at all: one of the costs
the paper ascribes to redundant connections is that "header compression
is less effective as the compression dictionary has to be bootstrapped
again" (§2.2.1).  The examples and ablation benches use this encoder to
measure exactly that effect — bytes on the wire with one shared
connection versus several cold ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["HpackEncoder", "HpackDecoder", "HpackError", "STATIC_TABLE"]


class HpackError(ValueError):
    """Malformed HPACK input."""


#: RFC 7541 Appendix A static table (1-indexed).
STATIC_TABLE: tuple[tuple[str, str], ...] = (
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
)

_STATIC_LOOKUP: dict[tuple[str, str], int] = {
    pair: index + 1 for index, pair in enumerate(STATIC_TABLE)
}
_STATIC_NAME_LOOKUP: dict[str, int] = {}
for _index, (_name, _value) in enumerate(STATIC_TABLE):
    _STATIC_NAME_LOOKUP.setdefault(_name, _index + 1)

#: Per-entry overhead in the dynamic-table size calculation (RFC 7541 §4.1).
_ENTRY_OVERHEAD = 32

#: Headers that should never enter the dynamic table (RFC 7541 §7.1.3).
_NEVER_INDEX = frozenset({"authorization", "set-cookie"})


def encode_integer(value: int, prefix_bits: int, first_byte_flags: int = 0) -> bytes:
    """Prefix-coded integer (RFC 7541 §5.1)."""
    if value < 0:
        raise HpackError(f"cannot encode negative integer {value}")
    limit = (1 << prefix_bits) - 1
    if value < limit:
        return bytes([first_byte_flags | value])
    out = bytearray([first_byte_flags | limit])
    value -= limit
    while value >= 128:
        out.append((value % 128) + 128)
        value //= 128
    out.append(value)
    return bytes(out)


def decode_integer(data: bytes, offset: int, prefix_bits: int) -> tuple[int, int]:
    """Decode a prefix-coded integer; returns (value, next_offset)."""
    if offset >= len(data):
        raise HpackError("truncated integer")
    limit = (1 << prefix_bits) - 1
    value = data[offset] & limit
    offset += 1
    if value < limit:
        return value, offset
    shift = 0
    while True:
        if offset >= len(data):
            raise HpackError("truncated integer continuation")
        byte = data[offset]
        offset += 1
        value += (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            return value, offset
        if shift > 62:
            raise HpackError("integer overflow")


def _encode_string(text: str) -> bytes:
    raw = text.encode("utf-8")
    return encode_integer(len(raw), 7) + raw


def _decode_string(data: bytes, offset: int) -> tuple[str, int]:
    if offset >= len(data):
        raise HpackError("truncated string length")
    huffman = bool(data[offset] & 0x80)
    length, offset = decode_integer(data, offset, 7)
    if huffman:
        raise HpackError("huffman-coded strings are not supported")
    if offset + length > len(data):
        raise HpackError("truncated string body")
    return data[offset:offset + length].decode("utf-8"), offset + length


@dataclass
class _DynamicTable:
    """The shared dynamic-table mechanics of encoder and decoder."""

    max_size: int = 4096
    entries: list[tuple[str, str]] = field(default_factory=list)
    size: int = 0

    @staticmethod
    def entry_size(name: str, value: str) -> int:
        return len(name.encode()) + len(value.encode()) + _ENTRY_OVERHEAD

    def add(self, name: str, value: str) -> None:
        needed = self.entry_size(name, value)
        while self.entries and self.size + needed > self.max_size:
            old_name, old_value = self.entries.pop()
            self.size -= self.entry_size(old_name, old_value)
        if needed <= self.max_size:
            self.entries.insert(0, (name, value))
            self.size += needed

    def resize(self, new_max: int) -> None:
        self.max_size = new_max
        while self.entries and self.size > self.max_size:
            old_name, old_value = self.entries.pop()
            self.size -= self.entry_size(old_name, old_value)

    def lookup(self, index: int) -> tuple[str, str]:
        """Combined-address-space lookup (static table first)."""
        if index < 1:
            raise HpackError(f"index {index} out of range")
        if index <= len(STATIC_TABLE):
            return STATIC_TABLE[index - 1]
        dynamic_index = index - len(STATIC_TABLE) - 1
        if dynamic_index >= len(self.entries):
            raise HpackError(f"index {index} out of range")
        return self.entries[dynamic_index]

    def find(self, name: str, value: str) -> tuple[int | None, int | None]:
        """Return (full-match index, name-only index) in combined space."""
        full = _STATIC_LOOKUP.get((name, value))
        name_only = _STATIC_NAME_LOOKUP.get(name)
        for position, (entry_name, entry_value) in enumerate(self.entries):
            index = len(STATIC_TABLE) + 1 + position
            if entry_name == name:
                if entry_value == value and full is None:
                    full = index
                if name_only is None:
                    name_only = index
        return full, name_only


class HpackEncoder:
    """Stateful header-block encoder for one connection direction."""

    def __init__(self, max_table_size: int = 4096) -> None:
        self._table = _DynamicTable(max_size=max_table_size)
        self.bytes_emitted = 0
        self.bytes_uncompressed = 0

    def encode(self, headers: list[tuple[str, str]]) -> bytes:
        """Encode one header list into a header block fragment."""
        out = bytearray()
        for name, value in headers:
            name = name.lower()
            self.bytes_uncompressed += len(name) + len(value) + 2
            full, name_only = self._table.find(name, value)
            if full is not None:
                out += encode_integer(full, 7, 0x80)
                continue
            if name in _NEVER_INDEX:
                # Literal never indexed (0x10 prefix).
                if name_only is not None:
                    out += encode_integer(name_only, 4, 0x10)
                else:
                    out += bytes([0x10]) + _encode_string(name)
                out += _encode_string(value)
                continue
            # Literal with incremental indexing (0x40 prefix).
            if name_only is not None:
                out += encode_integer(name_only, 6, 0x40)
            else:
                out += bytes([0x40]) + _encode_string(name)
            out += _encode_string(value)
            self._table.add(name, value)
        self.bytes_emitted += len(out)
        return bytes(out)

    @property
    def compression_ratio(self) -> float:
        """Emitted / uncompressed bytes over the encoder's lifetime."""
        if self.bytes_uncompressed == 0:
            return 1.0
        return self.bytes_emitted / self.bytes_uncompressed


class HpackDecoder:
    """Stateful header-block decoder for one connection direction."""

    def __init__(self, max_table_size: int = 4096) -> None:
        self._table = _DynamicTable(max_size=max_table_size)

    def decode(self, data: bytes) -> list[tuple[str, str]]:
        """Decode a header block fragment into a header list."""
        headers: list[tuple[str, str]] = []
        offset = 0
        while offset < len(data):
            byte = data[offset]
            if byte & 0x80:  # Indexed representation.
                index, offset = decode_integer(data, offset, 7)
                if index == 0:
                    raise HpackError("indexed representation with index 0")
                headers.append(self._table.lookup(index))
            elif byte & 0x40:  # Literal with incremental indexing.
                index, offset = decode_integer(data, offset, 6)
                name, offset = (
                    self._table.lookup(index)[0], offset
                ) if index else _decode_string(data, offset)
                value, offset = _decode_string(data, offset)
                self._table.add(name, value)
                headers.append((name, value))
            elif byte & 0x20:  # Dynamic-table size update.
                new_size, offset = decode_integer(data, offset, 5)
                self._table.resize(new_size)
            else:  # Literal without indexing / never indexed.
                index, offset = decode_integer(data, offset, 4)
                name, offset = (
                    self._table.lookup(index)[0], offset
                ) if index else _decode_string(data, offset)
                value, offset = _decode_string(data, offset)
                headers.append((name, value))
        return headers
