"""HTTP/2 client connection.

An :class:`Http2Connection` is the unit of observation of the whole
study: the paper counts connections, groups them by destination IP,
inspects their certificate SANs and their initially used domain, and
asks which of them were redundant.  The connection therefore records
exactly those observables, plus the stream/request log that the HAR and
NetLog pipelines serialise.

Server interaction goes through the small :class:`ServerEndpoint`
protocol implemented by ``repro.web.server.OriginServer`` — including
421 (Misdirected Request) responses when a coalesced request reaches a
server that cannot answer for the domain, and the optional RFC 8336
ORIGIN frame advertisement.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Protocol

from repro.faults.plan import FaultKind
from repro.h2.errors import H2Error
from repro.h2.hpack import HpackDecoder, HpackEncoder
from repro.h2.settings import Http2Settings
from repro.h2.stream import Http2Stream, StreamResetError
from repro.tls.certificate import Certificate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan

__all__ = [
    "ServerEndpoint",
    "RequestRecord",
    "ConnectionClosedError",
    "Http2Connection",
    "HTTP_MISDIRECTED_REQUEST",
]

HTTP_MISDIRECTED_REQUEST = 421

_DEFAULT_SETTINGS = Http2Settings()


class ConnectionClosedError(H2Error):
    """A request was attempted on a closed connection."""


class ServerEndpoint(Protocol):
    """What a connection needs from the server side."""

    ip: str
    certificate: Certificate

    def certificate_for(self, sni: str) -> Certificate:
        """The leaf certificate presented for a given SNI (vhosting)."""
        ...

    def handle_request(
        self, domain: str, path: str, *, method: str, credentials: bool
    ) -> tuple[int, list[tuple[str, str]], int]:
        """Serve one request; returns (status, headers, body size)."""
        ...

    def advertised_origins(self) -> tuple[str, ...]:
        """Origins the server announces via ORIGIN frames (RFC 8336)."""
        ...


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """One request as later visible in HAR / NetLog data."""

    url: str
    domain: str
    path: str
    method: str
    status: int
    started_at: float
    finished_at: float
    with_credentials: bool
    stream_id: int
    body_size: int


@dataclass
class Http2Connection:
    """One HTTP/2 session from browser to server."""

    connection_id: int
    server: ServerEndpoint
    sni: str
    remote_ip: str
    created_at: float
    port: int = 443
    privacy_mode: bool = False
    #: Negotiated ALPN protocol; non-"h2" sessions model the HTTP/1.1
    #: fallback connections that the HAR sanitizer later filters out.
    protocol: str = "h2"
    # Http2Settings is frozen, so one default instance is safely shared
    # by every connection instead of being rebuilt per handshake.
    local_settings: Http2Settings = field(default=_DEFAULT_SETTINGS)
    remote_settings: Http2Settings = field(default=_DEFAULT_SETTINGS)
    closed_at: float | None = None
    goaway_received: bool = False
    streams: dict[int, Http2Stream] = field(default_factory=dict)
    requests: list[RequestRecord] = field(default_factory=list)
    origin_set: set[str] = field(default_factory=set)
    misdirected_domains: set[str] = field(default_factory=set)
    #: Optional :class:`~repro.faults.plan.FaultPlan` consulted per
    #: request; ``None`` keeps the request path exactly as before.
    faults: "FaultPlan | None" = None
    _next_stream_id: int = 1

    def __post_init__(self) -> None:
        # Real servers choose the presented certificate by SNI; this is
        # what makes same-IP sharding with disjunct certificates (the
        # paper's CERT cause) possible in the first place.
        self.certificate = self.server.certificate_for(self.sni)
        if self.remote_ip != self.server.ip:
            raise ValueError(
                f"connection IP {self.remote_ip} does not match server {self.server.ip}"
            )
        self._encoder = HpackEncoder(self.remote_settings.header_table_size)
        self._decoder_instance: HpackDecoder | None = None
        self._open_streams = 0
        self._last_activity = self.created_at
        # RFC 8336: the server may advertise additional origins at
        # session start; whether the client *uses* them is browser policy.
        self.origin_set.update(self.server.advertised_origins())

    @property
    def _decoder(self) -> HpackDecoder:
        """The receive-direction HPACK state, built on first use.

        The study's request path only ever exercises the encoder, so
        most connections never pay for a second dynamic table.
        """
        if self._decoder_instance is None:
            self._decoder_instance = HpackDecoder(
                self.local_settings.header_table_size
            )
        return self._decoder_instance

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self.closed_at is None and not self.goaway_received

    @property
    def accepts_new_streams(self) -> bool:
        """False once the peer advertised MAX_CONCURRENT_STREAMS=0.

        A quiesced session (RFC 7540 §6.5.2: zero means "no new
        streams") is still open but useless to the pool; treating it as
        unavailable lets the browser alias a replacement instead of
        burning one doomed attempt per request.
        """
        return self.remote_settings.max_concurrent_streams != 0

    def close(self, *, now: float) -> None:
        """Client-side close (or idle timeout)."""
        if self.closed_at is None:
            self.closed_at = now
            for stream in self.streams.values():
                if not stream.is_closed:
                    stream.reset(now=now)
            self._open_streams = 0

    def receive_goaway(self, *, now: float) -> None:
        """Server GOAWAY: no new streams; existing ones finish."""
        self.goaway_received = True
        if self.closed_at is None:
            self.closed_at = now

    def apply_remote_settings(self, settings: Http2Settings) -> None:
        """A SETTINGS frame from the peer replaces its parameters.

        Only the stream-admission limits take effect here; HPACK table
        resizes would need a table-size-update on the next header block,
        which the byte-accounting encoder does not model, so the header
        table size is pinned to the value negotiated at session start.
        """
        self.remote_settings = replace(
            settings,
            header_table_size=self.remote_settings.header_table_size,
        )

    def lifetime(self, *, assume_end: float | None = None) -> float | None:
        """Seconds the connection lived; ``assume_end`` caps open ones."""
        end = self.closed_at if self.closed_at is not None else assume_end
        if end is None:
            return None
        return max(0.0, end - self.created_at)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def open_stream_count(self) -> int:
        # Tracked incrementally by perform_request/close; recomputing
        # with a scan here would make every request O(total streams).
        return self._open_streams

    def perform_request(
        self,
        domain: str,
        path: str,
        *,
        now: float,
        method: str = "GET",
        with_credentials: bool = False,
        extra_headers: list[tuple[str, str]] | None = None,
        service_time: float = 0.0,
    ) -> RequestRecord:
        """Multiplex one request over this connection.

        Raises :class:`ConnectionClosedError` when the session can no
        longer accept streams; enforces MAX_CONCURRENT_STREAMS.  With an
        attached fault plan the request may additionally be struck by an
        injected GOAWAY (session closes), a SETTINGS churn (the peer
        drops MAX_CONCURRENT_STREAMS, quiescing the session without
        closing it) or an RST_STREAM
        (:class:`~repro.h2.stream.StreamResetError` after the stream
        opened — the retryable case).
        """
        faults = self.faults
        if faults is not None and self.is_open:
            if faults.fires(FaultKind.H2_GOAWAY):
                # Mid-stream GOAWAY: the server stops this session right
                # as the request is about to be multiplexed onto it.
                self.receive_goaway(now=now)
            elif faults.fires(FaultKind.H2_SETTINGS_CHURN):
                self.apply_remote_settings(
                    replace(
                        self.remote_settings,
                        max_concurrent_streams=int(
                            faults.param(FaultKind.H2_SETTINGS_CHURN, 0.0)
                        ),
                    )
                )
        if not self.is_open:
            raise ConnectionClosedError(f"connection {self.connection_id} is closed")
        limit = self.remote_settings.max_concurrent_streams
        if limit is not None and self.open_stream_count() >= limit:
            raise ConnectionClosedError(
                f"connection {self.connection_id} is at MAX_CONCURRENT_STREAMS"
            )
        stream = Http2Stream(stream_id=self._next_stream_id)
        self._next_stream_id += 2
        self.streams[stream.stream_id] = stream
        self._open_streams += 1

        headers = [
            (":method", method),
            (":scheme", "https"),
            (":authority", domain),
            (":path", path),
        ]
        if with_credentials:
            headers.append(("cookie", f"session={domain}"))
        headers.extend(extra_headers or [])
        self._encoder.encode(headers)  # byte accounting for HPACK studies
        stream.send_request(headers, now=now)

        if faults is not None and faults.fires(FaultKind.H2_RST_STREAM):
            # RST_STREAM after HEADERS went out: the stream dies, the
            # session survives.  No RequestRecord is produced — exactly
            # like a NetLog that never sees the response events.
            stream.reset(now=now)
            self._open_streams -= 1
            raise StreamResetError(
                f"stream {stream.stream_id} on connection "
                f"{self.connection_id} reset by peer"
            )

        status, response_headers, body_size = self.server.handle_request(
            domain, path, method=method, credentials=with_credentials
        )
        finished = now + service_time
        stream.receive_response(status, response_headers, now=finished)
        if stream.is_closed:
            self._open_streams -= 1
        if finished > self._last_activity:
            self._last_activity = finished

        if status == HTTP_MISDIRECTED_REQUEST:
            # The server refuses to answer for this origin on this
            # connection; remember so the browser will not coalesce again.
            self.misdirected_domains.add(domain)

        record = RequestRecord(
            url=f"https://{domain}{path}",
            domain=domain,
            path=path,
            method=method,
            status=status,
            started_at=now,
            finished_at=finished,
            with_credentials=with_credentials,
            stream_id=stream.stream_id,
            body_size=body_size,
        )
        self.requests.append(record)
        return record

    # ------------------------------------------------------------------
    # Introspection used by the classifier / reports
    # ------------------------------------------------------------------
    @property
    def hpack_compression_ratio(self) -> float:
        return self._encoder.compression_ratio

    @property
    def hpack_bytes_emitted(self) -> int:
        return self._encoder.bytes_emitted

    @property
    def hpack_bytes_uncompressed(self) -> int:
        return self._encoder.bytes_uncompressed

    def last_activity(self) -> float:
        """Timestamp of the most recent request completion (or creation)."""
        return self._last_activity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Http2Connection(id={self.connection_id}, sni={self.sni!r}, "
            f"ip={self.remote_ip}, privacy_mode={self.privacy_mode}, "
            f"requests={len(self.requests)})"
        )
