"""First-party websites and their sharding configurations.

Domain sharding was an HTTP/1.1 performance trick (§2.1) whose structure
persists under HTTP/2.  Every synthetic site gets one of four layouts:

* ``NONE`` — everything on the root domain (no redundancy possible);
* ``SAME_CERT_SAME_IP`` — shards behind a wildcard certificate on the
  same endpoint: HTTP/2 Connection Reuse *works*, the happy path the
  standard intended;
* ``SEPARATE_CERTS`` — per-shard certificates (certbot's default when
  run per-subdomain, the Let's Encrypt long tail of Table 3) on the same
  endpoint → CERT redundancy;
* ``SAME_CERT_DIFF_IP`` — wildcard certificate but shards resolve to
  different endpoints → IP redundancy.

Some sharded sites additionally fetch a webfont or anonymous XHR from
their shard: a cross-origin anonymous request that lands in the other
pool partition → same-domain CRED redundancy.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.dns.zone import AddressEntry, DnsNamespace
from repro.dns.loadbalancer import StaticPolicy
from repro.tls.issuers import (
    AMAZON_CA,
    CLOUDFLARE_CA,
    COMODO,
    DIGICERT,
    GLOBALSIGN,
    GODADDY,
    LETS_ENCRYPT,
    MICROSOFT_CA,
    SECTIGO,
    YANDEX_CA,
    IssuerRegistry,
)
from repro.web.hosting import HostingProvider, ProviderDirectory
from repro.web.resources import RequestMode, Resource, ResourceType
from repro.web.server import OriginServer, build_fleet

__all__ = ["ShardingStyle", "Website", "WebsiteFactory"]


class ShardingStyle(enum.Enum):
    NONE = "none"
    SAME_CERT_SAME_IP = "same-cert-same-ip"
    SEPARATE_CERTS = "separate-certs"
    SAME_CERT_DIFF_IP = "same-cert-diff-ip"


#: (issuer, weight) for first-party certificates — roughly the issuer
#: market share of the paper's Table 5.
_FP_ISSUER_WEIGHTS: tuple[tuple[str, float], ...] = (
    (LETS_ENCRYPT, 0.40),
    (CLOUDFLARE_CA, 0.14),
    (DIGICERT, 0.10),
    (SECTIGO, 0.10),
    (GODADDY, 0.08),
    (GLOBALSIGN, 0.06),
    (AMAZON_CA, 0.06),
    (COMODO, 0.03),
    (MICROSOFT_CA, 0.02),
    (YANDEX_CA, 0.01),
)

_TLD_WEIGHTS: tuple[tuple[str, float], ...] = (
    ("com", 0.52), ("net", 0.08), ("org", 0.08), ("de", 0.07), ("io", 0.05),
    ("fr", 0.04), ("jp", 0.04), ("ru", 0.04), ("br", 0.03), ("co.uk", 0.02),
    ("shop", 0.02), ("dev", 0.01),
)

_SHARD_LABELS = ("static", "img", "cdn", "assets", "media")


@dataclass
class Website:
    """One synthetic website: domain, popularity rank and its pages.

    Besides the landing page the paper crawls, sites carry internal
    pages (the paper's stated limitation: "we only review landing
    pages, which can show different behavior than internal pages [1]").
    Internal pages reuse a subset of the landing page's third parties,
    following Aqeel et al.'s finding that landing pages are heavier.
    """

    domain: str
    rank: int
    sharding: ShardingStyle
    document: Resource
    supports_h2: bool = True
    #: The shard hostnames minted for this site (empty when unsharded).
    #: Kept explicitly rather than derived from the page trees: a shard
    #: can exist in DNS without any sampled resource landing on it, and
    #: evolution (shard consolidation, fleet migration) must still see
    #: it.
    shards: tuple[str, ...] = ()
    embedded_services: tuple[str, ...] = ()
    internal_documents: dict[str, Resource] = field(default_factory=dict)

    @property
    def url(self) -> str:
        return f"https://{self.domain}/"

    def resource_count(self) -> int:
        return self.document.count()

    def document_for(self, path: str) -> Resource | None:
        """The page tree served at ``path`` ("/" = landing page)."""
        if path in ("", "/"):
            return self.document
        return self.internal_documents.get(path)

    @property
    def internal_paths(self) -> list[str]:
        return sorted(self.internal_documents)

    # -- evolution hooks (see repro.evolve) ----------------------------
    def all_documents(self) -> list[Resource]:
        """The landing page plus every internal page tree."""
        return [self.document] + [
            self.internal_documents[path] for path in self.internal_paths
        ]

    def shard_domains(self) -> list[str]:
        """This site's current shard hostnames, sorted.

        Includes shards that carry no resources (they still exist in
        DNS and on the servers); emptied by shard consolidation.
        """
        return sorted(self.shards)

    def rewrite_domains(self, mapping: dict[str, str]) -> int:
        """Re-home resources per ``mapping`` (old domain -> new domain).

        The shard-consolidation churn uses this to fold shard resources
        back onto the root domain.  Returns the number of resources
        rewritten.
        """
        rewritten = 0
        for document in self.all_documents():
            for resource in document.walk():
                target = mapping.get(resource.domain)
                if target is not None and target != resource.domain:
                    resource.domain = target
                    rewritten += 1
        return rewritten


@dataclass
class WebsiteFactory:
    """Generates first-party sites and wires their infrastructure."""

    providers: ProviderDirectory
    namespace: DnsNamespace
    issuers: IssuerRegistry
    servers: dict[str, OriginServer]
    rng: random.Random
    share_sharded: float = 0.45
    share_h1_only: float = 0.06
    #: Split of sharding styles among sharded sites.
    style_weights: tuple[float, float, float] = (0.55, 0.15, 0.30)
    #: Probability a sharded site loads an anonymous font/XHR from its shard.
    shard_font_probability: float = 0.35
    #: Ablation: shard operators merge certificates, so SEPARATE_CERTS
    #: sites get one certificate covering every shard.
    merged_certificates: bool = False
    _sites_built: int = 0
    _hoster_cycle: list[HostingProvider] = field(default_factory=list)

    def _pick_issuer(self) -> str:
        issuers, weights = zip(*_FP_ISSUER_WEIGHTS)
        return self.rng.choices(issuers, weights=weights, k=1)[0]

    def _pick_hoster(self) -> HostingProvider:
        if not self._hoster_cycle:
            self._hoster_cycle = self.providers.generic_hosters()
            if not self._hoster_cycle:
                raise RuntimeError("no generic hosting providers registered")
        return self.rng.choice(self._hoster_cycle)

    def _mint_domain(self, rank: int) -> str:
        tlds, weights = zip(*_TLD_WEIGHTS)
        tld = self.rng.choices(tlds, weights=weights, k=1)[0]
        return f"site{rank:06d}.{tld}"

    def _first_party_resources(
        self, domains: list[str], rng: random.Random
    ) -> list[Resource]:
        """Images/scripts/styles spread over the root + shard domains."""
        count = max(3, int(rng.lognormvariate(2.1, 0.6)))
        resources = []
        for index in range(count):
            domain = domains[0] if len(domains) == 1 else rng.choice(domains)
            rtype = rng.choices(
                [ResourceType.IMAGE, ResourceType.SCRIPT, ResourceType.STYLESHEET,
                 ResourceType.XHR],
                weights=[0.55, 0.25, 0.15, 0.05],
                k=1,
            )[0]
            mode = RequestMode.NO_CORS
            resources.append(
                Resource(
                    domain=domain,
                    path=f"/assets/{rtype.value}-{index}",
                    rtype=rtype,
                    mode=mode,
                    size=rng.randint(500, 200_000),
                )
            )
        return resources

    def build_site(self, rank: int) -> Website:
        """Create site #``rank`` with DNS, certificates and servers."""
        rng = random.Random(self.rng.random())
        domain = self._mint_domain(rank)
        hoster = self._pick_hoster()
        issuer = self._pick_issuer()
        supports_h2 = rng.random() >= self.share_h1_only

        sharded = rng.random() < self.share_sharded
        if not sharded:
            style = ShardingStyle.NONE
            shards: list[str] = []
        else:
            style = rng.choices(
                [
                    ShardingStyle.SAME_CERT_SAME_IP,
                    ShardingStyle.SEPARATE_CERTS,
                    ShardingStyle.SAME_CERT_DIFF_IP,
                ],
                weights=list(self.style_weights),
                k=1,
            )[0]
            shards = [
                f"{label}.{domain}"
                for label in rng.sample(_SHARD_LABELS, rng.randint(1, 2))
            ]

        all_domains = [domain] + shards
        alpn = "h2" if supports_h2 else "http/1.1"

        if style in (ShardingStyle.NONE, ShardingStyle.SAME_CERT_SAME_IP):
            cert = self.issuers.issue(issuer, (domain, f"*.{domain}"))
            ips = hoster.addresses(1)
            fleet = build_fleet(
                ips, name=domain,
                cert_map={name: cert for name in all_domains}, alpn=alpn,
            )
            for server in fleet:
                self.servers[server.ip] = server
            for name in all_domains:
                self.namespace.add_address(
                    name, AddressEntry(pool=tuple(ips), policy=StaticPolicy())
                )
        elif style is ShardingStyle.SEPARATE_CERTS:
            # certbot run once per subdomain: one endpoint, N certs —
            # unless the merged-certificates ablation is active.
            ips = hoster.addresses(1)
            if self.merged_certificates:
                merged = self.issuers.issue(issuer, tuple(all_domains))
                cert_map = {name: merged for name in all_domains}
            else:
                cert_map = {
                    name: self.issuers.issue(issuer, (name,)) for name in all_domains
                }
            fleet = build_fleet(ips, name=domain, cert_map=cert_map, alpn=alpn)
            for server in fleet:
                self.servers[server.ip] = server
            for name in all_domains:
                self.namespace.add_address(
                    name, AddressEntry(pool=tuple(ips), policy=StaticPolicy())
                )
        else:  # SAME_CERT_DIFF_IP
            cert = self.issuers.issue(issuer, (domain, f"*.{domain}"))
            ips = hoster.addresses(len(all_domains))
            cert_map = {name: cert for name in all_domains}
            fleet = build_fleet(ips, name=domain, cert_map=cert_map, alpn=alpn)
            for server in fleet:
                self.servers[server.ip] = server
            for name, ip in zip(all_domains, ips):
                self.namespace.add_address(
                    name, AddressEntry(pool=(ip,), policy=StaticPolicy())
                )

        children = self._first_party_resources(all_domains, rng)
        if shards and rng.random() < self.shard_font_probability:
            # Cross-origin anonymous fetch to the site's own shard: the
            # first-party flavour of the same-domain CRED case.
            children.append(
                Resource(
                    domain=shards[0],
                    path="/fonts/brand.woff2",
                    rtype=ResourceType.FONT,
                    mode=RequestMode.CORS_ANON,
                    size=45_000,
                )
            )
        document = Resource(
            domain=domain,
            path="/",
            rtype=ResourceType.DOCUMENT,
            size=rng.randint(5_000, 150_000),
            children=children,
        )
        self._sites_built += 1
        return Website(
            domain=domain,
            rank=rank,
            sharding=style,
            document=document,
            supports_h2=supports_h2,
            shards=tuple(shards),
        )
